"""Unit tests for the slow-operation ring buffer (repro.obs.slowlog)."""

from __future__ import annotations

from repro.obs.slowlog import DEFAULT_THRESHOLDS_S, SlowLog


def test_below_threshold_records_nothing():
    log = SlowLog()
    assert not log.maybe_record("commit", 0.001)
    assert log.entries() == []


def test_above_threshold_records_entry_with_detail():
    log = SlowLog()
    assert log.maybe_record("commit", 1.5, tag="big", programs=2)
    (entry,) = log.entries()
    assert entry["kind"] == "commit"
    assert entry["seconds"] == 1.5
    assert entry["threshold_s"] == DEFAULT_THRESHOLDS_S["commit"]
    assert entry["tag"] == "big"
    assert entry["programs"] == 2
    assert entry["seq"] == 1
    assert entry["wall_time"] > 0


def test_programmatic_threshold_override():
    log = SlowLog()
    log.set_threshold("query", 0.0)
    assert log.maybe_record("query", 0.00001)
    assert log.threshold_s("query") == 0.0


def test_env_threshold_in_milliseconds(monkeypatch):
    monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "5")
    log = SlowLog()
    assert log.threshold_s("query") == 0.005
    assert log.maybe_record("query", 0.006)
    assert not log.maybe_record("query", 0.004)


def test_bad_env_value_falls_back_to_default(monkeypatch):
    monkeypatch.setenv("REPRO_SLOW_COMMIT_MS", "not-a-number")
    log = SlowLog()
    assert log.threshold_s("commit") == DEFAULT_THRESHOLDS_S["commit"]


def test_unknown_kind_gets_generic_default():
    assert SlowLog().threshold_s("mystery") == 0.250


def test_ring_is_bounded_and_counts_drops():
    log = SlowLog(capacity=4)
    log.set_threshold("commit", 0.0)
    for index in range(10):
        log.maybe_record("commit", float(index))
    stats = log.stats()
    assert stats["capacity"] == 4
    assert stats["dropped"] == 6
    assert [entry["seconds"] for entry in stats["entries"]] == [
        6.0, 7.0, 8.0, 9.0,
    ]
    # sequence numbers keep counting across drops
    assert stats["entries"][-1]["seq"] == 10


def test_stats_shape_and_clear():
    log = SlowLog()
    log.set_threshold("query", 0.0)
    log.maybe_record("query", 1.0)
    stats = log.stats()
    assert set(stats) == {"entries", "dropped", "capacity", "thresholds_ms"}
    assert set(stats["thresholds_ms"]) == set(DEFAULT_THRESHOLDS_S)
    log.clear()
    assert log.stats()["entries"] == []
    assert log.stats()["dropped"] == 0


def test_entries_are_copies():
    log = SlowLog()
    log.set_threshold("commit", 0.0)
    log.maybe_record("commit", 1.0)
    log.entries()[0]["seconds"] = 999
    assert log.entries()[0]["seconds"] == 1.0
