"""The ``repro top`` renderer is a pure function over a stats document."""

from __future__ import annotations

from repro.obs import render_dashboard


def _stats_document() -> dict:
    return {
        "revisions": 12,
        "head_tag": "u11",
        "commits": 11,
        "conflicts": 1,
        "sessions_begun": 3,
        "subscriptions": {"active": 2},
        "replication": {
            "role": "primary",
            "epoch": 4,
            "lag": 0,
            "followers": ["f0", "f1"],
            "streamed_lines": 22,
        },
        "metrics": {
            "enabled": True,
            "registry": {
                "commit_phase_seconds": {
                    "kind": "histogram",
                    "series": {
                        "phase=evaluate": {
                            "count": 11, "sum": 0.05, "p50": 0.004,
                            "p99": 0.009,
                        },
                        "phase=append": {
                            "count": 11, "sum": 0.01, "p50": 0.001,
                            "p99": 0.002,
                        },
                    },
                },
                "server_command_seconds": {
                    "kind": "histogram",
                    "series": {
                        "cmd=apply": {"count": 11, "sum": 0.06, "p50": 0.005,
                                      "p99": 0.01},
                    },
                },
                "engine_rule_fired": {
                    "kind": "counter",
                    "series": {"rule=raise": 40, "rule=hpe": 8},
                },
                "server_outbox_depth": {
                    "kind": "gauge",
                    "series": {"": 3},
                },
                "server_outbox_shed": {
                    "kind": "gauge",
                    "series": {"": 1},
                },
            },
        },
        "slowlog": {
            "entries": [
                {"kind": "commit", "seconds": 0.5, "tag": "u7"},
                {"kind": "query", "seconds": 0.2, "detail": "E.sal -> S"},
            ],
            "dropped": 0,
            "capacity": 128,
            "thresholds_ms": {"commit": 250.0, "query": 100.0,
                              "command": 250.0},
        },
    }


def test_renders_every_section():
    lines = render_dashboard(_stats_document(), target="unix:/tmp/x.sock")
    text = "\n".join(lines)
    assert "repro top — unix:/tmp/x.sock" in text
    assert "revisions     12" in text
    assert "commits 11" in text
    assert "conflicts 1" in text
    assert "replication: role primary" in text
    assert "epoch 4" in text
    assert "followers 2" in text
    assert "commit phases" in text
    assert "evaluate" in text and "append" in text
    assert "wire commands" in text and "apply" in text
    assert "hot rules (fired)" in text
    # hottest rule first
    assert text.index("raise") < text.index("hpe", text.index("hot rules"))
    assert "outbox depth 3" in text and "shed 1" in text
    assert "slowlog (newest last)" in text
    assert "E.sal -> S" in text


def test_renders_minimal_document_without_sections():
    lines = render_dashboard({})
    text = "\n".join(lines)
    assert "repro top" in text
    assert "revisions" in text
    assert "metrics off" in text
    assert "commit phases" not in text
    assert "slowlog (newest last)" not in text


def test_follower_count_renders_from_int_or_list():
    # the live service reports a count; follower _info carries a list
    stats = _stats_document()
    stats["replication"]["followers"] = 1
    assert "followers 1" in "\n".join(render_dashboard(stats))


def test_metrics_disabled_flag_shows_off():
    stats = _stats_document()
    stats["metrics"]["enabled"] = False
    assert "metrics off" in "\n".join(render_dashboard(stats))
