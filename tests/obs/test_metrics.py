"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics


@pytest.fixture()
def registry():
    return metrics.MetricsRegistry()


@pytest.fixture()
def enabled():
    """Force metrics on for the test, restore the environment default."""
    metrics.enable_metrics(True)
    metrics.registry().reset()
    yield
    metrics.registry().reset()
    metrics.enable_metrics(None)


class TestCounterGaugeHistogram:
    def test_counter_accumulates(self, registry):
        registry.inc("requests")
        registry.inc("requests", 2.5)
        assert registry.snapshot()["requests"]["series"][""] == 3.5

    def test_gauge_sets_and_incs(self, registry):
        registry.set_gauge("depth", 7)
        registry.set_gauge("depth", 3)
        assert registry.snapshot()["depth"]["series"][""] == 3
        registry.inc_gauge("depth", 2)
        assert registry.snapshot()["depth"]["series"][""] == 5

    def test_histogram_snapshot_fields(self, registry):
        for value in (0.1, 0.2, 0.3, 0.4):
            registry.observe("latency", value)
        snap = registry.snapshot()["latency"]["series"][""]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1.0)
        assert snap["min"] == pytest.approx(0.1)
        assert snap["max"] == pytest.approx(0.4)
        assert snap["mean"] == pytest.approx(0.25)
        assert snap["min"] <= snap["p50"] <= snap["p99"] <= snap["max"]

    def test_empty_histogram_snapshot(self):
        assert metrics.Histogram().snapshot() == {"count": 0, "sum": 0.0}

    def test_histogram_reservoir_is_bounded(self):
        histogram = metrics.Histogram(reservoir_size=8)
        for value in range(1000):
            histogram.observe(float(value))
        # exact aggregates survive the bounded reservoir
        assert histogram.count == 1000
        assert histogram.vmin == 0.0
        assert histogram.vmax == 999.0
        assert len(histogram.reservoir) == 8
        # quantiles come from the newest window
        assert histogram.quantile(0.5) >= 992.0

    def test_labels_create_separate_series(self, registry):
        registry.inc("fired", 1, rule="a")
        registry.inc("fired", 2, rule="b")
        series = registry.snapshot()["fired"]["series"]
        assert series == {"rule=a": 1, "rule=b": 2}

    def test_kind_conflict_raises(self, registry):
        registry.inc("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.observe("thing", 1.0)

    def test_snapshot_prefix_filter(self, registry):
        registry.inc("bench_a")
        registry.inc("other")
        assert set(registry.snapshot(prefix="bench_")) == {"bench_a"}

    def test_snapshot_shares_no_state(self, registry):
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        snap["h"]["series"][""]["count"] = 999
        assert registry.snapshot()["h"]["series"][""]["count"] == 1

    def test_concurrent_increments_are_registered(self, registry):
        def worker():
            for _ in range(200):
                registry.inc("hits", 1, worker="x")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # the series exists and is sane; exact totals are not guaranteed
        # for unlocked float adds, only that recording never corrupts
        assert registry.snapshot()["hits"]["series"]["worker=x"] > 0


class TestEnabledGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        metrics.enable_metrics(None)
        assert not metrics.metrics_enabled()

    def test_env_switch(self, monkeypatch):
        metrics.enable_metrics(None)
        monkeypatch.setenv("REPRO_OBS", "1")
        assert metrics.metrics_enabled()
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not metrics.metrics_enabled()

    def test_enable_metrics_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        metrics.enable_metrics(False)
        try:
            assert not metrics.metrics_enabled()
        finally:
            metrics.enable_metrics(None)

    def test_guarded_helpers_are_noops_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        metrics.enable_metrics(None)
        metrics.registry().reset()
        metrics.inc("nope")
        metrics.set_gauge("nope_g", 1)
        metrics.observe("nope_h", 1.0)
        with metrics.span("nope_span"):
            pass
        assert metrics.registry().snapshot() == {}

    def test_guarded_helpers_record_when_enabled(self, enabled):
        metrics.inc("yes")
        metrics.set_gauge("yes_g", 2)
        metrics.observe("yes_h", 0.5)
        names = set(metrics.registry().snapshot())
        assert {"yes", "yes_g", "yes_h"} <= names

    def test_span_observes_a_histogram(self, enabled):
        with metrics.span("work", phase="x") as timer:
            pass
        assert timer.seconds >= 0.0
        snap = metrics.registry().snapshot()["work_seconds"]
        assert snap["kind"] == "histogram"
        assert snap["series"]["phase=x"]["count"] == 1

    def test_module_snapshot_shape(self, enabled):
        metrics.inc("c")
        document = metrics.snapshot()
        assert set(document) == {"enabled", "registry"}
        assert document["enabled"] is True
        assert "c" in document["registry"]


class TestPrometheusRendering:
    def test_counter_gets_total_suffix(self, registry):
        registry.inc("commits", 3, node="a")
        text = registry.render_prometheus()
        assert '# TYPE repro_commits_total counter' in text
        assert 'repro_commits_total{node="a"} 3.0' in text

    def test_histogram_renders_count_sum_quantiles(self, registry):
        registry.observe("lat", 0.25, cmd="query")
        text = registry.render_prometheus()
        assert '# TYPE repro_lat histogram' in text
        assert 'repro_lat_count{cmd="query"} 1' in text
        assert 'repro_lat_sum{cmd="query"} 0.25' in text
        assert 'repro_lat{cmd="query",quantile="0.50"} 0.25' in text

    def test_unlabelled_gauge(self, registry):
        registry.set_gauge("depth", 4)
        assert "repro_depth 4.0" in registry.render_prometheus()

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""
