"""End-to-end observability: the registry threaded through the engine,
the journal, the service/server layers, and the CLI surfaces."""

from __future__ import annotations

import json

import pytest

import repro
from repro.api import BackgroundServer
from repro.cli import main as cli_main
from repro.obs import metrics
from repro.obs.slowlog import slowlog

BASE = """
    phil.isa -> empl.   phil.sal -> 4000.
    bob.isa -> empl.    bob.sal -> 4200.   bob.boss -> phil.
"""

RAISE = """
    raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 25.
"""


@pytest.fixture()
def enabled():
    metrics.enable_metrics(True)
    metrics.registry().reset()
    yield
    metrics.registry().reset()
    metrics.enable_metrics(None)


@pytest.fixture()
def clean_slowlog():
    log = slowlog()
    log.clear()
    yield log
    log._overrides.clear()
    log.clear()


def test_engine_records_per_rule_profile(enabled):
    with repro.connect("memory:", base=BASE, tag="seed") as conn:
        conn.apply(RAISE, tag="r1")
    snap = metrics.registry().snapshot()
    assert snap["engine_rule_fired"]["series"]["rule=raise"] == 2
    assert snap["engine_rule_matched"]["series"]["rule=raise"] >= 2
    assert snap["engine_rule_seconds"]["series"]["rule=raise"] > 0
    assert snap["engine_tp_rounds"]["series"][""] >= 1
    assert snap["engine_delta_size"]["kind"] == "histogram"


def test_engine_records_nothing_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    metrics.enable_metrics(None)
    metrics.registry().reset()
    with repro.connect("memory:", base=BASE, tag="seed") as conn:
        conn.apply(RAISE, tag="r1")
    assert "engine_rule_fired" not in metrics.registry().snapshot()


def test_journal_commit_records_phases_and_bytes(enabled, tmp_path):
    from repro.storage import DurabilityOptions

    with repro.connect(
        tmp_path / "j", base=BASE, tag="seed",
        durability=DurabilityOptions(mode="fsync"),
    ) as conn:
        conn.apply(RAISE, tag="r1")
    snap = metrics.registry().snapshot()
    phases = snap["commit_phase_seconds"]["series"]
    assert phases["phase=evaluate"]["count"] >= 1
    assert phases["phase=append"]["count"] >= 1
    assert phases["phase=fsync"]["count"] >= 1
    assert snap["journal_bytes"]["series"][""] > 0
    assert snap["server_commits"]["series"][""] >= 1


def test_stats_exposes_metrics_and_slowlog_sections(enabled, clean_slowlog):
    with repro.connect("memory:", base=BASE, tag="seed") as conn:
        conn.apply(RAISE, tag="r1")
        stats = conn.stats()
    assert set(stats["metrics"]) == {"enabled", "registry"}
    assert stats["metrics"]["enabled"] is True
    assert "engine_rule_fired" in stats["metrics"]["registry"]
    assert set(stats["slowlog"]) == {
        "entries", "dropped", "capacity", "thresholds_ms",
    }
    # gauges refreshed by stats(): the store's own shape
    registry = stats["metrics"]["registry"]
    assert registry["store_revisions"]["series"][""] == 2.0


def test_slow_commit_lands_in_the_slowlog(clean_slowlog):
    clean_slowlog.set_threshold("commit", 0.0)
    with repro.connect("memory:", base=BASE, tag="seed") as conn:
        conn.apply(RAISE, tag="slow-one")
        stats = conn.stats()
    kinds = {entry["kind"] for entry in stats["slowlog"]["entries"]}
    assert "commit" in kinds
    tags = {
        entry.get("tag") for entry in stats["slowlog"]["entries"]
        if entry["kind"] == "commit"
    }
    assert "slow-one" in tags


def test_wire_metrics_and_slowlog_commands(enabled, clean_slowlog, tmp_path):
    repro.connect(tmp_path / "served", base=BASE, tag="seed").close()
    socket_path = str(tmp_path / "obs.sock")
    with BackgroundServer(tmp_path / "served", path=socket_path):
        with repro.connect(f"serve:{socket_path}") as conn:
            conn.apply(RAISE, tag="r1")
            conn.query("E.sal -> S")
            response = conn.call("metrics")
            assert response["enabled"] is True
            names = set(response["metrics"])
            assert "engine_rule_fired" in names
            assert "server_command_seconds" in names
            assert "commit_phase_seconds" in names
            assert "repro_engine_rule_fired_total" in response["text"]
            # gauges set by the wire layer and record_gauges()
            assert "server_connections" in names
            assert "store_revisions" in names

            log = conn.call("slowlog")
            assert set(log["slowlog"]) == {
                "entries", "dropped", "capacity", "thresholds_ms",
            }
            cleared = conn.call("slowlog", clear=True)
            assert cleared["cleared"] is True


def test_wire_stats_tolerates_unknown_request_fields(tmp_path):
    """Wire v3 ignores unknown request fields — a newer client's extras
    must not break an older server (and vice versa)."""
    repro.connect(tmp_path / "served", base=BASE, tag="seed").close()
    socket_path = str(tmp_path / "tol.sock")
    with BackgroundServer(tmp_path / "served", path=socket_path):
        with repro.connect(f"serve:{socket_path}") as conn:
            stats = conn.request(
                cmd="stats", future_option=True, verbosity="high"
            )["stats"]
            assert "metrics" in stats and "slowlog" in stats
            response = conn.request(cmd="metrics", some_new_knob=1)
            assert "metrics" in response


def test_cli_top_one_shot_against_a_directory(enabled, tmp_path, capsys):
    with repro.connect(tmp_path / "j", base=BASE, tag="seed") as conn:
        conn.apply(RAISE, tag="r1")
    assert cli_main(["top", "--dir", str(tmp_path / "j")]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "revisions" in out


def test_cli_client_metrics_and_top_against_a_server(
    enabled, tmp_path, capsys
):
    repro.connect(tmp_path / "served", base=BASE, tag="seed").close()
    socket_path = str(tmp_path / "cli.sock")
    with BackgroundServer(tmp_path / "served", path=socket_path):
        with repro.connect(f"serve:{socket_path}") as conn:
            conn.apply(RAISE, tag="r1")
        assert cli_main(
            ["client", "--socket", socket_path, "metrics"]
        ) == 0
        text = capsys.readouterr().out
        assert "repro_engine_rule_fired_total" in text
        assert cli_main(
            ["client", "--socket", socket_path, "metrics", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["enabled"] is True
        assert cli_main(
            ["client", "--socket", socket_path, "slowlog"]
        ) == 0
        log = json.loads(capsys.readouterr().out)
        assert set(log) == {"entries", "dropped", "capacity", "thresholds_ms"}
        assert cli_main(
            ["top", "--socket", socket_path, "--iterations", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "commit phases" in out


def test_follower_reports_lag_seconds(enabled, tmp_path):
    from repro.replication import Follower

    repro.connect(tmp_path / "primary", base=BASE, tag="seed").close()
    socket_path = str(tmp_path / "repl.sock")
    with BackgroundServer(tmp_path / "primary", path=socket_path) as server:
        follower = Follower(
            tmp_path / "replica", server.address, heartbeat_interval=0.1
        ).start()
        try:
            with repro.connect(f"serve:{socket_path}") as conn:
                conn.apply(RAISE, tag="r1")
            deadline = 50
            while follower._info()["lag"] > 0 and deadline:
                import time

                time.sleep(0.1)
                deadline -= 1
            info = follower._info()
            assert info["lag"] == 0
            assert info["lag_seconds"] == 0.0
            replica_stats = follower.service.stats()
            registry = replica_stats["metrics"]["registry"]
            assert registry["repl_streamed_lines_received"]["series"][""] >= 1
            assert registry["repl_streamed_bytes"]["series"][""] > 0
        finally:
            follower.close()
