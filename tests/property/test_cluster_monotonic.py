"""Property test: scatter-gather reads never observe torn cross-shard state.

Each host carries a counter fact that a storm of single-host commits bumps
while a reader scatter-queries the whole fleet.  Because every commit
advances exactly one component of the revision vector, a reader's
successive cuts must be componentwise monotone — observably: no host's
counter ever goes backwards between reads, and a read carrying the last
commit's cluster index as ``min_revision`` reflects every bump (read your
writes across connections).  Hypothesis drives the storm's target schedule
so the interleaving of shard-0 and shard-1 commits varies per example; the
cluster is module-scoped, so counters keep rising across examples and the
monotonicity obligation compounds rather than resets.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.cluster import LocalCluster, shard_for
from repro.core.terms import Oid

SHARDS = 2
HOSTS = ["ada", "bob", "cleo", "dee", "eve", "finn"]
BASE = "".join(f"{host}.n -> 0. " for host in HOSTS)
COUNTER_QUERY = "E.n -> V"


def _bump(host: str) -> str:
    return f"bump_{host}: mod[{host}].n -> (V, V2) <= {host}.n -> V, V2 = V + 1."


def test_storm_hosts_cover_both_shards():
    placements = {shard_for(Oid(host), SHARDS) for host in HOSTS}
    assert placements == set(range(SHARDS))


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(BASE, shards=SHARDS) as deployment:
        yield deployment


def _counters(answers) -> dict[str, int]:
    observed = {row["E"]: row["V"] for row in answers}
    assert len(observed) == len(answers), "duplicate host rows in a scatter read"
    return observed


@settings(max_examples=5, deadline=None)
@given(targets=st.lists(st.integers(0, len(HOSTS) - 1), min_size=4, max_size=12))
def test_scatter_reads_are_monotonic_under_commit_storm(cluster, targets):
    written: list[repro.api.Revision] = []

    def storm(target: str) -> None:
        with repro.connect(target) as writer:
            for index in targets:
                written.append(writer.apply(_bump(HOSTS[index]), tag="bump"))

    with repro.connect(cluster.target) as reader:
        before = _counters(reader.query(COUNTER_QUERY))
        start_vector = reader.stats()["cluster"]["router"]["vector"]

        thread = threading.Thread(target=storm, args=(cluster.target,))
        thread.start()
        last = dict(before)
        try:
            while thread.is_alive():
                observed = _counters(reader.query(COUNTER_QUERY))
                for host, value in observed.items():
                    assert value >= last[host], (
                        f"{host} went backwards: {last[host]} -> {value}"
                    )
                last = observed
        finally:
            thread.join()

        # read-your-writes across connections: the storm's final cluster
        # index, used as a token here, must expose every bump
        final = _counters(
            reader.query(COUNTER_QUERY, min_revision=written[-1].index)
        )
        expected = dict(before)
        for index in targets:
            expected[HOSTS[index]] += 1
        assert final == expected

        # the revision vector itself moved componentwise forward
        end_vector = reader.stats()["cluster"]["router"]["vector"]
        start_parts = [int(p) for p in start_vector[3:].split(",")]
        end_parts = [int(p) for p in end_vector[3:].split(",")]
        assert all(e >= s for s, e in zip(start_parts, end_parts))
        assert sum(end_parts) >= sum(start_parts) + len(targets)
