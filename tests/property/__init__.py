"""Tests for property."""
