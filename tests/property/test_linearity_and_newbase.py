"""Property tests for version-linearity and new-base construction."""

from hypothesis import given, settings, strategies as st

from repro import UpdateEngine
from repro.core.facts import EXISTS
from repro.core.linearity import check_version_linear
from repro.core.terms import depth, is_subterm, object_of
from repro.workloads.synthetic import (
    random_insert_program,
    random_object_base,
    version_chain_program,
)

seeds = st.integers(0, 10_000)


@settings(max_examples=20, deadline=None)
@given(seeds, seeds)
def test_insert_programs_always_linear(base_seed, program_seed):
    """Insert-only programs create at most one new version per object,
    so linearity can never fail."""
    base = random_object_base(n_objects=6, seed=base_seed)
    program = random_insert_program(n_rules=3, seed=program_seed)
    outcome = UpdateEngine().evaluate(program, base)
    finals = check_version_linear(outcome.result_base)
    assert set(finals) == set(base.objects())


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 6), seeds)
def test_final_version_contains_all_others(k, seed):
    base = random_object_base(n_objects=3, seed=seed)
    outcome = UpdateEngine().evaluate(version_chain_program(k), base)
    result = outcome.result_base
    finals = check_version_linear(result)
    for version in result.existing_versions():
        final = finals[object_of(version)]
        assert is_subterm(version, final)


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 5), seeds)
def test_new_base_equals_final_version_states(k, seed):
    """ob' is exactly the final versions' method-applications, re-hosted."""
    from repro.core.newbase import build_new_base

    base = random_object_base(n_objects=3, seed=seed)
    result = UpdateEngine().apply(version_chain_program(k), base)
    finals = check_version_linear(result.result_base)
    for owner, final in finals.items():
        expected = {
            (f.method, f.args, f.result)
            for f in result.result_base.state_of(final)
            if f.method != EXISTS
        }
        actual = {
            (f.method, f.args, f.result)
            for f in result.new_base.facts_by_host(owner)
            if f.method != EXISTS
        }
        assert actual == expected


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_tracker_agrees_with_posteriori_check(seed):
    """The incremental Section 5 check and the one-pass check agree."""
    base = random_object_base(n_objects=4, seed=seed)
    program = version_chain_program(4)
    outcome = UpdateEngine().evaluate(program, base)  # incremental check on
    posteriori = check_version_linear(outcome.result_base)
    assert outcome.final_versions == posteriori
