"""Property tests: where the baselines *must* agree with the core engine.

The Section 2.4 divergences (E6, E11) are about delete/modify staging; on
monotone, stage-free workloads all semantics coincide — an invariant that
pins both the baselines and the engine at once.
"""

from hypothesis import given, settings, strategies as st

from repro import UpdateEngine
from repro.baselines import naive_one_step_update
from repro.core.facts import EXISTS
from repro.workloads.synthetic import random_insert_program, random_object_base

seeds = st.integers(0, 10_000)


def _visible(base):
    return {f for f in base if f.method != EXISTS}


@settings(max_examples=25, deadline=None)
@given(seeds, seeds)
def test_naive_equals_versioned_on_insert_only_programs(base_seed, program_seed):
    """Insert-only, non-recursive programs have no staging: the one-shot
    semantics and the versioned semantics produce the same ob'."""
    base = random_object_base(n_objects=6, facts_per_object=2, seed=base_seed)
    program = random_insert_program(n_rules=3, seed=program_seed)

    versioned = UpdateEngine().apply(program, base).new_base
    naive = naive_one_step_update(program, base).new_base
    assert _visible(versioned) == _visible(naive)


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_logres_plus_only_module_equals_datalog(seed):
    """A Logres module with insert-only rules is plain (inflationary)
    Datalog over the same rules."""
    from repro.baselines.logres import LogresModule, LogresProgram, LogresRule
    from repro.datalog import DatalogEngine, DatalogProgram
    from repro.workloads.synthetic import (
        random_datalog_chain_program,
        random_edge_database,
    )

    datalog_program = random_datalog_chain_program(n_idb=2, seed=seed)
    edb = random_edge_database(n_nodes=8, n_edges=14, seed=seed)

    modules = LogresProgram([
        LogresModule(
            "m",
            tuple(
                LogresRule(rule.head, rule.body, True, rule.name)
                for rule in datalog_program
            ),
            "inflationary",
        )
    ])
    via_logres = modules.run(edb)
    via_datalog = DatalogEngine("inflationary").run(datalog_program, edb)
    assert via_logres == via_datalog


@settings(max_examples=20, deadline=None)
@given(seeds, seeds)
def test_derived_engine_equals_plain_when_views_unreferenced(base_seed, program_seed):
    from repro.ext.derived import DerivedUpdateEngine, parse_derived_program

    views = parse_derived_program(
        "unused: ?W.shadow -> yes <= ?W.color -> C."
    )
    base = random_object_base(n_objects=5, seed=base_seed)
    program = random_insert_program(n_rules=2, seed=program_seed)

    plain = UpdateEngine().apply(program, base).new_base
    derived = DerivedUpdateEngine(views).apply(program, base).new_base
    assert plain == derived
