"""Differential property test: the semi-naive update engine == the naive one.

The semi-naive engine (delta-driven rule skipping, seeded matching and
precompiled join plans — the default) must be observationally identical to
the naive reference path (``EvaluationOptions(semi_naive=False)``: full
re-match with the dynamic chooser every iteration): same ``result(P)``, same
*sets* of fired rule instances per stratum, same linearity verdicts.  The
module-docstring guarantee of :mod:`repro.core.grounding` ("index-driven
generators can only affect speed, never semantics") extends to deltas.

Randomized programs cover all three update kinds, negation, built-ins,
``del[v].*``, single-stratum recursion and deep version chains
(:func:`repro.workloads.synthetic.random_update_program`), plus deliberately
non-linear programs whose error behaviour must also coincide.  The
brute-force active-domain matcher cross-checks the planned join engine on
the same random rules.
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import ReproError
from repro.core.evaluation import EvaluationOptions, evaluate
from repro.core.grounding import match_rule, match_rule_bruteforce
from repro.workloads.synthetic import random_object_base, random_update_program

seeds = st.integers(0, 1_000_000_000)

FAST = EvaluationOptions(collect_trace=True)
NAIVE = EvaluationOptions(collect_trace=True, semi_naive=False)


def _base_for(seed: int):
    return random_object_base(
        n_objects=6 + seed % 5,
        facts_per_object=3,
        numeric_ratio=0.6,
        seed=seed,
    )


def _run(program, base, options):
    try:
        return evaluate(program, base, options), None
    except ReproError as error:
        return None, type(error)


def _fired_sets(trace):
    return [
        {(f.rule_name, str(f.head), f.binding) for i in s.iterations for f in i.fired}
        for s in trace.strata
    ]


@settings(max_examples=200, deadline=None)
@given(seeds)
def test_semi_naive_equals_naive_on_random_programs(seed):
    """Acceptance property: identical result bases, fired-instance sets and
    linearity verdicts on randomized programs (200 examples)."""
    program = random_update_program(seed=seed, allow_nonlinear=True)
    base = _base_for(seed)

    fast, fast_error = _run(program, base, FAST)
    naive, naive_error = _run(program, base, NAIVE)

    assert fast_error == naive_error
    if fast is None:
        return
    assert fast.result_base == naive.result_base
    assert fast.final_versions == naive.final_versions
    assert fast.iterations == naive.iterations
    assert _fired_sets(fast.trace) == _fired_sets(naive.trace)


@settings(max_examples=200, deadline=None)
@given(seeds)
def test_semi_naive_equals_naive_without_linearity_check(seed):
    """Same comparison with the Section 5 check off, so even non-linear
    programs run to completion and their full result bases must agree."""
    program = random_update_program(seed=seed, allow_nonlinear=True)
    base = _base_for(seed)
    options_fast = EvaluationOptions(check_linearity=False)
    options_naive = EvaluationOptions(check_linearity=False, semi_naive=False)

    fast, fast_error = _run(program, base, options_fast)
    naive, naive_error = _run(program, base, options_naive)

    assert fast_error == naive_error
    if fast is not None:
        assert fast.result_base == naive.result_base


@settings(max_examples=60, deadline=None)
@given(seeds)
def test_planned_matcher_agrees_with_bruteforce(seed):
    """The precompiled-plan matcher equals the active-domain brute force on
    the random rules (small rules only — brute force is exponential)."""
    program = random_update_program(seed=seed, allow_nonlinear=True)
    base = _base_for(seed % 100)  # small domains keep brute force feasible
    checked = 0
    for rule in program:
        enumerable = [v for v in rule.variables]
        if len(enumerable) > 2 or len(base.oid_universe()) > 30:
            continue
        fast = {frozenset(b.items()) for b in match_rule(rule, base)}
        brute = {frozenset(b.items()) for b in match_rule_bruteforce(rule, base)}
        assert fast == brute, f"rule {rule.name}: {fast} != {brute}"
        checked += 1
