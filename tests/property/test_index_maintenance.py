"""Property test for incremental secondary-index maintenance.

The tentpole invariant of the arg-position index layer: a base reached
through an arbitrary chain of ``freeze()`` / ``apply_delta()`` steps — with
indexes built, adopted and updated incrementally along the way — exposes
exactly the same indexes as a base rebuilt from its final fact set from
scratch.  Structural sharing may make revisions cheap, but it must never
make them *different*.
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import FrozenBaseError
from repro.core.facts import Fact, exists_fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid

METHODS = ("sal", "boss", "rate")
HOSTS = tuple(Oid(f"o{i}") for i in range(6))
VALUES = tuple(Oid(v) for v in (1, 2, 3, "a", "b"))


def _fact(host_i: int, method_i: int, arg_i: int, result_i: int) -> Fact:
    method = METHODS[method_i]
    args = (VALUES[arg_i],) if method == "rate" else ()
    return Fact(HOSTS[host_i], method, args, VALUES[result_i])


fact_strategy = st.builds(
    _fact,
    st.integers(0, len(HOSTS) - 1),
    st.integers(0, len(METHODS) - 1),
    st.integers(0, len(VALUES) - 1),
    st.integers(0, len(VALUES) - 1),
)

#: One revision step: facts to add and facts to remove.
delta_strategy = st.tuples(
    st.lists(fact_strategy, max_size=4),
    st.lists(fact_strategy, max_size=4),
)


def _probe_everything(base: ObjectBase) -> dict:
    """Exercise every access path (which also builds every index) and
    snapshot the observable results."""
    observed: dict = {"facts": frozenset(base)}
    for method in (*METHODS, "exists"):
        for arity in (0, 1):
            observed[("method", method, arity)] = base.facts_by_method(method, arity)
            for column in (*range(arity), -1):
                for value in VALUES + tuple(HOSTS):
                    observed[("arg", method, arity, column, value)] = (
                        base.facts_by_arg(method, arity, column, value)
                    )
    for host in HOSTS:
        observed[("host", host)] = base.facts_by_host(host)
        for method in METHODS:
            observed[("hm", host, method)] = base.facts_by_host_method(host, method, 0)
    observed["exists"] = dict(base.existing_versions())
    return observed


@settings(max_examples=40, deadline=None)
@given(
    st.lists(fact_strategy, max_size=8),
    st.lists(delta_strategy, min_size=1, max_size=6),
    st.booleans(),
)
def test_delta_chain_indexes_equal_scratch_rebuild(initial, deltas, probe_midway):
    base = ObjectBase(initial)
    base.ensure_exists()
    base.add(exists_fact(HOSTS[0]))
    for added, removed in deltas:
        # Build (some or all) indexes *before* the delta so apply_delta has
        # adopted state to maintain, then freeze so adoption kicks in.
        if probe_midway:
            _probe_everything(base)
        else:
            base.facts_by_arg("sal", 0, -1, VALUES[0])
        base.freeze()
        base = base.apply_delta(added, removed)

    rebuilt = ObjectBase(set(base))
    assert _probe_everything(base) == _probe_everything(rebuilt)


@settings(max_examples=25, deadline=None)
@given(st.lists(fact_strategy, min_size=1, max_size=8), delta_strategy)
def test_mutating_an_adopted_base_stays_correct(initial, delta):
    """Direct add/discard on a base that adopted shared indexes must
    demote cleanly — results equal a scratch rebuild, and the frozen
    parent is untouched."""
    added, removed = delta
    parent = ObjectBase(initial)
    _probe_everything(parent)  # build all indexes
    parent.freeze()
    parent_before = _probe_everything(parent)

    child = parent.apply_delta(added, removed)
    probe = _probe_everything(child)  # uses adopted, shared buckets
    extra = Fact(HOSTS[0], "probe_only", (), VALUES[0])  # never generated
    child.add(extra)
    child.discard(extra)
    assert _probe_everything(child) == probe
    assert _probe_everything(parent) == parent_before


def test_frozen_base_rejects_index_mutation():
    base = ObjectBase([_fact(0, 0, 0, 0)])
    base.facts_by_arg("sal", 0, -1, VALUES[0])  # build a secondary index
    base.freeze()
    try:
        base.add(_fact(1, 0, 0, 0))
    except FrozenBaseError:
        pass
    else:  # pragma: no cover - the assertion documents the failure
        raise AssertionError("frozen base accepted add()")
    try:
        base.discard(_fact(0, 0, 0, 0))
    except FrozenBaseError:
        pass
    else:  # pragma: no cover
        raise AssertionError("frozen base accepted discard()")
    # Index *building* stays allowed on frozen bases (it only caches
    # derived state) — both for fresh columns and fresh method keys.
    assert base.facts_by_arg("boss", 0, -1, VALUES[0]) == frozenset()
