"""Differential property test: compiled execution == interpreted == naive.

The codegen'd, set-at-a-time executor (:mod:`repro.core.codegen`, the
default) must be observationally identical to the interpreted planned
walker (``EvaluationOptions(compiled=False)``) and to the naive
dynamic-ordering reference (``semi_naive=False``): same ``result(P)``, same
*sets* of fired rule instances per stratum, same linearity verdicts, same
error behaviour.  Randomized programs cover all three update kinds,
negation, built-ins, ``del[v].*``, recursion and deep version chains — the
same generator the semi-naive equivalence suite uses — so the compiled
closures face every body shape the planner can produce, including the
unplannable ones (where they must fall back, not diverge).

The Datalog substrate's compiled bodies get the same treatment against its
interpreted matcher on random layered-chain programs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.codegen import compiled_body, match_rule_compiled
from repro.core.errors import ReproError
from repro.core.evaluation import EvaluationOptions, evaluate
from repro.core.grounding import _body_plan, match_rule
from repro.core.plans import rule_plan
from repro.datalog.evaluation import evaluate_stratified
from repro.workloads.synthetic import (
    random_datalog_chain_program,
    random_edge_database,
    random_object_base,
    random_update_program,
)

seeds = st.integers(0, 1_000_000_000)

COMPILED = EvaluationOptions(collect_trace=True, compiled=True)
INTERPRETED = EvaluationOptions(collect_trace=True, compiled=False)
NAIVE = EvaluationOptions(collect_trace=True, semi_naive=False)


def _base_for(seed: int):
    return random_object_base(
        n_objects=6 + seed % 5,
        facts_per_object=3,
        numeric_ratio=0.6,
        seed=seed,
    )


def _run(program, base, options):
    try:
        return evaluate(program, base, options), None
    except ReproError as error:
        return None, type(error)


def _fired_sets(trace):
    return [
        {(f.rule_name, str(f.head), f.binding) for i in s.iterations for f in i.fired}
        for s in trace.strata
    ]


@settings(max_examples=200, deadline=None)
@given(seeds)
def test_compiled_equals_interpreted_and_naive(seed):
    """Acceptance property: identical result bases, fired-instance sets and
    linearity verdicts across all three execution paths (200 examples)."""
    program = random_update_program(seed=seed, allow_nonlinear=True)
    base = _base_for(seed)

    compiled, compiled_error = _run(program, base, COMPILED)
    interpreted, interpreted_error = _run(program, base, INTERPRETED)
    naive, naive_error = _run(program, base, NAIVE)

    assert compiled_error == interpreted_error == naive_error
    if compiled is None:
        return
    assert compiled.result_base == interpreted.result_base == naive.result_base
    assert (
        compiled.final_versions
        == interpreted.final_versions
        == naive.final_versions
    )
    assert compiled.iterations == interpreted.iterations == naive.iterations
    assert (
        _fired_sets(compiled.trace)
        == _fired_sets(interpreted.trace)
        == _fired_sets(naive.trace)
    )


@settings(max_examples=50, deadline=None)
@given(seeds)
def test_fired_count_metrics_agree_across_execution_paths(seed):
    """Observability must not depend on the executor: with metrics on, the
    per-rule ``engine_rule_fired`` counters recorded by the compiled path
    equal the interpreted path's, rule by rule, on random programs.  (Runs
    identically under ``REPRO_NO_CODEGEN=1`` — the options force each
    path explicitly.)"""
    from repro.obs import metrics

    program = random_update_program(seed=seed, allow_nonlinear=True)
    base = _base_for(seed)

    def fired_counts(options):
        metrics.registry().reset()
        _, error = _run(program, base, options)
        entry = metrics.registry().snapshot().get("engine_rule_fired")
        return error, dict(entry["series"]) if entry else {}

    metrics.enable_metrics(True)
    try:
        compiled_error, compiled_counts = fired_counts(COMPILED)
        interpreted_error, interpreted_counts = fired_counts(INTERPRETED)
    finally:
        metrics.registry().reset()
        metrics.enable_metrics(None)
    assert compiled_error == interpreted_error
    assert compiled_counts == interpreted_counts


@settings(max_examples=100, deadline=None)
@given(seeds)
def test_compiled_matcher_agrees_with_interpreted_per_rule(seed):
    """Rule-matcher level: the compiled closure's bindings equal the
    interpreted planned matcher's for every plannable random rule — as a
    set *and* in count, so the dedup contract (keys only when more than one
    generator) matches exactly."""
    program = random_update_program(seed=seed, allow_nonlinear=True)
    base = _base_for(seed)
    for rule in program:
        compiled = match_rule_compiled(rule, base)
        if compiled is None:
            assert rule_plan(rule).full_plan is None
            continue
        interpreted = list(match_rule(rule, base))
        assert len(compiled) == len(interpreted)
        fast = {frozenset(b.items()) for b in compiled}
        slow = {frozenset(b.items()) for b in interpreted}
        assert fast == slow, f"rule {rule.name}: {fast} != {slow}"


@settings(max_examples=100, deadline=None)
@given(seeds)
def test_compiled_body_slots_cover_plan_key_vars(seed):
    """Structural invariant behind the dedup contract: a compiled body's
    slot layout covers exactly the plan's ``key_vars`` (all body variables
    in ``var_sort_key`` order), and its dedup-key slots read them back in
    that exact order."""
    from repro.core.plans import var_sort_key

    program = random_update_program(seed=seed, allow_nonlinear=True)
    for rule in program:
        body = compiled_body(tuple(rule.body))
        if body is None:
            continue
        plan = _body_plan(tuple(rule.body))
        assert tuple(body.slots[i] for i in body.key_slots) == plan.key_vars
        assert tuple(sorted(body.slots, key=var_sort_key)) == plan.key_vars
        assert body.generator_count == plan.generator_count


@settings(max_examples=80, deadline=None)
@given(seeds, st.booleans())
def test_datalog_compiled_equals_interpreted(seed, negated_tail):
    """The Datalog substrate: evaluation with compiled bodies equals the
    interpreted matcher (both fixpoint flavours) on random layered-chain
    programs over random graphs.  The interpreted runs go through the
    ``REPRO_NO_CODEGEN`` escape hatch — exercising it is the point."""
    import os

    program = random_datalog_chain_program(
        n_idb=2 + seed % 3, negated_tail=negated_tail, seed=seed
    )
    edb = random_edge_database(
        n_nodes=8 + seed % 8, n_edges=16 + seed % 16, seed=seed
    )
    original = os.environ.get("REPRO_NO_CODEGEN")
    os.environ.pop("REPRO_NO_CODEGEN", None)
    try:
        with_codegen = evaluate_stratified(program, edb)
        os.environ["REPRO_NO_CODEGEN"] = "1"
        interpreted = evaluate_stratified(program, edb)
        naive = evaluate_stratified(program, edb, seminaive=False)
    finally:
        if original is None:
            os.environ.pop("REPRO_NO_CODEGEN", None)
        else:
            os.environ["REPRO_NO_CODEGEN"] = original
    assert with_codegen == interpreted == naive
