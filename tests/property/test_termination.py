"""Property tests for the finiteness claim of Section 2.1 (experiment E9).

"For safe rules only a finite number of new versions can be derived during
evaluation" — the functor depth of derivable VIDs is bounded by the maximal
head-pattern depth, so #versions <= #objects x (max depth + 1) along each
object's linear chain.
"""

from hypothesis import given, settings, strategies as st

from repro import UpdateEngine
from repro.core.terms import depth
from repro.workloads.synthetic import (
    random_insert_program,
    random_object_base,
    version_chain_program,
)

seeds = st.integers(0, 10_000)


@settings(max_examples=20, deadline=None)
@given(seeds, seeds, st.integers(1, 4))
def test_version_count_bounded(base_seed, program_seed, n_rules):
    base = random_object_base(n_objects=6, seed=base_seed)
    program = random_insert_program(n_rules=n_rules, seed=program_seed)
    outcome = UpdateEngine().evaluate(program, base)

    max_head_depth = max(depth(rule.head.new_version()) for rule in program)
    versions = outcome.result_base.existing_versions()
    assert all(depth(v) <= max_head_depth for v in versions)
    assert len(versions) <= len(base.objects()) * (max_head_depth + 1)


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 8), seeds)
def test_chain_version_count_exact(k, seed):
    """A depth-k chain creates exactly k new versions per object."""
    base = random_object_base(n_objects=3, seed=seed)
    outcome = UpdateEngine().evaluate(version_chain_program(k), base)
    n_objects = len(base.objects())
    assert len(outcome.result_base.existing_versions()) == n_objects * (k + 1)


@settings(max_examples=20, deadline=None)
@given(seeds, seeds)
def test_evaluation_terminates_quickly_on_insert_programs(base_seed, program_seed):
    base = random_object_base(n_objects=8, seed=base_seed)
    program = random_insert_program(n_rules=4, seed=program_seed)
    outcome = UpdateEngine().evaluate(program, base)
    # non-recursive inserts: one productive round + one fixpoint round
    # per stratum is the worst case
    assert outcome.iterations <= 2 * len(outcome.stratification) + 2


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_idempotence_of_fixpoint(seed):
    """Applying T_P once more at the fixpoint changes nothing — the very
    definition of result(P)."""
    from repro.core.consequence import apply_tp, tp_step
    from repro.workloads import salary_raise_program
    from repro.workloads.enterprise import enterprise_base

    base = enterprise_base(n_employees=8, seed=seed)
    program = salary_raise_program()
    outcome = UpdateEngine().evaluate(program, base)
    working = outcome.result_base.copy()
    step = tp_step(list(program), working)
    assert not apply_tp(working, step)
