"""Property test for the Datalog substrate: semi-naive == naive (E12).

The substrate claim behind the paper's "variant of stratified Datalog"
positioning: the delta optimisation must be observationally invisible.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import DatalogEngine
from repro.workloads.synthetic import (
    random_datalog_chain_program,
    random_edge_database,
)

seeds = st.integers(0, 10_000)


@settings(max_examples=20, deadline=None)
@given(seeds, st.integers(1, 3), st.booleans())
def test_seminaive_equals_naive_on_random_programs(seed, n_idb, negated_tail):
    program = random_datalog_chain_program(
        n_idb=n_idb, negated_tail=negated_tail, seed=seed
    )
    edb = random_edge_database(n_nodes=10, n_edges=20, seed=seed)
    naive = DatalogEngine("naive").run(program, edb)
    seminaive = DatalogEngine("seminaive").run(program, edb)
    assert naive == seminaive


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_transitive_closure_matches_networkx(seed):
    import networkx as nx

    edb = random_edge_database(n_nodes=8, n_edges=16, seed=seed)
    graph = nx.DiGraph(
        (str(row[0]), str(row[1])) for row in edb.rows("edge", 2)
    )
    program = random_datalog_chain_program(n_idb=1, seed=seed)
    result = DatalogEngine().run(program, edb)

    # reachability by paths of length >= 1 (matches the Datalog program,
    # including (x, x) pairs on cycles — nx.descendants drops those)
    expected = set()
    for source in graph:
        for successor in graph.successors(source):
            expected.add((source, successor))
            expected.update(
                (source, target) for target in nx.descendants(graph, successor)
            )
    computed = {
        (a, b) for a, b in DatalogEngine.query(result, "p0", (None, None))
    }
    assert computed == expected


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_inflationary_contains_stratified_on_positive_programs(seed):
    """On negation-free programs all three modes coincide."""
    program = random_datalog_chain_program(n_idb=2, negated_tail=False, seed=seed)
    edb = random_edge_database(n_nodes=8, n_edges=14, seed=seed)
    stratified = DatalogEngine("seminaive").run(program, edb)
    inflationary = DatalogEngine("inflationary").run(program, edb)
    assert stratified == inflationary
