"""Property tests for the frame axiom (Section 3, footnote 4).

The copy step of ``T_P`` implements the frame rule: everything true for the
old version stays true for the new one unless an update says otherwise.
Consequently, across a whole update-process:

* objects no rule touches keep their state in ``ob'`` verbatim;
* methods an update never mentions survive on updated objects;
* the original base is never mutated.
"""

from hypothesis import given, settings, strategies as st

from repro import UpdateEngine, query
from repro.core.facts import EXISTS
from repro.core.objectbase import ObjectBase
from repro.workloads.synthetic import random_insert_program, random_object_base

seeds = st.integers(0, 10_000)


@settings(max_examples=25, deadline=None)
@given(seeds, seeds)
def test_insert_programs_preserve_existing_facts(base_seed, program_seed):
    """Insert-only programs are monotone: ob' ⊇ ob (minus nothing)."""
    base = random_object_base(n_objects=8, facts_per_object=2, seed=base_seed)
    program = random_insert_program(n_rules=3, seed=program_seed)
    result = UpdateEngine().apply(program, base)
    original = {f for f in base if f.method != EXISTS}
    updated = set(result.new_base)
    assert original <= updated


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_untouched_objects_keep_state(seed):
    """A raise on employees leaves every non-employee object untouched."""
    from repro.workloads import salary_raise_program

    base = random_object_base(n_objects=6, seed=seed)  # no employees at all
    before = {f for f in base if f.method != EXISTS}
    result = UpdateEngine().apply(salary_raise_program(), base)
    after = {f for f in result.new_base if f.method != EXISTS}
    assert before == after


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_unmentioned_methods_survive_updates(seed):
    """Modifying `sal` never disturbs `isa`/`boss`/`pos` facts."""
    from repro.workloads import enterprise_base, salary_raise_program

    base = enterprise_base(n_employees=12, seed=seed)
    result = UpdateEngine().apply(salary_raise_program(), base)
    for method in ("isa", "boss", "pos"):
        before = {(str(f.host), str(f.result)) for f in base if f.method == method}
        after = {
            (str(f.host), str(f.result))
            for f in result.new_base
            if f.method == method
        }
        assert before == after


@settings(max_examples=25, deadline=None)
@given(seeds, seeds)
def test_input_base_never_mutated(base_seed, program_seed):
    base = random_object_base(n_objects=6, seed=base_seed)
    snapshot = base.copy()
    program = random_insert_program(n_rules=2, seed=program_seed)
    UpdateEngine().apply(program, base)
    assert base == snapshot


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_lazy_copying_only_touches_updated_objects(seed):
    """Footnote 4: copies are made per updated object, not per base."""
    from repro import parse_program

    base = random_object_base(n_objects=20, seed=seed)
    # touch exactly one known object
    target = sorted(str(o) for o in base.objects())[0]
    program = parse_program(
        f"one: ins[{target}].touched -> yes <= {target}.exists -> {target}."
    )
    engine = UpdateEngine(collect_trace=True)
    outcome = engine.evaluate(program, base)
    assert outcome.trace.total_copies == 1
