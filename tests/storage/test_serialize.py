"""Serialization round-trip tests (text and JSON)."""

import pytest

from repro.core.errors import TermError
from repro.core.facts import Fact, exists_fact
from repro.core.terms import Oid, UpdateKind, wrap
from repro.storage import (
    dump_base_json,
    dump_base_text,
    load_base_json,
    load_base_text,
)
from repro.workloads import paper_example_base

O = Oid


def test_text_round_trip(tmp_path):
    base = paper_example_base()
    path = tmp_path / "world.ob"
    dump_base_text(base, path)
    assert load_base_text(path) == base


def test_text_from_literal_string():
    base = load_base_text("a.m -> 1.\n")
    assert Fact(O("a"), "m", (), O(1)) in base


def test_json_round_trip_plain():
    base = paper_example_base()
    assert load_base_json(dump_base_json(base)) == base


def test_json_round_trip_with_versions(tmp_path):
    # JSON preserves derived versions that text + ensure_exists cannot
    base = paper_example_base()
    version = wrap(UpdateKind.MODIFY, O("phil"))
    base.add(exists_fact(version))
    base.add(Fact(version, "sal", (), O(4600)))

    path = tmp_path / "result.json"
    dump_base_json(base, path)
    loaded = load_base_json(path)
    assert loaded == base
    assert loaded.version_exists(version)


def test_json_preserves_numeric_types():
    base = load_base_text("a.m -> 1. a.n -> 1.5.")
    loaded = load_base_json(dump_base_json(base))
    values = {f.result.value for f in loaded if f.method in ("m", "n")}
    assert values == {1, 1.5}
    assert {type(v) for v in values} == {int, float}


def test_json_format_guard():
    with pytest.raises(TermError):
        load_base_json('{"format": "something-else", "facts": []}')


def test_json_args_round_trip():
    base = load_base_text("g.dist@a,b -> 7.")
    loaded = load_base_json(dump_base_json(base))
    assert Fact(O("g"), "dist", (O("a"), O("b")), O(7)) in loaded
