"""Tests for the versioned store (revision chain, as-of, diff)."""

import pytest

from repro import query
from repro.core.errors import FrozenBaseError, ReproError
from repro.storage import VersionedStore
from repro.workloads import paper_example_base, paper_example_program, salary_raise_program


@pytest.fixture()
def store():
    return VersionedStore(paper_example_base(), tag="initial")


class TestRevisions:
    def test_initial_revision(self, store):
        assert len(store) == 1
        assert store.head.tag == "initial"
        assert store.head.program_name is None

    def test_apply_appends(self, store):
        store.apply(paper_example_program(), tag="update")
        assert len(store) == 2
        assert store.head.tag == "update"
        assert store.head.program_name == "enterprise-update"

    def test_auto_tags(self, store):
        store.apply(salary_raise_program())
        assert store.head.tag == "rev1"

    def test_as_of_by_tag_and_index(self, store):
        store.apply(paper_example_program(), tag="update")
        assert query(store.as_of("initial"), "phil.sal -> S") == [{"S": 4000}]
        assert query(store.as_of(0), "bob.isa -> empl") == [{}]
        assert query(store.as_of(1), "bob.isa -> empl") == []

    def test_unknown_revision(self, store):
        with pytest.raises(ReproError):
            store.as_of("nope")
        with pytest.raises(ReproError):
            store.as_of(7)

    def test_current_is_a_frozen_shared_view(self, store):
        snapshot = store.current
        assert snapshot is store.current  # no copy-on-read
        with pytest.raises(FrozenBaseError):
            snapshot.add_object("intruder")
        assert "intruder" not in {str(o) for o in store.current.objects()}

    def test_current_copy_is_private_and_mutable(self, store):
        private = store.current.copy()
        private.add_object("intruder")
        assert "intruder" not in {str(o) for o in store.current.objects()}

    def test_commit_external_base(self, store):
        external = paper_example_base(bob_salary=9999)
        revision = store.commit_base(external, tag="import")
        assert revision.index == 1
        assert query(store.current, "bob.sal -> S") == [{"S": 9999}]


class TestAtomicity:
    def test_failed_update_leaves_store_untouched(self, store):
        from repro import parse_program

        bad = parse_program(
            """
            m: mod[o].m -> (a, b) <= o.trigger -> yes.
            d: del[o].m -> a <= o.trigger -> yes.
            """
        )
        store.commit_base(
            __import__("repro").parse_object_base("o.m -> a. o.trigger -> yes."),
            tag="staged",
        )
        with pytest.raises(ReproError):
            store.apply(bad, tag="boom")
        assert store.head.tag == "staged"
        assert len(store) == 2


class TestDiff:
    def test_diff_directions(self, store):
        store.apply(paper_example_program(), tag="update")
        added, removed = store.diff("initial", "update")
        added_text = {str(f) for f in added}
        removed_text = {str(f) for f in removed}
        assert "phil.isa -> hpe" in added_text
        assert "phil.sal -> 4000" in removed_text
        assert "bob.isa -> empl" in removed_text

    def test_diff_excludes_exists_by_default(self, store):
        store.apply(paper_example_program(), tag="update")
        added, removed = store.diff("initial", "update")
        assert all(f.method != "exists" for f in added | removed)
        _added, removed_with = store.diff("initial", "update", include_exists=True)
        assert any(f.method == "exists" for f in removed_with)  # bob vanished
