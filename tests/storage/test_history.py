"""Tests for the versioned store (revision chain, as-of, diff)."""

import pytest

from repro import query
from repro.core.errors import FrozenBaseError, ReproError
from repro.storage import VersionedStore
from repro.workloads import paper_example_base, paper_example_program, salary_raise_program


@pytest.fixture()
def store():
    return VersionedStore(paper_example_base(), tag="initial")


class TestRevisions:
    def test_initial_revision(self, store):
        assert len(store) == 1
        assert store.head.tag == "initial"
        assert store.head.program_name is None

    def test_apply_appends(self, store):
        store.apply(paper_example_program(), tag="update")
        assert len(store) == 2
        assert store.head.tag == "update"
        assert store.head.program_name == "enterprise-update"

    def test_auto_tags(self, store):
        store.apply(salary_raise_program())
        assert store.head.tag == "rev1"

    def test_as_of_by_tag_and_index(self, store):
        store.apply(paper_example_program(), tag="update")
        assert query(store.as_of("initial"), "phil.sal -> S") == [{"S": 4000}]
        assert query(store.as_of(0), "bob.isa -> empl") == [{}]
        assert query(store.as_of(1), "bob.isa -> empl") == []

    def test_unknown_revision(self, store):
        with pytest.raises(ReproError):
            store.as_of("nope")
        with pytest.raises(ReproError):
            store.as_of(7)

    def test_current_is_a_frozen_shared_view(self, store):
        snapshot = store.current
        assert snapshot is store.current  # no copy-on-read
        with pytest.raises(FrozenBaseError):
            snapshot.add_object("intruder")
        assert "intruder" not in {str(o) for o in store.current.objects()}

    def test_current_copy_is_private_and_mutable(self, store):
        private = store.current.copy()
        private.add_object("intruder")
        assert "intruder" not in {str(o) for o in store.current.objects()}

    def test_commit_external_base(self, store):
        external = paper_example_base(bob_salary=9999)
        revision = store.commit_base(external, tag="import")
        assert revision.index == 1
        assert query(store.current, "bob.sal -> S") == [{"S": 9999}]


class TestAtomicity:
    def test_failed_update_leaves_store_untouched(self, store):
        from repro import parse_program

        bad = parse_program(
            """
            m: mod[o].m -> (a, b) <= o.trigger -> yes.
            d: del[o].m -> a <= o.trigger -> yes.
            """
        )
        store.commit_base(
            __import__("repro").parse_object_base("o.m -> a. o.trigger -> yes."),
            tag="staged",
        )
        with pytest.raises(ReproError):
            store.apply(bad, tag="boom")
        assert store.head.tag == "staged"
        assert len(store) == 2


class TestDiff:
    def test_diff_directions(self, store):
        store.apply(paper_example_program(), tag="update")
        added, removed = store.diff("initial", "update")
        added_text = {str(f) for f in added}
        removed_text = {str(f) for f in removed}
        assert "phil.isa -> hpe" in added_text
        assert "phil.sal -> 4000" in removed_text
        assert "bob.isa -> empl" in removed_text

    def test_diff_excludes_exists_by_default(self, store):
        store.apply(paper_example_program(), tag="update")
        added, removed = store.diff("initial", "update")
        assert all(f.method != "exists" for f in added | removed)
        _added, removed_with = store.diff("initial", "update", include_exists=True)
        assert any(f.method == "exists" for f in removed_with)  # bob vanished


class TestNegativeIndexes:
    def test_negative_revision_references_are_rejected(self, store):
        store.apply(salary_raise_program(), tag="raise")
        with pytest.raises(ReproError):
            store.as_of(-1)
        with pytest.raises(ReproError):
            store.diff(-1, 1)
        with pytest.raises(ReproError):
            store.rollback_to(-2)


class TestCommitListeners:
    def test_listener_sees_every_commit_with_exact_delta(self, store):
        seen = []
        store.add_commit_listener(seen.append)
        store.apply(salary_raise_program(), tag="raise")
        assert [r.tag for r in seen] == ["raise"]
        assert seen[0].index == 1
        assert {str(f) for f in seen[0].removed} >= {"phil.sal -> 4000"}
        store.remove_commit_listener(seen.append)  # different bound object: no-op
        store.remove_commit_listener(seen[0])  # unknown listener: no-op

    def test_removed_listener_stops_firing(self, store):
        seen = []
        listener = store.add_commit_listener(seen.append)
        store.apply(salary_raise_program(), tag="one")
        store.remove_commit_listener(listener)
        store.apply(salary_raise_program(), tag="two")
        assert [r.tag for r in seen] == ["one"]


class TestJournalCompactionInterleaving:
    """Satellite: compaction interleaved with ``append_revision`` must
    round-trip (compact → append → reload), and a torn tail line is
    recovered on load."""

    @staticmethod
    def _journal_store(tmp_path, revisions=5, interval=2):
        from repro.storage import StoreOptions, save_store

        store = VersionedStore(
            paper_example_base(),
            tag="initial",
            options=StoreOptions(snapshot_interval=interval),
        )
        for index in range(revisions):
            store.apply(salary_raise_program(), tag=f"r{index}")
        save_store(store, tmp_path)
        return store

    def test_compact_then_append_then_reload(self, tmp_path):
        from repro.storage import append_revision, compact_journal, load_store

        self._journal_store(tmp_path, revisions=5, interval=2)
        compacted = compact_journal(tmp_path, snapshot_interval=4)
        # append onto the *compacted* store/journal, then reload
        compacted.apply(salary_raise_program(), tag="after-compact")
        append_revision(compacted, tmp_path)
        reloaded = load_store(tmp_path)
        assert len(reloaded) == 7
        assert reloaded.head.tag == "after-compact"
        assert reloaded.options.snapshot_interval == 4
        for index in range(len(reloaded)):
            assert set(reloaded.base_at(index)) == set(compacted.base_at(index))
        # a second compact+append cycle keeps working
        twice = compact_journal(tmp_path, snapshot_interval=3)
        twice.apply(salary_raise_program(), tag="again")
        append_revision(twice, tmp_path)
        assert load_store(tmp_path).head.tag == "again"

    def test_truncated_tail_line_is_recovered_on_load(self, tmp_path):
        from repro.storage import append_revision, load_store
        from repro.storage.serialize import JOURNAL_FILE

        store = self._journal_store(tmp_path, revisions=3)
        journal = tmp_path / JOURNAL_FILE
        intact = journal.read_text(encoding="utf-8")
        torn = intact.splitlines()
        # simulate a crash mid-append: the final line is cut short
        journal.write_text(
            "\n".join(torn[:-1]) + "\n" + torn[-1][: len(torn[-1]) // 2],
            encoding="utf-8",
        )
        torn_bytes = journal.read_bytes()
        readonly = load_store(tmp_path)
        assert len(readonly) == 3  # the torn revision never became durable
        assert readonly.head.tag == "r1"
        # a read-only load recovers in memory but must not touch the file
        assert journal.read_bytes() == torn_bytes
        # a writer load (repair=True) truncates, so appending lines up again
        recovered = load_store(tmp_path, repair=True)
        assert journal.read_bytes() != torn_bytes
        for index in range(len(recovered)):
            assert set(recovered.base_at(index)) == set(store.base_at(index))
        recovered.apply(salary_raise_program(), tag="recovered")
        append_revision(recovered, tmp_path)
        reloaded = load_store(tmp_path)
        assert [r.tag for r in reloaded.revisions()] == [
            "initial", "r0", "r1", "recovered",
        ]

    def test_mid_journal_corruption_is_a_clean_error(self, tmp_path):
        from repro.storage import load_store
        from repro.storage.serialize import JOURNAL_FILE

        self._journal_store(tmp_path, revisions=3)
        journal = tmp_path / JOURNAL_FILE
        lines = journal.read_text(encoding="utf-8").splitlines()
        lines[2] = lines[2][:10]  # corrupt a non-final line
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ReproError, match="corrupt at line 3"):
            load_store(tmp_path)

    def test_append_on_torn_journal_is_a_clean_error(self, tmp_path):
        from repro.storage import append_revision
        from repro.storage.serialize import JOURNAL_FILE

        store = self._journal_store(tmp_path, revisions=2)
        journal = tmp_path / JOURNAL_FILE
        journal.write_text(
            journal.read_text(encoding="utf-8")[:-20], encoding="utf-8"
        )
        store.apply(salary_raise_program(), tag="next")
        with pytest.raises(ReproError, match="torn line"):
            append_revision(store, tmp_path)

    def test_missing_snapshot_file_is_a_clean_error(self, tmp_path):
        from repro.storage import load_store

        self._journal_store(tmp_path, revisions=3, interval=2)
        (tmp_path / "snap-000002.json").unlink()
        recovered = load_store(tmp_path)
        with pytest.raises(ReproError, match="snapshot .* is missing"):
            recovered.base_at(2)
