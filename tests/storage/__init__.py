"""Tests for storage."""
