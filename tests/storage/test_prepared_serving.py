"""Tests for the store's prepared-query serving layer: per-revision
memoization, delta-driven invalidation, and carry across unaffected
commits."""

import pytest

from repro import parse_object_base, parse_program
from repro.core.query import query_literals
from repro.lang.parser import parse_body
from repro.storage import VersionedStore


@pytest.fixture()
def store():
    return VersionedStore(
        parse_object_base(
            """
            phil.isa -> empl.   phil.pos -> mgr.   phil.sal -> 4000.
            bob.isa -> empl.    bob.sal -> 4200.   bob.boss -> phil.
            """
        )
    )


RAISE = parse_program(
    "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S * 1.1."
)


def _fresh(store, text):
    return query_literals(store.current, parse_body(text))


def test_memo_hits_at_same_revision(store):
    prepared = store.prepare("E.sal -> S", name="sal")
    first = store.query(prepared)
    assert store.query(prepared) is first  # the very cache entry
    stats = store.prepared_stats()["sal"]
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_invalidation_on_affecting_commit(store):
    prepared = store.prepare("E.sal -> S", name="sal")
    before = store.query(prepared)
    store.apply(RAISE, tag="raise")
    after = store.query(prepared)
    assert after != before
    assert after == _fresh(store, "E.sal -> S")
    stats = store.prepared_stats()["sal"]
    assert stats["invalidated"] == 1 and stats["misses"] == 2


def test_carry_across_unaffected_commit(store):
    prepared = store.prepare("E.boss -> B", name="org")
    before = store.query(prepared)
    store.apply(RAISE, tag="raise")  # touches sal facts only
    assert store.query(prepared) is before  # carried, not recomputed
    stats = store.prepared_stats()["org"]
    assert stats["carried"] == 1 and stats["misses"] == 1
    assert stats["invalidated"] == 0
    assert store.query(prepared) == _fresh(store, "E.boss -> B")


def test_unregistered_query_registers_on_first_use(store):
    answers = store.query("E.isa -> empl")
    assert len(answers) == 2
    assert "E.isa -> empl" in store.prepared_stats()


def test_prepare_returns_the_original_registration(store):
    first = store.prepare("E.sal -> S", name="sal")
    assert store.prepare("E.sal -> S") is first  # text repeat skips the parser
    assert store.prepare(first) is first
    store.query(first)
    store.query("E.sal -> S")  # same registration -> a memo hit
    stats = store.prepared_stats()["sal"]
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_text_alias_recorded_for_programmatic_registration(store):
    from repro.core.query import PreparedQuery

    programmatic = PreparedQuery(parse_body("E.sal -> S"), name="sal")
    registered = store.prepare(programmatic)
    # The first text lookup parses, finds the existing registration, and
    # records the alias; repeats then skip the parser entirely.
    assert store.prepare("E.sal -> S") is registered
    assert store._prepared_texts.get("E.sal -> S") is registered


def test_prepared_registry_is_lru_bounded():
    from repro import parse_object_base
    from repro.storage import StoreOptions

    bounded = VersionedStore(
        parse_object_base("phil.isa -> empl."),
        options=StoreOptions(prepared_cache_size=2),
    )
    for method in ("m1", "m2", "m3"):
        bounded.query(f"E.{method} -> R")
    stats = bounded.prepared_stats()
    assert len(stats) == 2
    assert "E.m1 -> R" not in stats  # least-recently used was evicted
    # an evicted query re-registers with a cold memo on next use
    bounded.query("E.m1 -> R")
    assert "E.m1 -> R" in bounded.prepared_stats()
    assert len(bounded.prepared_stats()) == 2


def test_rollback_revalidates(store):
    prepared = store.prepare("E.sal -> S", name="sal")
    initial = list(store.query(prepared))
    store.apply(RAISE, tag="raise")
    store.query(prepared)
    store.rollback_to(0, tag="undo")
    assert store.query(prepared) == initial
    assert store.query(prepared) == _fresh(store, "E.sal -> S")


def test_serving_stays_correct_over_a_chain(store):
    """Differential check across a revision chain: the memoized path always
    equals a fresh per-call query, whatever mix of hits, carries and
    invalidations it took."""
    queries = {
        "sal": store.prepare("E.sal -> S", name="sal"),
        "org": store.prepare("E.boss -> B", name="org"),
        "mgr": store.prepare("M.pos -> mgr", name="mgr"),
    }
    texts = {"sal": "E.sal -> S", "org": "E.boss -> B", "mgr": "M.pos -> mgr"}
    for round_index in range(4):
        for name, prepared in queries.items():
            assert store.query(prepared) == _fresh(store, texts[name]), name
        store.apply(RAISE, tag=f"round{round_index}")
    stats = store.prepared_stats()
    assert stats["org"]["carried"] >= 1
    assert stats["sal"]["invalidated"] >= 1
