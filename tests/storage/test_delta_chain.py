"""Tests for the delta-chain representation of the versioned store.

Covers the snapshot policy, O(deltas-since-snapshot) reconstruction, the
delta-composed ``diff``, structural sharing of frozen views, and the
equivalence of the delta chain with the ``StoreOptions(delta_chain=False)``
full-copy escape hatch over mixed apply/commit/rollback chains.
"""

import pytest

from repro import query
from repro.storage import StoreOptions, VersionedStore
from repro.workloads import (
    paper_example_base,
    paper_example_program,
    salary_raise_program,
    targeted_raise_program,
)


def build_mixed_chain(options: StoreOptions) -> VersionedStore:
    """A chain exercising every commit kind: apply, rollback, commit_base."""
    store = VersionedStore(paper_example_base(), tag="initial", options=options)
    store.apply(paper_example_program(), tag="update")
    store.apply(salary_raise_program(), tag="raise")
    store.rollback_to("initial", tag="undo")
    store.apply(salary_raise_program(percent=5), tag="gentler")
    store.commit_base(paper_example_base(bob_salary=9999), tag="import")
    store.apply(targeted_raise_program("bob", percent=2), tag="bob-only")
    return store


class TestSnapshotPolicy:
    def test_revision_zero_always_snapshots(self):
        store = VersionedStore(paper_example_base())
        assert store.revisions()[0].snapshot is not None

    def test_interval_controls_materialization(self):
        store = build_mixed_chain(StoreOptions(snapshot_interval=3))
        snapshots = [
            r.index for r in store.revisions() if r.snapshot is not None
        ]
        assert snapshots == [0, 3, 6]

    def test_full_copy_snapshots_everywhere(self):
        store = build_mixed_chain(StoreOptions(delta_chain=False))
        assert all(r.snapshot is not None for r in store.revisions())

    def test_interval_must_be_positive(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            StoreOptions(snapshot_interval=0)


class TestReconstruction:
    @pytest.mark.parametrize("interval", [1, 2, 3, 100])
    def test_every_revision_reconstructs_identically(self, interval):
        reference = build_mixed_chain(StoreOptions(delta_chain=False))
        store = build_mixed_chain(StoreOptions(snapshot_interval=interval))
        for index in range(len(store)):
            assert set(store.base_at(index)) == set(reference.base_at(index)), index

    def test_as_of_returns_frozen_shared_view(self):
        store = build_mixed_chain(StoreOptions(snapshot_interval=3))
        view = store.as_of("update")
        assert view.frozen
        # repeated reads share the materialized view (cache hit)
        assert store.as_of("update") is view

    def test_head_is_not_recomputed(self):
        store = build_mixed_chain(StoreOptions(snapshot_interval=100))
        assert store.current is store.base_at(len(store) - 1)

    def test_revision_base_property(self):
        store = build_mixed_chain(StoreOptions(snapshot_interval=3))
        revision = store.revisions()[2]
        assert revision.snapshot is None
        assert query(revision.base, "phil.sal -> S")  # reconstructed via store


class TestDeltaDiff:
    def test_diff_equals_set_difference_of_endpoints(self):
        store = build_mixed_chain(StoreOptions(snapshot_interval=3))
        for older in range(len(store)):
            for newer in range(len(store)):
                added, removed = store.diff(older, newer, include_exists=True)
                old_facts = set(store.base_at(older))
                new_facts = set(store.base_at(newer))
                assert added == new_facts - old_facts
                assert removed == old_facts - new_facts

    def test_intermediate_changes_cancel(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(salary_raise_program(), tag="raise")
        store.rollback_to("initial", tag="undo")
        added, removed = store.diff("initial", "undo", include_exists=True)
        assert added == frozenset() and removed == frozenset()

    def test_include_exists_filter_semantics(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(paper_example_program(), tag="update")
        added, removed = store.diff("initial", "update")
        assert all(f.method != "exists" for f in added | removed)
        _added, removed_with = store.diff("initial", "update", include_exists=True)
        assert any(f.method == "exists" for f in removed_with)


class TestStructuralSharing:
    def test_delta_chain_stores_orders_of_magnitude_fewer_entries(self):
        from repro.workloads import enterprise_base

        base = enterprise_base(n_employees=40, seed=21)
        delta = VersionedStore(base, options=StoreOptions(snapshot_interval=64))
        full = VersionedStore(base, options=StoreOptions(delta_chain=False))
        program = targeted_raise_program("emp0", percent=1)
        for index in range(30):
            delta.apply(program, tag=f"r{index}")
            full.apply(program, tag=f"r{index}")
        assert set(delta.current) == set(full.current)
        assert delta.stored_entries() * 5 < full.stored_entries()

    def test_engine_new_base_is_committed_without_copy(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        result = store.apply(paper_example_program(), tag="update")
        assert result.new_base is store.current
        assert result.new_base.frozen

    def test_reconstruction_shares_fact_objects_with_the_snapshot(self):
        store = VersionedStore(
            paper_example_base(),
            tag="initial",
            options=StoreOptions(snapshot_interval=100),
        )
        program = targeted_raise_program("bob", percent=1)
        store.apply(program, tag="r1")
        store.apply(program, tag="r2")
        snapshot = store.revisions()[0].snapshot
        untouched = next(f for f in snapshot if str(f) == "phil.sal -> 4000")
        view = store.as_of("r1")  # snapshot ⊕ delta, not a fact-by-fact copy
        shared = next(f for f in view if str(f) == "phil.sal -> 4000")
        assert untouched is shared  # same Fact object, not an equal copy
