"""Tests for store rollback and the Figure-1 chain renderer."""

import pytest

from repro import UpdateEngine, query
from repro.core.errors import FrozenBaseError, VersionLinearityError
from repro.core.trace import render_version_chains
from repro.lang.parser import parse_object_base, parse_program
from repro.storage import VersionedStore
from repro.workloads import (
    paper_example_base,
    paper_example_program,
    salary_raise_program,
)


class TestRollback:
    def test_rollback_appends_a_revision(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(paper_example_program(), tag="update")
        revision = store.rollback_to("initial")
        assert len(store) == 3
        assert revision.tag == "rollback-to-initial"
        assert query(store.current, "bob.isa -> empl") == [{}]

    def test_history_is_preserved(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(paper_example_program(), tag="update")
        store.rollback_to("initial")
        # the rolled-back state is still in the chain
        assert query(store.as_of("update"), "bob.isa -> empl") == []

    def test_rollback_then_new_updates(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(paper_example_program(), tag="update")
        store.rollback_to(0, tag="undo")
        store.apply(salary_raise_program(), tag="gentler")
        salaries = {a["E"]: a["S"] for a in query(store.current, "E.sal -> S")}
        assert salaries == {
            "phil": pytest.approx(4400.0),
            "bob": pytest.approx(4620.0),
        }

    def test_rollback_target_stays_immutable(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        revision = store.rollback_to("initial")
        with pytest.raises(FrozenBaseError):
            revision.base.add_object("intruder")
        assert "intruder" not in {str(o) for o in store.as_of("initial").objects()}

    def test_rollback_revision_records_the_returning_delta(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(paper_example_program(), tag="update")
        revision = store.rollback_to("initial", tag="undo")
        # the undo delta is the exact inverse of the update's diff
        added, removed = store.diff("update", "undo", include_exists=True)
        assert added == revision.added
        assert removed == revision.removed
        assert any(f.method == "exists" for f in revision.added)  # bob returns


class TestChainRendering:
    def test_figure1_style_output(self, engine):
        result = engine.evaluate(paper_example_program(), paper_example_base())
        text = render_version_chains(result.result_base)
        assert "bob: bob => mod(bob) => del(mod(bob))" in text
        assert "phil: phil => mod(phil) => ins(mod(phil))" in text

    def test_custom_arrow(self, engine):
        result = engine.evaluate(paper_example_program(), paper_example_base())
        text = render_version_chains(result.result_base, arrow=" -> ")
        assert "bob -> mod(bob)" in text

    def test_nonlinear_base_rejected(self, engine):
        base = parse_object_base("o.m -> a. o.t -> yes.")
        program = parse_program(
            """
            m: mod[o].m -> (a, b) <= o.t -> yes.
            d: del[o].m -> a <= o.t -> yes.
            """
        )
        outcome = UpdateEngine(check_linearity=False).evaluate(program, base)
        with pytest.raises(VersionLinearityError):
            render_version_chains(outcome.result_base)

    def test_untouched_base_renders_single_nodes(self):
        text = render_version_chains(paper_example_base())
        assert "bob: bob" in text and "phil: phil" in text
