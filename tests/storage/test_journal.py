"""Tests for the durable store journal (JSONL delta log + snapshots).

Includes the satellite property tests: a journal save→load round-trips an
N-revision chain (same facts at every revision, same tags), and
rollback-then-apply chains behave identically over the delta representation
and after a disk round-trip.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ReproError
from repro.storage import (
    StoreOptions,
    VersionedStore,
    append_revision,
    compact_journal,
    load_store,
    save_store,
)
from repro.storage.serialize import JOURNAL_FILE
from repro.workloads import (
    paper_example_base,
    paper_example_program,
    salary_raise_program,
    targeted_raise_program,
)


def assert_same_chain(left: VersionedStore, right: VersionedStore) -> None:
    assert len(left) == len(right)
    for a, b in zip(left.revisions(), right.revisions()):
        assert a.index == b.index
        assert a.tag == b.tag
        assert a.program_name == b.program_name
        assert a.added == b.added
        assert a.removed == b.removed
        assert set(left.base_at(a.index)) == set(right.base_at(b.index))


class TestJournalRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(paper_example_program(), tag="update")
        store.apply(salary_raise_program(), tag="raise")
        save_store(store, tmp_path)
        assert_same_chain(store, load_store(tmp_path))

    def test_loaded_store_continues_the_chain(self, tmp_path):
        store = VersionedStore(paper_example_base(), tag="initial")
        store.apply(salary_raise_program(), tag="raise")
        save_store(store, tmp_path)
        loaded = load_store(tmp_path)
        loaded.apply(salary_raise_program(), tag="again")
        store.apply(salary_raise_program(), tag="again")
        assert set(loaded.current) == set(store.current)

    def test_append_revision_is_incremental(self, tmp_path):
        store = VersionedStore(paper_example_base(), tag="initial")
        save_store(store, tmp_path)
        before = (tmp_path / JOURNAL_FILE).read_text(encoding="utf-8")
        store.apply(salary_raise_program(), tag="raise")
        append_revision(store, tmp_path)
        after = (tmp_path / JOURNAL_FILE).read_text(encoding="utf-8")
        assert after.startswith(before)  # history was not rewritten
        assert_same_chain(store, load_store(tmp_path))

    def test_options_round_trip(self, tmp_path):
        store = VersionedStore(
            paper_example_base(),
            options=StoreOptions(delta_chain=False, snapshot_interval=7),
        )
        save_store(store, tmp_path)
        loaded = load_store(tmp_path)
        assert loaded.options.delta_chain is False
        assert loaded.options.snapshot_interval == 7

    def test_journal_guards(self, tmp_path):
        with pytest.raises(ReproError):
            load_store(tmp_path)
        (tmp_path / JOURNAL_FILE).write_text(
            json.dumps({"format": "something-else"}) + "\n", encoding="utf-8"
        )
        with pytest.raises(ReproError):
            load_store(tmp_path)
        with pytest.raises(ReproError):
            append_revision(
                VersionedStore(paper_example_base()), tmp_path / "missing"
            )


class TestJournalSafety:
    def test_append_detects_concurrent_writer(self, tmp_path):
        first = VersionedStore(paper_example_base(), tag="initial")
        save_store(first, tmp_path)
        second = load_store(tmp_path)
        first.apply(salary_raise_program(), tag="mine")
        append_revision(first, tmp_path)
        second.apply(salary_raise_program(), tag="theirs")
        with pytest.raises(ReproError, match="concurrent"):
            append_revision(second, tmp_path)  # would fork the chain
        # the journal stayed readable and holds the first writer's chain
        assert [r.tag for r in load_store(tmp_path).revisions()] == [
            "initial", "mine",
        ]

    def test_all_digit_tags_are_rejected(self):
        store = VersionedStore(paper_example_base(), tag="initial")
        with pytest.raises(ReproError, match="all digits"):
            store.apply(salary_raise_program(), tag="2024")
        assert len(store) == 1  # nothing committed

    def test_log_level_access_skips_snapshot_parsing(self, tmp_path):
        store = VersionedStore(
            paper_example_base(), options=StoreOptions(snapshot_interval=2)
        )
        for index in range(4):
            store.apply(salary_raise_program(), tag=f"r{index}")
        save_store(store, tmp_path)
        # corrupt a non-initial snapshot: metadata reads must not touch it
        (tmp_path / "snap-000004.json").write_text("garbage", encoding="utf-8")
        loaded = load_store(tmp_path)
        assert [r.tag for r in loaded.revisions()] == [
            "initial", "r0", "r1", "r2", "r3",
        ]
        assert loaded.has_snapshot(4)
        assert set(loaded.base_at(1)) == set(store.base_at(1))  # via snap 0
        with pytest.raises(Exception):
            loaded.base_at(4)  # only now is the corrupt snapshot parsed


class TestCompaction:
    def test_compact_reduces_snapshots_and_preserves_facts(self, tmp_path):
        store = VersionedStore(
            paper_example_base(), options=StoreOptions(delta_chain=False)
        )
        program = targeted_raise_program("bob", percent=1)
        for index in range(6):
            store.apply(program, tag=f"r{index}")
        save_store(store, tmp_path)
        assert len(list(tmp_path.glob("snap-*.json"))) == 7

        compact_journal(tmp_path, snapshot_interval=4)
        compacted = load_store(tmp_path)
        assert len(list(tmp_path.glob("snap-*.json"))) == 2  # revisions 0 and 4
        assert compacted.options.delta_chain is True
        for index in range(len(store)):
            assert set(compacted.base_at(index)) == set(store.base_at(index))
        assert [r.tag for r in compacted.revisions()] == [
            r.tag for r in store.revisions()
        ]


# -- property tests ------------------------------------------------------

#: One step of a random store history: apply one of two programs, roll back
#: to a random earlier revision, or both in sequence.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("apply"), st.integers(0, 1)),
        st.tuples(st.just("rollback"), st.integers(0, 100)),
    ),
    min_size=1,
    max_size=6,
)
intervals = st.sampled_from([1, 2, 3, 100])

PROGRAMS = (
    salary_raise_program(percent=10),
    targeted_raise_program("bob", percent=3),
)


def run_history(steps_taken, interval) -> VersionedStore:
    store = VersionedStore(
        paper_example_base(),
        tag="initial",
        options=StoreOptions(snapshot_interval=interval),
    )
    for number, (kind, argument) in enumerate(steps_taken):
        if kind == "apply":
            store.apply(PROGRAMS[argument], tag=f"step{number}")
        else:
            store.rollback_to(argument % len(store), tag=f"step{number}")
    return store


@settings(max_examples=25, deadline=None)
@given(steps, intervals)
def test_journal_round_trips_any_chain(tmp_path_factory, steps_taken, interval):
    """Save→load preserves every revision's facts, tags and deltas."""
    tmp_path = tmp_path_factory.mktemp("journal")
    store = run_history(steps_taken, interval)
    save_store(store, tmp_path)
    assert_same_chain(store, load_store(tmp_path))


@settings(max_examples=25, deadline=None)
@given(steps, intervals)
def test_rollback_then_apply_chains_match_full_copy(steps_taken, interval):
    """The delta representation agrees with the full-copy escape hatch on
    arbitrary rollback-then-apply histories, at every revision."""
    delta = run_history(steps_taken, interval)
    full = run_history(steps_taken, 1)  # interval 1: snapshot everywhere
    reference = VersionedStore(
        paper_example_base(),
        tag="initial",
        options=StoreOptions(delta_chain=False),
    )
    for number, (kind, argument) in enumerate(steps_taken):
        if kind == "apply":
            reference.apply(PROGRAMS[argument], tag=f"step{number}")
        else:
            reference.rollback_to(argument % len(reference), tag=f"step{number}")
    for index in range(len(delta)):
        expected = set(reference.base_at(index))
        assert set(delta.base_at(index)) == expected
        assert set(full.base_at(index)) == expected
