"""Crash-recovery property suite.

For every injected crash point in a randomized commit history — on the
append path, the snapshot path, and all through a compaction rewrite —
reloading the journal yields exactly the acknowledged prefix:

* **no lost acknowledged commit** — every ``append_revision`` that
  returned is present after reload;
* **no resurrected garbage** — the reloaded chain is always a clean
  prefix of the submitted history (tag-for-tag, fact-for-fact); a torn,
  garbled or never-written record never surfaces as a revision.

A commit whose bytes were fully written before the crash but whose
acknowledgement never reached the caller (``crash_after``/``duplicate``)
is the classic in-doubt commit: it *may* legitimately survive — the suite
pins down that it is the only kind of unacknowledged commit that can,
and that it is byte-clean when it does.

All of it runs under all three durability modes.
"""

import random
import shutil

import pytest

from repro.lang.parser import parse_program
from repro.storage import (
    DurabilityOptions,
    StoreOptions,
    VersionedStore,
    compact_journal,
    load_store,
    save_store,
    verify_journal,
)
from repro.storage.serialize import append_revision
from repro.testing import FaultSpec, FaultyFilesystem, InjectedCrash, inject_faults
from repro.workloads import paper_example_base

MODES = ["none", "flush", "fsync"]
#: actions that must leave the journal at exactly the acknowledged prefix
LOSSY = ["crash_before", "torn", "corrupt", "enospc"]
#: actions where the commit's bytes are durable but the ack was lost
IN_DOUBT = ["crash_after", "duplicate"]

N_COMMITS = 9
SNAPSHOT_EVERY = 3  # dense, so the sweep crosses snapshot boundaries


def _program(step: int, rng: random.Random) -> str:
    who = rng.choice(["phil", "bob"])
    bump = rng.randrange(1, 9)
    return (
        f"s{step}: mod[{who}].sal -> (S, S2) <= {who}.sal -> S, S2 = S + {bump}."
    )


def _options():
    return StoreOptions(snapshot_interval=SNAPSHOT_EVERY)


def _history(seed: int) -> list[str]:
    rng = random.Random(seed)
    return [_program(step, rng) for step in range(N_COMMITS)]


def _grow(directory, programs, durability, specs):
    """Run the history against a journal until a fault kills the writer.

    Returns ``(acked, submitted)`` — the head index the caller saw
    acknowledged, and the index of the commit in flight when the crash
    hit (equal when the whole history ran clean).
    """
    store = VersionedStore(paper_example_base(), tag="initial", options=_options())
    save_store(store, directory, durability=durability)
    acked = 0
    with inject_faults(*specs):
        for step, text in enumerate(programs):
            store.apply(parse_program(text), tag=f"t{step}")
            try:
                append_revision(store, directory, durability=durability)
            except (InjectedCrash, OSError):
                return acked, store.head.index
            acked = store.head.index
    return acked, acked


def _replay(programs, upto):
    store = VersionedStore(paper_example_base(), tag="initial", options=_options())
    for step, text in enumerate(programs[:upto]):
        store.apply(parse_program(text), tag=f"t{step}")
    return store


def _assert_clean_prefix(directory, programs, acked, submitted):
    loaded = load_store(directory, repair=True)
    head = len(loaded) - 1
    # 1. nothing acknowledged was lost
    assert head >= acked, f"acknowledged revision {acked} lost (head {head})"
    # 2. nothing beyond the in-flight commit was invented
    assert head <= submitted
    # 3. what survived is the genuine history, fact-for-fact
    replay = _replay(programs, head)
    assert [r.tag for r in loaded.revisions()] == [
        r.tag for r in replay.revisions()
    ]
    for index in range(head + 1):
        assert set(loaded.base_at(index)) == set(replay.base_at(index))
    # 4. the repaired journal audits clean and accepts appends again
    assert verify_journal(directory)["ok"] is True
    loaded.apply(parse_program("z: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 1."), tag="after")
    append_revision(loaded, directory)
    assert len(load_store(directory)) == head + 2
    return head


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("action", LOSSY + IN_DOUBT)
def test_every_append_crash_point(tmp_path, mode, action):
    durability = DurabilityOptions(mode=mode)
    for at in range(N_COMMITS):
        for keep in ([0, 1, 23] if action == "torn" else [0]):
            directory = tmp_path / f"{action}-{at}-{keep}"
            programs = _history(seed=at * 31 + keep)
            spec = FaultSpec("append", action, at=at, keep_bytes=keep)
            acked, submitted = _grow(directory, programs, durability, [spec])
            assert acked == at  # the fault hit exactly the at-th append
            head = _assert_clean_prefix(directory, programs, acked, submitted)
            if action in LOSSY:
                assert head == acked
            else:
                assert head == submitted  # fully-written in-doubt commit survives


@pytest.mark.parametrize("mode", MODES)
def test_snapshot_write_crash_points(tmp_path, mode):
    # Snapshot files are written by the "write" op; killing each of them
    # (before the journal line lands) must cost at most the in-flight
    # commit, never a snapshot the durable journal references.
    durability = DurabilityOptions(mode=mode)
    for at in range(1, 4):  # snapshots during growth (at=0 is the initial save)
        for action in ["crash_before", "torn", "crash_after", "enospc"]:
            directory = tmp_path / f"snap-{action}-{at}"
            programs = _history(seed=at * 7)
            spec = FaultSpec(
                "write", action, at=at, keep_bytes=11, path_glob="snap-*.json"
            )
            acked, submitted = _grow(directory, programs, durability, [spec])
            head = _assert_clean_prefix(directory, programs, acked, submitted)
            if action != "crash_after":
                assert head == acked


@pytest.mark.parametrize("mode", MODES)
def test_every_compaction_crash_point(tmp_path, mode):
    durability = DurabilityOptions(mode=mode)
    programs = _history(seed=1234)
    pristine = tmp_path / "pristine"
    acked, _ = _grow(pristine, programs, durability, [])
    assert acked == N_COMMITS
    truth = load_store(pristine)

    # Count the I/O operations one compaction performs, then kill each.
    probe_dir = tmp_path / "probe"
    shutil.copytree(pristine, probe_dir)
    with inject_faults() as probe:
        compact_journal(probe_dir, snapshot_interval=4, durability=durability)
    operations = list(probe.ops)
    assert operations, "compaction did no I/O?"

    for at, (op, name) in enumerate(operations):
        seen_before = sum(1 for o, _ in operations[:at] if o == op)
        for action in ["crash_before", "crash_after"]:
            directory = tmp_path / f"compact-{at}-{action}"
            shutil.copytree(pristine, directory)
            spec = FaultSpec(op, action, at=seen_before)
            with inject_faults(spec) as fs:
                try:
                    compact_journal(
                        directory, snapshot_interval=4, durability=durability
                    )
                except InjectedCrash:
                    pass
            assert fs.fired, f"spec {op}@{seen_before} never fired"
            # However the compaction died, the journal still replays the
            # full acknowledged history, fact-for-fact.
            loaded = load_store(directory, repair=True)
            assert len(loaded) == len(truth)
            for index in range(len(truth)):
                assert set(loaded.base_at(index)) == set(truth.base_at(index))
            assert verify_journal(directory)["ok"] is True


def test_corrupt_mid_journal_is_reported_with_offset_and_line(tmp_path):
    programs = _history(seed=9)
    _grow(tmp_path, programs, DurabilityOptions(), [])
    journal = tmp_path / "journal.jsonl"
    lines = journal.read_text(encoding="utf-8").splitlines()
    # garble a line in the middle (not the tail: tails self-heal)
    victim = 4
    offset = sum(len(line) + 1 for line in lines[: victim - 1])
    lines[victim - 1] = "#" * len(lines[victim - 1])
    journal.write_text("\n".join(lines) + "\n", encoding="utf-8")

    from repro.storage import JournalCorruptError

    with pytest.raises(JournalCorruptError) as caught:
        load_store(tmp_path, repair=True)
    assert caught.value.line == victim
    assert caught.value.offset == offset
    assert f"line {victim}" in str(caught.value)
    assert f"byte offset {offset}" in str(caught.value)

    report = verify_journal(tmp_path)
    assert report["ok"] is False
    assert any(
        problem["line"] == victim and problem["offset"] == offset
        for problem in report["problems"]
    )


def test_bit_flip_is_caught_by_the_checksum(tmp_path):
    programs = _history(seed=5)
    _grow(tmp_path, programs, DurabilityOptions(), [])
    journal = tmp_path / "journal.jsonl"
    data = journal.read_bytes()
    # flip one digit inside a mid-journal record's salary payload: still
    # valid JSON, wrong bytes — only the CRC can catch it
    target = data.find(b'"result": 4', data.find(b'"index": 3'))
    assert target != -1
    flipped = data[: target + 11] + b"9" + data[target + 12 :]
    assert len(flipped) == len(data)
    journal.write_bytes(flipped)

    report = verify_journal(tmp_path)
    assert report["ok"] is False
    assert any("checksum mismatch" in p["error"] for p in report["problems"])

    from repro.storage import JournalCorruptError

    with pytest.raises(JournalCorruptError, match="checksum mismatch"):
        load_store(tmp_path)


def test_journals_without_checksums_still_load(tmp_path):
    # Journals written before the CRC field existed must stay readable.
    import json

    programs = _history(seed=3)
    _grow(tmp_path, programs, DurabilityOptions(), [])
    journal = tmp_path / "journal.jsonl"
    lines = journal.read_text(encoding="utf-8").splitlines()
    stripped = [lines[0]]
    for line in lines[1:]:
        record = json.loads(line)
        record.pop("crc", None)
        stripped.append(json.dumps(record, sort_keys=True))
    journal.write_text("\n".join(stripped) + "\n", encoding="utf-8")

    loaded = load_store(tmp_path)
    assert len(loaded) == N_COMMITS + 1
    report = verify_journal(tmp_path)
    assert report["ok"] is True
    assert report["unchecksummed"] == N_COMMITS + 1
    assert report["checksummed"] == 0


def test_faultless_probe_filesystem_reports_operations(tmp_path):
    # The enumeration above trusts FaultyFilesystem's op log; pin its shape.
    store = VersionedStore(paper_example_base(), tag="initial", options=_options())
    with inject_faults() as fs:
        save_store(store, tmp_path)
    ops = [op for op, _ in fs.ops]
    assert "write" in ops and "replace" in ops


class TestVerifyReport:
    def test_missing_snapshot_is_flagged(self, tmp_path):
        programs = _history(seed=2)
        _grow(tmp_path, programs, DurabilityOptions(), [])
        victim = next(tmp_path.glob("snap-0000*.json"))
        victim.unlink()
        report = verify_journal(tmp_path)
        assert report["ok"] is False
        assert victim.name in report["missing_snapshots"]

    def test_clean_journal_reports_counts(self, tmp_path):
        programs = _history(seed=2)
        _grow(tmp_path, programs, DurabilityOptions(), [])
        report = verify_journal(tmp_path)
        assert report["ok"] is True
        assert report["revisions"] == N_COMMITS + 1
        assert report["checksummed"] == N_COMMITS + 1
        assert report["snapshots"] == len(list(tmp_path.glob("snap-*.json")))
        assert report["problems"] == []
