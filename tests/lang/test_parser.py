"""Parser tests: grammar coverage and error reporting."""

import pytest

from repro import parse_body, parse_object_base, parse_program, parse_rule, parse_term
from repro.core.atoms import BuiltinAtom, UpdateAtom, VersionAtom
from repro.core.exprs import BinOp
from repro.core.facts import Fact
from repro.core.terms import Oid, UpdateKind, Var, VersionId, VersionVar, wrap
from repro.lang.errors import ParseError

O = Oid
INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


class TestTerms:
    def test_case_convention(self):
        assert parse_term("phil") == O("phil")
        assert parse_term("E") == Var("E")
        assert parse_term("_tmp") == Var("_tmp")

    def test_numbers(self):
        assert parse_term("42") == O(42)
        assert parse_term("4.5") == O(4.5)
        assert parse_term("-3") == O(-3)

    def test_quoted(self):
        assert parse_term("'Phil Smith'") == O("Phil Smith")

    def test_version_terms(self):
        assert parse_term("mod(henry)") == wrap(MOD, O("henry"))
        assert parse_term("ins(del(mod(E)))") == wrap(
            INS, wrap(DEL, wrap(MOD, Var("E")))
        )

    def test_version_var(self):
        assert parse_term("?W") == VersionVar("W")
        assert parse_term("mod(?W)") == wrap(MOD, VersionVar("W"))

    def test_kind_names_usable_as_oids(self):
        # 'ins' not followed by '(' is an ordinary identifier
        assert parse_term("ins") == O("ins")

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_term("phil extra")


class TestRules:
    def test_salary_rule_shape(self):
        rule = parse_rule(
            "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, "
            "S2 = S * 1.1."
        )
        assert rule.name == "raise"
        head = rule.head
        assert head.kind is MOD
        assert head.result == Var("S") and head.result2 == Var("S2")
        assert len(rule.body) == 3
        assert isinstance(rule.body[2].atom, BuiltinAtom)

    def test_unlabelled_rule(self):
        rule = parse_rule("ins[o].m -> 1.")
        assert rule.name == ""
        assert rule.is_fact

    def test_path_shorthand_expands(self):
        rule = parse_rule(
            "r: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE."
        )
        methods = [lit.atom.method for lit in rule.body]
        assert methods == ["isa", "boss", "sal"]
        hosts = {lit.atom.host for lit in rule.body}
        assert hosts == {wrap(MOD, Var("E"))}

    def test_delete_all_head(self):
        rule = parse_rule("r: del[mod(E)].* <= mod(E).m -> V.")
        assert rule.head.delete_all

    def test_delete_all_in_body_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("r: ins[X].t -> 1 <= del[X].*.")

    def test_delete_all_only_for_del(self):
        with pytest.raises(ParseError):
            parse_rule("r: ins[X].* <= X.m -> 1.")

    def test_update_terms_in_body(self):
        rule = parse_rule(
            "rule4: ins[mod(E)].isa -> hpe <= mod(E).sal -> S, "
            "not del[mod(E)].isa -> empl."
        )
        negated = rule.body[1]
        assert not negated.positive
        assert isinstance(negated.atom, UpdateAtom)
        assert negated.atom.kind is DEL

    def test_negation_spellings(self):
        for spelling in ("not E.pos -> mgr", "~E.pos -> mgr"):
            rule = parse_rule(f"r: ins[E].t -> 1 <= E.isa -> empl, {spelling}.")
            assert not rule.body[1].positive

    def test_negated_path_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("r: ins[E].t -> 1 <= not E.a -> 1 / b -> 2.")

    def test_conjunction_spellings(self):
        for sep in (",", "^"):
            rule = parse_rule(f"r: ins[E].t -> 1 <= E.a -> 1 {sep} E.b -> 2.")
            assert len(rule.body) == 2

    def test_method_arguments(self):
        rule = parse_rule("r: ins[G].dist@A,B -> D <= G.edge@A,B -> D.")
        assert rule.head.args == (Var("A"), Var("B"))
        assert rule.body[0].atom.args == (Var("A"), Var("B"))

    def test_le_spelling_hint(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rule("r: ins[E].t -> 1 <= E.sal -> S, S <= 10.")
        assert "=<" in str(excinfo.value)

    def test_le_comparison(self):
        rule = parse_rule("r: ins[E].t -> 1 <= E.sal -> S, S =< 10.")
        assert rule.body[1].atom.op == "<="

    def test_exists_head_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("r: ins[E].exists -> E <= E.m -> 1.")

    def test_arithmetic_precedence(self):
        rule = parse_rule("r: ins[E].t -> V <= E.m -> S, V = S + 2 * 3.")
        expr = rule.body[1].atom.right
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_parenthesised_expression(self):
        rule = parse_rule("r: ins[E].t -> V <= E.m -> S, V = (S + 2) * 3.")
        expr = rule.body[1].atom.right
        assert expr.op == "*" and expr.left.op == "+"


class TestPrograms:
    def test_multi_rule_program(self, paper_program):
        assert [rule.name for rule in paper_program] == [
            "rule1", "rule2", "rule3", "rule4",
        ]

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_comments_between_rules(self):
        program = parse_program(
            """
            % first
            a: ins[o].m -> 1.
            # second
            b: ins[o].n -> 2.
            """
        )
        assert len(program) == 2


class TestBodiesAndBases:
    def test_parse_body(self):
        literals = parse_body("E.isa -> empl, E.sal -> S, S > 100")
        assert len(literals) == 3

    def test_object_base_with_paths(self):
        base = parse_object_base("bob.isa -> empl / sal -> 4200 / boss -> phil.")
        assert Fact(O("bob"), "sal", (), O(4200)) in base
        assert Fact(O("bob"), "boss", (), O("phil")) in base

    def test_object_base_exists_generated(self):
        base = parse_object_base("a.m -> 1.")
        assert base.version_exists(O("a"))

    def test_object_base_version_hosts(self):
        base = parse_object_base("mod(a).m -> 2.", ensure_exists=False)
        assert Fact(wrap(MOD, O("a")), "m", (), O(2)) in base

    def test_non_ground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_object_base("X.m -> 1.")

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("r: ins[E].t -> 1 <= E.isa ->.")
        assert excinfo.value.line == 1
        assert excinfo.value.column > 20
