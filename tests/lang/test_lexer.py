"""Tokenizer tests, especially the '.' / number / arrow ambiguities."""

import pytest

from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize


def types(text: str) -> list[str]:
    return [token.type for token in tokenize(text)][:-1]  # drop EOF


def values(text: str) -> list[str]:
    return [token.value for token in tokenize(text)][:-1]


class TestBasics:
    def test_identifiers_and_numbers(self):
        assert types("phil E 42 4.5") == ["IDENT", "IDENT", "NUMBER", "NUMBER"]

    def test_arrow_beats_minus(self):
        assert types("a -> b - c") == ["IDENT", "ARROW", "IDENT", "MINUS", "IDENT"]

    def test_implication_spellings(self):
        assert types("<= :-") == ["IMPLIES", "IMPLIES"]

    def test_prolog_style_le(self):
        # '=<' is less-or-equal; '<=' is the implication arrow
        assert types("=<") == ["LE"]
        assert types("<=") == ["IMPLIES"]

    def test_comparison_tokens(self):
        assert types("= != < > >=") == ["EQ", "NE", "LT", "GT", "GE"]

    def test_version_var_marker(self):
        assert types("?W") == ["QMARK", "IDENT"]


class TestDotDisambiguation:
    def test_method_selector(self):
        assert types("E.sal") == ["IDENT", "DOT", "IDENT"]

    def test_float_keeps_dot(self):
        assert values("1.5") == ["1.5"]

    def test_trailing_dot_after_integer_is_terminator(self):
        # "4500." is the number 4500 followed by the rule terminator
        assert types("4500.") == ["NUMBER", "DOT"]
        assert values("4500.") == ["4500", "."]

    def test_float_then_terminator(self):
        assert types("1.1.") == ["NUMBER", "DOT"]
        assert values("1.1.") == ["1.1", "."]


class TestStringsAndComments:
    def test_quoted_oids(self):
        tokens = tokenize("'Phil Smith' \"double\"")
        assert tokens[0] == Token("STRING", "Phil Smith", 1, 1)
        assert tokens[1].value == "double"

    def test_comments_stripped(self):
        assert types("a % comment\nb # another\nc") == ["IDENT", "IDENT", "IDENT"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_newline_inside_string(self):
        with pytest.raises(ParseError):
            tokenize("'line\nbreak'")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("abc\n  ;")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3

    def test_eof_token(self):
        assert tokenize("")[-1].type == "EOF"
