"""Tests for lang."""
