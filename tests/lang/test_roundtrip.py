"""Pretty-printer tests and parse/format round-trip properties."""

from hypothesis import given, strategies as st

from repro import (
    format_object_base,
    format_program,
    format_rule,
    format_term,
    parse_object_base,
    parse_program,
    parse_rule,
    parse_term,
)
from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import Oid, UpdateKind, Var, VersionId, VersionVar, wrap
from repro.lang.pretty import format_atom, format_literal
from repro.workloads import paper_example_program

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

oid_names = st.sampled_from(["phil", "bob", "empl", "x1", "aB_c"])
quoted_names = st.sampled_from(["Phil Smith", "UPPER", "with-dash", "0starts"])
numbers = st.one_of(st.integers(-999, 999), st.sampled_from([1.5, 4.25, -0.5]))
oids = st.one_of(oid_names.map(Oid), quoted_names.map(Oid), numbers.map(Oid))
variables = st.sampled_from(["E", "S", "S2", "B", "X"]).map(Var)
kinds = st.sampled_from(list(UpdateKind))


def _wrapped(kinds_list, inner):
    term = inner
    for kind in kinds_list:
        term = wrap(kind, term)
    return term


hosts = st.builds(_wrapped, st.lists(kinds, max_size=2), st.one_of(oids, variables))
methods = st.sampled_from(["sal", "isa", "anc", "m"])
results = st.one_of(oids, variables)
arg_tuples = st.lists(results, max_size=2).map(tuple)

version_atoms = st.builds(VersionAtom, hosts, methods, arg_tuples, results)
ins_atoms = st.builds(
    lambda t, m, a, r: UpdateAtom(UpdateKind.INSERT, t, m, a, r),
    hosts, methods, arg_tuples, results,
)
mod_atoms = st.builds(
    lambda t, m, a, r, r2: UpdateAtom(UpdateKind.MODIFY, t, m, a, r, r2),
    hosts, methods, arg_tuples, results, results,
)
del_all_atoms = st.builds(
    lambda t: UpdateAtom(UpdateKind.DELETE, t, None, (), None, None, delete_all=True),
    hosts,
)
update_atoms = st.one_of(ins_atoms, mod_atoms, del_all_atoms)


# ----------------------------------------------------------------------
# round-trip properties
# ----------------------------------------------------------------------


@given(hosts)
def test_term_roundtrip(term):
    assert parse_term(format_term(term)) == term


def test_version_var_roundtrip():
    term = wrap(UpdateKind.MODIFY, VersionVar("W"))
    assert parse_term(format_term(term)) == term


@given(version_atoms)
def test_version_atom_roundtrip(atom):
    rule = UpdateRule(
        UpdateAtom(UpdateKind.INSERT, Oid("sink"), "t", (), Oid(1)),
        (Literal(atom),),
        "r",
    )
    parsed = parse_rule(format_rule(rule))
    assert parsed.body[0].atom == atom


@given(update_atoms)
def test_update_atom_roundtrip_in_head(atom):
    rule = UpdateRule(atom, (), "r")
    parsed = parse_rule(format_rule(rule))
    assert parsed.head == atom


@given(st.lists(st.one_of(version_atoms, ins_atoms), min_size=1, max_size=3),
       st.lists(st.booleans(), min_size=3, max_size=3))
def test_rule_roundtrip(atoms, polarity):
    body = tuple(
        Literal(atom, positive)
        for atom, positive in zip(atoms, polarity)
    )
    rule = UpdateRule(UpdateAtom(UpdateKind.INSERT, Oid("o"), "t", (), Oid(1)), body, "r")
    assert parse_rule(format_rule(rule)) == rule


def test_program_roundtrip_paper():
    program = paper_example_program()
    reparsed = parse_program(format_program(program))
    assert tuple(reparsed) == tuple(program)


def test_object_base_roundtrip(paper_base):
    text = format_object_base(paper_base)
    assert parse_object_base(text) == paper_base


# ----------------------------------------------------------------------
# formatting specifics
# ----------------------------------------------------------------------


def test_quoting():
    assert format_term(Oid("phil")) == "phil"
    assert format_term(Oid("Phil Smith")) == "'Phil Smith'"
    assert format_term(Oid("UPPER")) == "'UPPER'"  # would parse as a variable
    assert format_term(Oid("it's")) == '"it\'s"'


def test_le_printed_prolog_style():
    atom = BuiltinAtom("<=", Var("S"), Oid(10))
    assert format_atom(atom) == "S =< 10"
    rule = parse_rule(f"r: ins[o].m -> 1 <= o.s -> S, {format_atom(atom)}.")
    assert rule.body[1].atom.op == "<="


def test_negated_literal():
    literal = Literal(VersionAtom(Var("E"), "pos", (), Oid("mgr")), positive=False)
    assert format_literal(literal) == "not E.pos -> mgr"


def test_format_rule_without_label():
    rule = UpdateRule(UpdateAtom(UpdateKind.INSERT, Oid("o"), "m", (), Oid(1)), (), "x")
    assert format_rule(rule, label=False) == "ins[o].m -> 1."


def test_exists_omitted_by_default(paper_base):
    assert "exists" not in format_object_base(paper_base)
    assert "exists" in format_object_base(paper_base, include_exists=True)
