"""API-snapshot test: the public surface is exactly the documented names.

``repro.__all__`` and ``repro.api.__all__`` must match these lists — name
for name — and every name must import and be usable.  Accidental export
churn (a renamed function, a dropped re-export, a new symbol that skipped
the docs) fails here before it reaches a release.
"""

import repro
import repro.api

#: The documented root surface (README "Public API" + the module docstring).
ROOT_SURFACE = [
    "__version__",
    # the unified connection API
    "connect", "Connection", "RetryPolicy", "DurabilityOptions",
    # core types
    "Oid", "Var", "VersionVar", "VersionId", "Term", "UpdateKind", "Fact",
    "ObjectBase", "UpdateRule", "UpdateProgram",
    "UpdateEngine", "UpdateResult", "EvaluationOptions",
    "Stratification", "stratify", "evaluate", "build_new_base",
    # queries
    "query", "query_literals", "method_results", "result_value",
    "PreparedQuery", "prepare_query",
    # language
    "parse_program", "parse_rule", "parse_body", "parse_object_base",
    "parse_term", "format_program", "format_rule", "format_term",
    "format_object_base",
    # errors
    "ReproError", "TermError", "ProgramError", "SafetyError",
    "StratificationError", "EvaluationError", "EvaluationLimitError",
    "VersionDepthError", "VersionLinearityError", "BuiltinError",
    "ParseError",
]

#: The documented facade surface.
API_SURFACE = [
    "connect",
    "parse_target",
    "ParsedTarget",
    "Connection",
    "Transaction",
    "SubscriptionStream",
    "Revision",
    "CommitResult",
    "AnswerDelta",
    "Diff",
    "RetryPolicy",
    "DurabilityOptions",
    "ServiceConnection",
    "WireConnection",
    "BackgroundServer",
    "ConflictError",
    "ServerError",
    "SessionError",
    "ConnectionClosed",
    "ServerBusyError",
    "StaleEpochError",
    "NotPrimaryError",
]


def test_root_all_matches_documented_surface():
    assert list(repro.__all__) == ROOT_SURFACE


def test_api_all_matches_documented_surface():
    assert list(repro.api.__all__) == API_SURFACE


def test_every_root_name_imports_and_is_usable():
    for name in repro.__all__:
        attribute = getattr(repro, name)  # AttributeError = broken export
        if name == "__version__":
            assert isinstance(attribute, str)
        else:
            assert callable(attribute), f"repro.{name} is not callable"


def test_every_api_name_imports_and_is_usable():
    for name in repro.api.__all__:
        attribute = getattr(repro.api, name)
        assert callable(attribute), f"repro.api.{name} is not callable"


def test_facade_names_resolve_to_the_same_objects():
    # The root re-exports are the facade's objects, not copies.
    assert repro.connect is repro.api.connect
    assert repro.Connection is repro.api.Connection
