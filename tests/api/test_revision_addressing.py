"""Satellite: one revision-addressing scheme, one set of error messages.

Tags and indexes (including the digit-string index form CLIs and wire
payloads produce) resolve identically on the store itself, the in-process
clients, and the wire — and a bad reference fails with the *same message*
everywhere.
"""

import pytest

import repro
from repro.api import BackgroundServer
from repro.core.errors import ReproError
from repro.lang.pretty import format_object_base
from repro.server import connect_local
from repro.server.errors import ServerError
from repro.server.service import StoreService
from repro.storage import VersionedStore, resolve_revision_ref

BASE = "phil.isa -> empl. phil.sal -> 4000."
RAISE = "raise: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100."


class TestResolveRevisionRef:
    @pytest.mark.parametrize(
        ("reference", "resolved"),
        [
            (0, 0), (7, 7), (-1, -1),
            ("0", 0), ("42", 42), ("-3", -3),
            ("initial", "initial"), ("raise-q1", "raise-q1"),
            ("r2", "r2"),  # digits inside a tag stay a tag
            ("--2", "--2"),  # one sign at most: not an index, fails as a tag
            ("-", "-"),
        ],
    )
    def test_forms(self, reference, resolved):
        assert resolve_revision_ref(reference) == resolved

    def test_booleans_are_not_indexes(self):
        with pytest.raises(ReproError):
            resolve_revision_ref(True)


class TestStoreAddressing:
    @pytest.fixture()
    def store(self):
        store = VersionedStore(repro.parse_object_base(BASE), tag="day0")
        store.apply(repro.parse_program(RAISE), tag="raised")
        return store

    def test_digit_strings_address_by_index(self, store):
        assert frozenset(store.as_of("1")) == frozenset(store.as_of(1))
        assert frozenset(store.as_of("0")) == frozenset(store.as_of("day0"))

    def test_diff_accepts_every_form(self, store):
        assert store.diff("0", "1") == store.diff("day0", "raised")


class TestUniformErrorMessages:
    """The same bad reference produces the same message on every surface."""

    PROBES = {
        "nope": "no revision tagged 'nope'",
        "99": "no revision 99",
        "-1": "no revision -1",
    }

    @pytest.fixture()
    def service(self):
        return StoreService(VersionedStore(repro.parse_object_base(BASE)))

    def _message_from_store(self, service, reference):
        with pytest.raises(ReproError) as info:
            service.store.as_of(resolve_revision_ref(reference))
        return str(info.value)

    def _message_from_local_client(self, service, reference):
        with connect_local(service) as client:
            with pytest.raises(ServerError) as info:
                client.as_of(reference)
        return str(info.value)

    def test_store_and_local_client_agree(self, service):
        for reference, expected in self.PROBES.items():
            assert self._message_from_store(service, reference) == expected
            assert self._message_from_local_client(service, reference) == expected

    def test_wire_agrees(self, service, tmp_path):
        socket_path = str(tmp_path / "refs.sock")
        with BackgroundServer(service, path=socket_path):
            with repro.connect(f"serve:{socket_path}") as conn:
                for reference, expected in self.PROBES.items():
                    with pytest.raises(ReproError) as info:
                        conn.as_of(reference)
                    assert str(info.value) == expected
                with pytest.raises(ReproError, match="no revision 99"):
                    conn.diff(0, 99)


class TestFacadeAddressing:
    def test_every_form_reaches_the_same_base(self, tmp_path):
        directory = tmp_path / "store"
        with repro.connect(directory, base=BASE, tag="day0") as conn:
            conn.apply(RAISE, tag="raised")
            texts = {
                format_object_base(conn.as_of(reference))
                for reference in (1, "1", "raised")
            }
            assert len(texts) == 1
