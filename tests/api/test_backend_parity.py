"""Differential backend parity: one workload, three backends, one result.

The same scripted workload — subscribe, autocommit apply, query, an
optimistic transaction with an *induced conflict* (retried automatically),
a conflict that is not retried, ``as_of`` in every addressing form,
``diff``, ``log``, and error probes — runs through

* ``repro.connect("memory:")``            (ephemeral in-process store),
* ``repro.connect(<journal directory>)``  (durable journaled store), and
* ``repro.connect("serve:<unix socket>")``(the asyncio wire server),

and every decoded answer, revision record, answer delta and error message
must be **identical**.  For the two durable backends the journals on disk
must be **byte-identical**.  This is the contract that lets every future
backend (sharding, replication) land behind ``repro.connect``.
"""

from __future__ import annotations

import pytest

import repro
from repro.api import BackgroundServer, ConflictError
from repro.core.errors import ReproError
from repro.lang.pretty import format_object_base

BASE = """
    phil.isa -> empl.   phil.sal -> 4000.
    bob.isa -> empl.    bob.sal -> 4200.   bob.boss -> phil.
    mary.isa -> empl.   mary.sal -> 3900.  mary.boss -> phil.
"""

RAISE = """
    raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 25.
"""

BUMP = """
    bump: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 1.
"""

HIRE = """
    hire_isa: ins[dee].isa -> empl <= phil.isa -> empl.
    hire_sal: ins[dee].sal -> 3000 <= phil.isa -> empl.
"""

SALARY_QUERY = "E.isa -> empl, E.sal -> S"


def run_workload(conn) -> dict:
    """The scripted workload; returns every observable as plain data."""
    trace: dict = {}

    stream = conn.subscribe(SALARY_QUERY, name="salaries")
    trace["initial_answers"] = list(stream.answers)
    trace["initial_revision"] = stream.revision

    # autocommit
    trace["apply"] = conn.apply(RAISE, tag="raise-q1")
    trace["query_after_raise"] = conn.query("E.sal -> S")

    # optimistic transaction with an induced conflict, retried by replay
    transaction = conn.transaction(tag="tx-hire", attempts=3)
    with transaction:
        trace["tx_read"] = transaction.query(SALARY_QUERY)
        # an interim commit lands inside the transaction's footprint, so
        # the first commit attempt must conflict and be replayed
        conn.apply(BUMP, tag="interloper")
        transaction.stage(HIRE)
    trace["tx_attempts"] = transaction.attempts_used
    trace["tx_result"] = transaction.result

    # the same race without retry raises the retryable ConflictError
    doomed = conn.transaction(tag="doomed")
    doomed.query(SALARY_QUERY)
    conn.apply(BUMP, tag="bump-2")
    doomed.stage(RAISE)
    with pytest.raises(ConflictError) as conflict_info:
        doomed.commit()
    conflict = conflict_info.value
    trace["conflict"] = (
        type(conflict).__name__,
        conflict.retryable,
        conflict.conflicting_tag,
        str(conflict),
    )

    # four commits touched the subscription; collect their answer deltas
    deltas = []
    for _ in range(4):
        delta = stream.next(timeout=10.0)
        assert delta is not None, "expected an answer delta"
        deltas.append(
            (delta.query, delta.revision, delta.tag, delta.added, delta.removed)
        )
    trace["deltas"] = deltas
    trace["extra_delta"] = stream.next(timeout=0.25)

    # history: log records, as-of in every addressing form, diffs
    trace["log"] = conn.log()
    trace["head"] = conn.head
    trace["as_of"] = {
        ref: format_object_base(conn.as_of(ref))
        for ref in (0, "0", "initial", 1, "raise-q1", "tx-hire", "bump-2")
    }
    trace["diff"] = conn.diff("initial", "bump-2")
    trace["diff_reverse"] = conn.diff(len(trace["log"]) - 1, 0)

    # unified failure surface: same messages for bad references everywhere
    errors = {}
    for ref in ("nope", 99, -1, "-1", "99", "--2"):
        with pytest.raises(ReproError) as error_info:
            conn.as_of(ref)
        errors[str(ref)] = str(error_info.value)
    trace["errors"] = errors

    stream.close()
    return trace


def normalize(trace: dict) -> dict:
    """Everything in a trace is already backend-independent data."""
    return trace


@pytest.fixture()
def journal_dirs(tmp_path):
    first = tmp_path / "journaled"
    second = tmp_path / "served"
    repro.connect(first, base=BASE, tag="initial").close()
    repro.connect(second, base=BASE, tag="initial").close()
    return first, second


def test_three_backends_produce_identical_traces(journal_dirs, tmp_path):
    journal_dir, served_dir = journal_dirs

    with repro.connect("memory:", base=BASE, tag="initial") as conn:
        memory_trace = run_workload(conn)

    with repro.connect(journal_dir) as conn:
        journal_trace = run_workload(conn)

    socket_path = str(tmp_path / "parity.sock")
    with BackgroundServer(served_dir, path=socket_path):
        with repro.connect(f"serve:{socket_path}") as conn:
            served_trace = run_workload(conn)

    assert normalize(memory_trace) == normalize(journal_trace)
    assert normalize(memory_trace) == normalize(served_trace)

    # sanity on the shared trace, so the parity is of a *real* run
    trace = memory_trace
    assert trace["tx_attempts"] == 2  # the induced conflict forced a replay
    assert trace["apply"].tag == "raise-q1"
    assert [r.tag for r in trace["log"]] == [
        "initial", "raise-q1", "interloper", "tx-hire", "bump-2",
    ]
    assert trace["extra_delta"] is None
    assert any(row["E"] == "dee" for row in trace["deltas"][2][3])
    assert trace["errors"]["nope"] == "no revision tagged 'nope'"
    assert trace["errors"]["99"] == "no revision 99"
    assert trace["errors"]["-1"] == "no revision -1"
    assert trace["errors"]["--2"] == "no revision tagged '--2'"


def test_durable_backends_write_byte_identical_journals(journal_dirs, tmp_path):
    journal_dir, served_dir = journal_dirs

    with repro.connect(journal_dir) as conn:
        run_workload(conn)

    socket_path = str(tmp_path / "parity2.sock")
    with BackgroundServer(served_dir, path=socket_path):
        with repro.connect(f"serve:{socket_path}") as conn:
            run_workload(conn)

    journal_files = sorted(p.name for p in journal_dir.iterdir())
    served_files = sorted(p.name for p in served_dir.iterdir())
    assert journal_files == served_files
    for name in journal_files:
        assert (journal_dir / name).read_bytes() == (
            served_dir / name
        ).read_bytes(), f"{name} diverged between journaled and served runs"


def test_stats_shape_is_uniform_across_backends(journal_dirs, tmp_path):
    """Every backend's ``stats()`` exposes the same top-level sections —
    including the ``replication`` section, which reports ``role:
    "primary"`` (epoch 0, no followers) even where replication is not in
    play.  Monitoring written against one backend reads them all."""
    journal_dir, served_dir = journal_dirs

    with repro.connect("memory:", base=BASE, tag="initial") as conn:
        memory_stats = conn.stats()
    with repro.connect(journal_dir) as conn:
        journal_stats = conn.stats()
    socket_path = str(tmp_path / "parity4.sock")
    with BackgroundServer(served_dir, path=socket_path):
        with repro.connect(f"serve:{socket_path}") as conn:
            served_stats = conn.stats()

    assert (
        set(memory_stats) == set(journal_stats) == set(served_stats)
    ), "stats() sections diverge between backends"
    replication_keys = {
        "role", "epoch", "fenced_epoch", "last_index", "followers",
        "streamed_lines", "primary", "lag", "primary_alive",
    }
    for stats in (memory_stats, journal_stats, served_stats):
        assert set(stats["replication"]) == replication_keys
        assert stats["replication"]["role"] == "primary"
        assert stats["replication"]["epoch"] == 0
        assert stats["replication"]["lag"] == 0
        # the observability sections are part of the uniform surface:
        # same pinned sub-shape everywhere, enabled or not
        assert set(stats["metrics"]) == {"enabled", "registry"}
        assert isinstance(stats["metrics"]["enabled"], bool)
        assert isinstance(stats["metrics"]["registry"], dict)
        assert set(stats["slowlog"]) == {
            "entries", "dropped", "capacity", "thresholds_ms",
        }


def test_replay_equivalence_after_restart(journal_dirs, tmp_path):
    """The served journal replays into exactly the state the live
    connections observed (restart recovery through the facade)."""
    journal_dir, served_dir = journal_dirs
    socket_path = str(tmp_path / "parity3.sock")
    with BackgroundServer(served_dir, path=socket_path):
        with repro.connect(f"serve:{socket_path}") as conn:
            live_trace = run_workload(conn)

    with repro.connect(served_dir) as reopened:
        assert reopened.log() == live_trace["log"]
        head = live_trace["head"]
        assert format_object_base(reopened.as_of(head.index)) == (
            live_trace["as_of"]["bump-2"]
        )
