"""Target resolution: every ``repro.connect`` form opens the right backend
with the same surface, and bad targets fail with clean library errors."""

import pytest

import repro
from repro.api import (
    BackgroundServer,
    ServiceConnection,
    WireConnection,
)
from repro.core.errors import ReproError
from repro.server.service import StoreService
from repro.storage import StoreOptions, VersionedStore

BASE = "phil.isa -> empl. phil.sal -> 4000."
RAISE = "raise: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100."


class TestMemoryTargets:
    def test_empty_memory_store(self):
        with repro.connect("memory:") as conn:
            assert conn.query("X.isa -> Y") == []
            assert [r.tag for r in conn.log()] == ["initial"]

    def test_seeded_with_text(self):
        with repro.connect("memory:", base=BASE) as conn:
            assert conn.query("phil.sal -> S") == [{"S": 4000}]

    def test_seeded_with_object_base(self):
        base = repro.parse_object_base(BASE)
        with repro.connect("memory:", base=base, tag="seeded") as conn:
            assert conn.head.tag == "seeded"

    def test_store_options_apply(self):
        options = StoreOptions(snapshot_interval=2)
        with repro.connect("memory:", base=BASE, options=options) as conn:
            for round_number in range(3):
                conn.apply(RAISE, tag=f"r{round_number}a")
            assert [r.snapshot for r in conn.log()] == [True, False, True, False]

    def test_bad_base_type(self):
        with pytest.raises(ReproError, match="base="):
            repro.connect("memory:", base=42)

    def test_readonly_memory_rejects_writes(self):
        with repro.connect("memory:", base=BASE, readonly=True) as conn:
            assert conn.query("phil.sal -> S") == [{"S": 4000}]
            with pytest.raises(ReproError, match="read-only"):
                conn.apply(RAISE)


class TestEmbeddedObjects:
    def test_versioned_store(self):
        store = VersionedStore(repro.parse_object_base(BASE))
        with repro.connect(store) as conn:
            assert isinstance(conn, ServiceConnection)
            conn.apply(RAISE, tag="raised")
        assert store.head.tag == "raised"  # same store, not a copy

    def test_store_service(self):
        service = StoreService(VersionedStore(repro.parse_object_base(BASE)))
        with repro.connect(service) as conn:
            assert conn.service is service

    def test_seed_kwargs_rejected_on_existing_objects(self):
        store = VersionedStore(repro.parse_object_base(BASE))
        with pytest.raises(ReproError, match="base="):
            repro.connect(store, base=BASE)
        with pytest.raises(ReproError, match="options="):
            repro.connect(store, options=StoreOptions())

    def test_unknown_target_type(self):
        with pytest.raises(ReproError, match="connect\\(\\) needs"):
            repro.connect(42)


class TestJournalTargets:
    def test_create_then_reopen(self, tmp_path):
        directory = tmp_path / "store"
        with repro.connect(directory, base=BASE, tag="day0") as conn:
            conn.apply(RAISE, tag="raised")
        with repro.connect(directory) as conn:
            assert [r.tag for r in conn.log()] == ["day0", "raised"]
            assert conn.query("phil.sal -> S") == [{"S": 4100}]

    def test_missing_journal_without_base(self, tmp_path):
        with pytest.raises(ReproError, match="no journal"):
            repro.connect(tmp_path / "nope")

    def test_refuses_to_overwrite_existing_journal(self, tmp_path):
        directory = tmp_path / "store"
        repro.connect(directory, base=BASE).close()
        with pytest.raises(ReproError, match="already exists"):
            repro.connect(directory, base=BASE)

    def test_readonly_never_creates_a_journal(self, tmp_path):
        directory = tmp_path / "fresh"
        with pytest.raises(ReproError, match="read-only"):
            repro.connect(directory, base=BASE, readonly=True)
        assert not directory.exists()  # nothing written to disk

    def test_readonly_rejects_writes(self, tmp_path):
        directory = tmp_path / "store"
        repro.connect(directory, base=BASE).close()
        with repro.connect(directory, readonly=True) as conn:
            assert conn.query("phil.sal -> S") == [{"S": 4000}]
            with pytest.raises(ReproError, match="read-only"):
                conn.apply(RAISE)
            with pytest.raises(ReproError, match="read-only"):
                conn.transaction()


class TestServedTargets:
    @pytest.fixture()
    def served(self, tmp_path):
        directory = tmp_path / "store"
        repro.connect(directory, base=BASE).close()
        socket_path = str(tmp_path / "x.sock")
        with BackgroundServer(directory, path=socket_path) as server:
            yield server, socket_path

    def test_serve_prefix(self, served):
        server, socket_path = served
        with repro.connect(f"serve:{socket_path}") as conn:
            assert isinstance(conn, WireConnection)
            assert conn.ping()["pong"] is True

    def test_server_target_property(self, served):
        server, _ = served
        with repro.connect(server.target) as conn:
            assert conn.query("phil.sal -> S") == [{"S": 4000}]

    def test_bare_socket_path(self, served):
        _, socket_path = served
        with repro.connect(socket_path) as conn:
            assert isinstance(conn, WireConnection)

    def test_tcp_target(self, tmp_path):
        directory = tmp_path / "store"
        repro.connect(directory, base=BASE).close()
        with BackgroundServer(directory, port=0) as server:
            with repro.connect(f"serve:{server.address[len('tcp:'):]}") as conn:
                assert conn.ping()["pong"] is True
            with repro.connect(server.address) as conn:  # tcp:host:port
                assert conn.ping()["pong"] is True

    def test_base_makes_no_sense_on_served_targets(self, served):
        _, socket_path = served
        with pytest.raises(ReproError, match="base="):
            repro.connect(f"serve:{socket_path}", base=BASE)

    def test_readonly_is_rejected_not_ignored(self, served):
        # a client cannot make the server read-only; silently handing back
        # a writable connection would defeat the caller's write guard
        _, socket_path = served
        with pytest.raises(ReproError, match="readonly"):
            repro.connect(f"serve:{socket_path}", readonly=True)

    def test_connect_failure_is_a_library_error(self, tmp_path):
        with pytest.raises(ReproError, match="cannot connect"):
            repro.connect(f"serve:{tmp_path / 'nothing.sock'}")

    def test_malformed_endpoints(self):
        with pytest.raises(ReproError, match="endpoint"):
            repro.connect("serve:")
        with pytest.raises(ReproError, match="host:port"):
            repro.connect("tcp:nowhere")
        with pytest.raises(ReproError, match="socket path"):
            repro.connect("unix:")


class TestParseTarget:
    """The unified grammar: every scheme classifies into a typed
    :class:`ParsedTarget`, every malformed form raises a clean
    :class:`ReproError` that names the offending piece."""

    def test_every_scheme_classifies(self, tmp_path):
        from pathlib import Path

        from repro.api import parse_target

        assert parse_target("memory:").scheme == "memory"
        assert parse_target("unix:/tmp/a.sock").endpoint == {"path": "/tmp/a.sock"}
        assert parse_target("serve:/tmp/a.sock").scheme == "wire"
        assert parse_target("tcp:db:7001").endpoint == {"host": "db", "port": 7001}
        assert parse_target("serve:db:7001").endpoint == {"host": "db", "port": 7001}
        replset = parse_target("replset:a.sock, b.sock")
        assert replset.scheme == "replset"
        assert replset.members == ("a.sock", "b.sock")
        journal = parse_target(tmp_path / "store")
        assert journal.scheme == "journal"
        assert journal.path == tmp_path / "store"
        assert parse_target(str(tmp_path / "store")).path == Path(
            str(tmp_path / "store")
        )

    def test_cluster_grammar(self):
        from repro.api import parse_target

        parsed = parse_target("cluster:unix:a.sock, b1.sock|b2.sock,")
        assert parsed.scheme == "cluster"
        # one member tuple per shard, | splits a shard into replset
        # members, the trailing comma is forgiven like replset:
        assert parsed.shards == (("unix:a.sock",), ("b1.sock", "b2.sock"))

    @pytest.mark.parametrize(
        ("target", "complaint"),
        [
            ("serve:", "serve: target needs an endpoint"),
            ("unix:", "unix: target needs a socket path"),
            ("tcp:nowhere", "tcp: target needs host:port"),
            ("replset:", "replset: target needs at least one member"),
            ("replset: , ", "replset: target needs at least one member"),
            ("replset:memory:", "must be plain served endpoints"),
            ("cluster:", "cluster: target needs at least one shard"),
            ("cluster:,b.sock", "cluster: shard 0 is empty"),
            ("cluster:a.sock,,b.sock", "cluster: shard 1 is empty"),
            ("cluster:a.sock,||", "cluster: shard 1 is empty"),
            ("cluster:replset:a.sock,b.sock", "must be plain served endpoints"),
            ("cluster:a.sock,cluster:b.sock", "must be plain served endpoints"),
            ("cluster:memory:|a.sock", "must be plain served endpoints"),
            ("cluster:tcp:nowhere", "tcp: target needs host:port"),
            ("cluster:a.sock,unix:", "unix: target needs a socket path"),
        ],
    )
    def test_malformed_targets_fail_cleanly(self, target, complaint):
        from repro.api import parse_target

        with pytest.raises(ReproError) as error_info:
            parse_target(target)
        assert complaint in str(error_info.value)
        # connect() funnels through the same grammar: identical failure
        with pytest.raises(ReproError) as connect_info:
            repro.connect(target)
        assert complaint in str(connect_info.value)

    def test_non_string_target_is_a_typed_error(self):
        from repro.api import parse_target

        with pytest.raises(ReproError, match="connect\\(\\) needs"):
            parse_target(42)


class TestConnectionLifecycle:
    def test_closed_connection_rejects_calls(self):
        conn = repro.connect("memory:", base=BASE)
        conn.close()
        with pytest.raises(ReproError, match="closed"):
            conn.query("phil.sal -> S")
        conn.close()  # idempotent

    def test_close_closes_streams(self):
        conn = repro.connect("memory:", base=BASE)
        stream = conn.subscribe("phil.sal -> S")
        conn.close()
        assert stream.closed

    def test_stream_close_deregisters_from_the_connection(self):
        conn = repro.connect("memory:", base=BASE)
        stream = conn.subscribe("phil.sal -> S")
        stream.close()
        assert conn._streams == []  # no accumulation on long-lived conns
        conn.close()

    def test_close_wakes_a_blocked_consumer(self):
        import threading
        import time

        conn = repro.connect("memory:", base=BASE)
        stream = conn.subscribe("phil.sal -> S")
        results = []
        consumer = threading.Thread(
            target=lambda: results.append(stream.next(timeout=None))
        )
        consumer.start()
        time.sleep(0.2)  # let the consumer block inside next()
        stream.close()
        consumer.join(timeout=5)
        assert not consumer.is_alive()
        assert results == [None]
