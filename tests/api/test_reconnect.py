"""Reconnecting clients: ``repro.connect(..., retry=RetryPolicy(...))``.

The PR-6 client contract: a served connection under a retry policy
survives the server being killed and restarted — safe requests are
re-issued transparently, mutations surface the retryable
:class:`ConnectionClosed` instead of being blindly replayed, and
subscription streams are re-established with one coalesced ``lagged``
delta so folding stays exact across the outage.  The chaos-proxy tests
drive the same machinery through wire faults (torn frames, stalls,
drops) instead of a clean restart.
"""

import time

import pytest

import repro
from repro.api import (
    BackgroundServer,
    ConnectionClosed,
    RetryPolicy,
    ServerError,
)
from repro.api.wire import _EventLoopThread
from repro.core.errors import ReproError
from repro.testing import ChaosProxy

BASE = """
henry.isa -> empl.  henry.sal -> 250.
bob.isa -> empl.    bob.sal -> 300.
"""
SALARIES = "E.isa -> empl, E.sal -> S"
RAISE_HENRY = "r: mod[henry].sal -> (S, S2) <= henry.sal -> S, S2 = S + 50."

#: Patient enough for a restart inside the backoff window, fast in tests.
POLICY = RetryPolicy(attempts=40, base_delay=0.02, max_delay=0.25, jitter=0.25)


@pytest.fixture()
def journal_dir(tmp_path):
    directory = tmp_path / "journal"
    repro.connect(directory, base=BASE).close()
    return directory


@pytest.fixture()
def socket_path(tmp_path):
    return str(tmp_path / "repro.sock")


def _link_down(conn):
    client = conn._client  # may be None mid-redial
    return client is None or not client.alive


def _wait_for(predicate, *, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_spreads_the_herd(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        low = policy.delay(0, rng=lambda: 0.0)
        high = policy.delay(0, rng=lambda: 1.0)
        assert low == pytest.approx(0.5) and high == pytest.approx(1.5)

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=-1.0)

    def test_retry_is_refused_on_targets_without_a_link(self):
        with pytest.raises(ReproError, match="retry="):
            repro.connect("memory:", base=BASE, retry=RetryPolicy())


class TestServerRestart:
    def test_safe_requests_survive_a_restart(self, journal_dir, socket_path):
        server = BackgroundServer(journal_dir, path=socket_path)
        conn = repro.connect(server.target, retry=POLICY)
        try:
            before = conn.query(SALARIES)
            server.close()  # the moral equivalent of SIGKILL
            _wait_for(
                lambda: _link_down(conn), message="client to see the drop"
            )
            server = BackgroundServer(journal_dir, path=socket_path)
            # a safe request rides the reconnect transparently
            assert conn.query(SALARIES) == before
            assert conn.reconnects >= 1
            assert conn.ping()["pong"] is True
        finally:
            conn.close()
            server.close()

    def test_mutations_are_not_replayed_across_the_drop(
        self, journal_dir, socket_path
    ):
        server = BackgroundServer(journal_dir, path=socket_path)
        conn = repro.connect(server.target, retry=POLICY)
        try:
            head_before = conn.head.index
            server.close()
            _wait_for(
                lambda: _link_down(conn), message="client to see the drop"
            )
            with pytest.raises(ConnectionClosed) as caught:
                conn.apply(RAISE_HENRY, tag="lost")
            assert caught.value.retryable is True
            server = BackgroundServer(journal_dir, path=socket_path)
            conn.ping()  # safe traffic restores the link
            assert conn.head.index == head_before  # nothing double-applied
            revision = conn.apply(RAISE_HENRY, tag="retried-by-caller")
            assert revision.index == head_before + 1
        finally:
            conn.close()
            server.close()

    def test_subscription_stream_survives_restart_with_lagged_delta(
        self, journal_dir, socket_path
    ):
        """Kill the server mid-subscription, change the store offline,
        restart: the stream must deliver one coalesced lagged delta and
        its folded answers must equal a fresh query at every step."""
        server = BackgroundServer(journal_dir, path=socket_path)
        conn = repro.connect(server.target, retry=POLICY)
        try:
            stream = conn.subscribe(SALARIES)
            assert stream.answers == conn.query(SALARIES)

            conn.apply(RAISE_HENRY, tag="before-crash")
            delta = stream.next(timeout=10.0)
            assert delta is not None and not delta.lagged
            assert stream.answers == conn.query(SALARIES)

            server.close()  # crash...
            offline = repro.connect(journal_dir)  # ...history moves on
            offline.apply(RAISE_HENRY, tag="offline-1")
            offline.apply(RAISE_HENRY, tag="offline-2")
            expected = offline.query(SALARIES)
            head = offline.head.index
            offline.close()
            server = BackgroundServer(journal_dir, path=socket_path)

            catchup = stream.next(timeout=15.0)
            assert catchup is not None and catchup.lagged is True
            assert stream.answers == expected
            assert stream.revision == head
            assert catchup.added and catchup.removed  # the offline raises

            # and the stream keeps streaming normal diffs afterwards
            conn.apply(RAISE_HENRY, tag="after-restart")
            delta = stream.next(timeout=10.0)
            assert delta is not None and delta.lagged is False
            assert stream.answers == conn.query(SALARIES)
            assert conn.reconnects >= 1
        finally:
            conn.close()
            server.close()

    def test_quiet_outage_produces_no_spurious_delta(
        self, journal_dir, socket_path
    ):
        """A restart during which nothing changed must not wake the
        consumer: the resync diff is empty and is swallowed."""
        server = BackgroundServer(journal_dir, path=socket_path)
        conn = repro.connect(server.target, retry=POLICY)
        try:
            stream = conn.subscribe(SALARIES)
            server.close()
            _wait_for(
                lambda: _link_down(conn), message="client to see the drop"
            )
            server = BackgroundServer(journal_dir, path=socket_path)
            conn.ping()  # force the reconnect to complete
            assert stream.next(timeout=1.0) is None  # nothing to report
            # but the stream is live: a real commit still arrives
            conn.apply(RAISE_HENRY, tag="after-quiet-restart")
            delta = stream.next(timeout=10.0)
            assert delta is not None
            assert stream.answers == conn.query(SALARIES)
        finally:
            conn.close()
            server.close()

    def test_without_retry_the_connection_dies_loudly(
        self, journal_dir, socket_path
    ):
        server = BackgroundServer(journal_dir, path=socket_path)
        conn = repro.connect(server.target)  # no retry policy
        try:
            stream = conn.subscribe(SALARIES)
            server.close()
            # the stream terminates instead of hanging its consumer
            _wait_for(lambda: stream.closed, message="stream termination")
            assert stream.next(timeout=0.5) is None
            with pytest.raises(ServerError):
                conn.query(SALARIES)
        finally:
            conn.close()
            server.close()

    def test_retry_exhaustion_is_a_typed_error(self, journal_dir, socket_path):
        server = BackgroundServer(journal_dir, path=socket_path)
        conn = repro.connect(
            server.target,
            retry=RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02),
        )
        try:
            server.close()  # and never comes back
            with pytest.raises(ConnectionClosed):
                conn.query(SALARIES)
        finally:
            conn.close()
            server.close()


class _ProxyHarness:
    """Drives a :class:`ChaosProxy` from synchronous test code."""

    def __init__(self, target_path: str, listen_path: str) -> None:
        self.loop = _EventLoopThread("chaos-proxy")
        self.proxy = ChaosProxy(target_path, listen_path)
        self.loop.run(self.proxy.start(), timeout=10)

    def stall(self, stalled: bool) -> None:
        async def flip():
            self.proxy.stall(stalled)

        self.loop.run(flip(), timeout=5)

    def break_half_frame(self) -> int:
        return self.loop.run(self.proxy.break_with_half_frame(), timeout=5)

    def drop(self) -> int:
        return self.loop.run(self.proxy.drop_connections(), timeout=5)

    def close(self) -> None:
        try:
            self.loop.run(self.proxy.close(), timeout=5)
        finally:
            self.loop.stop()


class TestWireFaults:
    @pytest.fixture()
    def stack(self, tmp_path, journal_dir):
        """server <- proxy <- connection-with-retry, torn down in order."""
        server = BackgroundServer(journal_dir, path=str(tmp_path / "real.sock"))
        proxy = _ProxyHarness(
            str(tmp_path / "real.sock"), str(tmp_path / "proxy.sock")
        )
        conn = repro.connect(
            f"serve:unix:{tmp_path / 'proxy.sock'}", retry=POLICY
        )
        yield server, proxy, conn
        conn.close()
        proxy.close()
        server.close()

    def test_half_written_frame_triggers_clean_reconnect(self, stack):
        server, proxy, conn = stack
        stream = conn.subscribe(SALARIES)
        assert proxy.break_half_frame() >= 1
        # the torn frame must not be interpreted; the link redials and
        # both plain requests and the stream keep working
        assert conn.query(SALARIES) == stream.answers
        conn.apply(RAISE_HENRY, tag="after-torn-frame")
        delta = stream.next(timeout=10.0)
        assert delta is not None
        assert stream.answers == conn.query(SALARIES)
        assert conn.reconnects >= 1

    def test_dropped_connection_mid_request_recovers(self, stack):
        server, proxy, conn = stack
        before = conn.query(SALARIES)
        assert proxy.drop() >= 1
        assert conn.query(SALARIES) == before
        assert conn.reconnects >= 1

    def test_stalled_reader_times_out_then_recovers(
        self, tmp_path, journal_dir
    ):
        server = BackgroundServer(journal_dir, path=str(tmp_path / "real.sock"))
        proxy = _ProxyHarness(
            str(tmp_path / "real.sock"), str(tmp_path / "proxy.sock")
        )
        conn = repro.connect(
            f"serve:unix:{tmp_path / 'proxy.sock'}", call_timeout=0.5
        )
        try:
            assert conn.ping()["pong"] is True
            proxy.stall(True)
            with pytest.raises(ServerError, match="did not answer"):
                conn.query(SALARIES)
            proxy.stall(False)
            # the link survived the stall; no reconnect was needed
            assert conn.query(SALARIES)
        finally:
            conn.close()
            proxy.close()
            server.close()


class TestStreamFolding:
    """The stream's own answer folding — uniform across backends."""

    def test_local_stream_folds_answers(self):
        conn = repro.connect("memory:", base=BASE)
        try:
            stream = conn.subscribe(SALARIES)
            seed = list(stream.answers)
            conn.apply(RAISE_HENRY, tag="fold-1")
            conn.apply(RAISE_HENRY, tag="fold-2")
            first = stream.next(timeout=5.0)
            assert first is not None and stream.answers != seed
            second = stream.next(timeout=5.0)
            assert second is not None
            assert stream.answers == conn.query(SALARIES)
            assert stream.revision == conn.head.index
        finally:
            conn.close()
