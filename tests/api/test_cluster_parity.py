"""Differential parity for the sharded backend: the scripted workload of
``test_backend_parity`` (adapted to ground-host programs — the one routing
restriction the cluster imposes) runs against ``repro.connect("memory:")``
and a real 2-shard cluster (two background servers behind the ``cluster:``
router), and every observable must match: decoded answers, re-indexed
revision records, subscription deltas, ``as_of`` in every addressing form,
diffs, and error messages.  The only tolerated difference is the shard-local
numerals inside a conflict message (session ids and pinned revision indexes
are per-shard), which are digit-normalized before comparison.

The consistency-token law is asserted directly: the cluster's composed
``as_of`` (union of per-shard bases at the revision vector) equals the
single store's replay at every cluster index, and the vector itself is
addressable (``rv:...`` tokens and :class:`RevisionVector`).
"""

from __future__ import annotations

import re

import pytest

import repro
from repro.api import ConflictError
from repro.cluster import LocalCluster, RevisionVector, shard_for
from repro.core.errors import ReproError
from repro.core.terms import Oid
from repro.lang.pretty import format_object_base

# Host placement under 2 shards (asserted below so a hash change is loud):
# henry -> shard 0; phil, mary, dee -> shard 1.
BASE = """
    phil.isa -> empl.   phil.sal -> 4000.
    mary.isa -> empl.   mary.sal -> 3900.
    henry.isa -> empl.  henry.sal -> 4200.
"""

RAISE_PHIL = """
    raise_phil: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 25.
"""

RAISE_HENRY = """
    raise_henry: mod[henry].sal -> (S, S2) <= henry.sal -> S, S2 = S + 25.
"""

# mary shares dee's shard, so this interloper lands in the staged shard's
# validation footprint — the same induced conflict as the 3-backend suite.
BUMP_MARY = """
    bump_mary: mod[mary].sal -> (S, S2) <= mary.sal -> S, S2 = S + 1.
"""

# phil and dee hash to the same shard, so the cross-host body is routable.
HIRE_DEE = """
    hire_isa: ins[dee].isa -> empl <= phil.isa -> empl.
    hire_sal: ins[dee].sal -> 3000 <= phil.isa -> empl.
"""

SALARY_QUERY = "E.isa -> empl, E.sal -> S"

LOG_TAGS = ["initial", "raise-q1", "raise-h", "interloper", "tx-hire", "bump-2"]


def test_host_placement_assumed_by_this_suite():
    assert shard_for(Oid("henry"), 2) == 0
    assert shard_for(Oid("phil"), 2) == 1
    assert shard_for(Oid("mary"), 2) == 1
    assert shard_for(Oid("dee"), 2) == 1


def _normalize_conflict(message: str) -> str:
    """Conflict messages embed shard-local session ids and revision
    indexes; normalize the numerals, keep every other word exact."""
    message = re.sub(r"session \d+", "session #", message)
    return re.sub(r"revision \d+", "revision #", message)


def run_workload(conn) -> dict:
    trace: dict = {}

    stream = conn.subscribe(SALARY_QUERY, name="salaries")
    trace["initial_answers"] = list(stream.answers)
    trace["initial_revision"] = stream.revision
    deltas = []

    def collect() -> None:
        delta = stream.next(timeout=10.0)
        assert delta is not None, "expected an answer delta"
        deltas.append(
            (delta.query, delta.revision, delta.tag, delta.added, delta.removed)
        )

    # autocommits: one per shard
    trace["apply"] = conn.apply(RAISE_PHIL, tag="raise-q1")
    collect()
    trace["apply_other_shard"] = conn.apply(RAISE_HENRY, tag="raise-h")
    collect()
    trace["query_after_raises"] = conn.query("E.sal -> S")
    trace["single_host_query"] = conn.query("phil.sal -> S")

    # optimistic transaction with an induced conflict, retried by replay
    transaction = conn.transaction(tag="tx-hire", attempts=3)
    with transaction:
        trace["tx_read"] = transaction.query(SALARY_QUERY)
        conn.apply(BUMP_MARY, tag="interloper")
        collect()
        transaction.stage(HIRE_DEE)
    trace["tx_attempts"] = transaction.attempts_used
    trace["tx_result"] = transaction.result
    collect()

    # the same race without retry raises the retryable ConflictError
    doomed = conn.transaction(tag="doomed")
    doomed.query(SALARY_QUERY)
    conn.apply(BUMP_MARY, tag="bump-2")
    collect()
    doomed.stage(RAISE_PHIL)
    with pytest.raises(ConflictError) as conflict_info:
        doomed.commit()
    conflict = conflict_info.value
    trace["conflict"] = (
        type(conflict).__name__,
        conflict.retryable,
        conflict.conflicting_tag,
        _normalize_conflict(str(conflict)),
    )

    trace["deltas"] = deltas
    trace["extra_delta"] = stream.next(timeout=0.25)

    # history: log records, as-of in every addressing form, diffs
    trace["log"] = conn.log()
    trace["head"] = conn.head
    trace["as_of"] = {
        ref: format_object_base(conn.as_of(ref))
        for ref in (0, "0", "initial", 1, "raise-q1", "tx-hire", "bump-2")
    }
    trace["diff"] = conn.diff("initial", "bump-2")
    trace["diff_reverse"] = conn.diff(len(trace["log"]) - 1, 0)

    # unified failure surface: same messages for bad references everywhere
    errors = {}
    for ref in ("nope", 99, -1, "-1", "99", "--2"):
        with pytest.raises(ReproError) as error_info:
            conn.as_of(ref)
        errors[str(ref)] = str(error_info.value)
    trace["errors"] = errors

    stream.close()
    return trace


@pytest.fixture()
def cluster():
    with LocalCluster(BASE, shards=2) as deployment:
        yield deployment


def test_cluster_matches_memory_backend(cluster):
    with repro.connect("memory:", base=BASE, tag="initial") as conn:
        memory_trace = run_workload(conn)
    with repro.connect(cluster.target) as conn:
        cluster_trace = run_workload(conn)

    assert memory_trace == cluster_trace

    # sanity on the shared trace, so the parity is of a *real* run
    trace = memory_trace
    assert trace["tx_attempts"] == 2
    assert [r.tag for r in trace["log"]] == LOG_TAGS
    assert trace["extra_delta"] is None
    assert any(row["E"] == "dee" for row in trace["deltas"][3][3])
    assert trace["errors"]["nope"] == "no revision tagged 'nope'"
    assert trace["errors"]["99"] == "no revision 99"
    assert trace["errors"]["-1"] == "no revision -1"
    assert trace["errors"]["--2"] == "no revision tagged '--2'"


def test_composed_as_of_equals_per_shard_replay(cluster):
    """The acceptance law of the consistency token: for every cluster
    index, the union of per-shard bases at the recorded revision vector
    equals a single store's replay of the same commit sequence."""
    with repro.connect("memory:", base=BASE, tag="initial") as reference:
        with repro.connect(cluster.target) as conn:
            programs = [
                (RAISE_PHIL, "raise-q1"),
                (RAISE_HENRY, "raise-h"),
                (BUMP_MARY, "bump-mary"),
                (HIRE_DEE, "tx-hire"),
            ]
            for program, tag in programs:
                cluster_revision = conn.apply(program, tag=tag)
                reference_revision = reference.apply(program, tag=tag)
                assert cluster_revision == reference_revision
            for index in range(len(programs) + 1):
                assert format_object_base(conn.as_of(index)) == (
                    format_object_base(reference.as_of(index))
                ), f"composed as_of diverged at cluster index {index}"

            # the vector itself is addressable: the router's current cut
            # resolves via an rv: token and a RevisionVector alike
            vector = conn.stats()["cluster"]["router"]["vector"]
            assert vector == f"rv:{1},{3}"  # henry alone on shard 0
            assert format_object_base(conn.as_of(vector)) == (
                format_object_base(reference.as_of(len(programs)))
            )
            assert format_object_base(
                conn.as_of(RevisionVector.parse(vector))
            ) == format_object_base(reference.as_of(len(programs)))

            # ... and each shard, asked directly, sits exactly at its
            # component (the vector is the per-shard replay recipe)
            parsed = RevisionVector.parse(vector)
            for shard, member in enumerate(cluster.members):
                with repro.connect(member) as shard_conn:
                    assert shard_conn.head.index == parsed[shard]


def test_cluster_stats_are_uniform_plus_cluster_section(cluster):
    with repro.connect("memory:", base=BASE, tag="initial") as conn:
        memory_stats = conn.stats()
    with repro.connect(cluster.target) as conn:
        conn.query(SALARY_QUERY)
        conn.query("phil.sal -> S")
        conn.apply(RAISE_PHIL, tag="raise-q1")
        cluster_stats = conn.stats()

    assert set(cluster_stats) - {"cluster"} == set(memory_stats)
    assert set(cluster_stats["replication"]) == set(memory_stats["replication"])
    assert cluster_stats["replication"]["role"] == "router"
    assert set(cluster_stats["metrics"]) == {"enabled", "registry"}
    assert set(cluster_stats["slowlog"]) == {
        "entries", "dropped", "capacity", "thresholds_ms",
    }
    assert cluster_stats["shard"] == {"id": None, "count": 2}
    router = cluster_stats["cluster"]["router"]
    assert router["shards"] == 2
    assert router["single_reads"] == 1
    assert router["scatter_reads"] == 1
    assert router["commits"] == 1
    shards = cluster_stats["cluster"]["shards"]
    assert [entry["shard"] for entry in shards] == [0, 1]
    assert all(entry["role"] == "primary" for entry in shards)


def test_cluster_rejects_unroutable_work(cluster):
    with repro.connect(cluster.target) as conn:
        with pytest.raises(ReproError, match="ground rule hosts"):
            conn.apply(
                "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, "
                "E.sal -> S, S2 = S + 25."
            )
        # phil (shard 1) and henry (shard 0) cannot commit together
        with pytest.raises(ReproError, match="one shard"):
            conn.apply(
                "pair: mod[phil].sal -> (S, S2) <= henry.sal -> S, "
                "S2 = S + 1."
            )
        with pytest.raises(ReproError, match="single host root"):
            conn.subscribe("E.isa -> empl, E.boss -> B, B.sal -> S")
        # a cross-host join still *reads* fine (gather fallback)
        assert conn.query("phil.sal -> S, henry.sal -> T") == [
            {"S": 4000, "T": 4200}
        ]
    with pytest.raises(ReproError, match="readonly"):
        repro.connect(cluster.target, readonly=True)
    with pytest.raises(ReproError, match="base="):
        repro.connect(cluster.target, base=BASE)


def test_min_revision_token_is_read_your_writes(cluster):
    """A cluster revision index handed to another connection acts as a
    read-your-writes token: the read reflects at least that commit."""
    with repro.connect(cluster.target) as writer:
        revision = writer.apply(RAISE_PHIL, tag="raise-q1")
        with repro.connect(cluster.target) as reader:
            answers = reader.query(
                "phil.sal -> S", min_revision=revision.index
            )
            assert answers == [{"S": 4025}]
            scatter = reader.query(
                SALARY_QUERY, min_revision=revision.index
            )
            assert {"E": "phil", "S": 4025} in scatter
