"""The facade's transaction surface: context managers, conflict retry by
replay, and the callable-retry form — identical over every backend."""

import pytest

import repro
from repro.api import ConflictError, SessionError

BASE = """
    phil.isa -> empl.  phil.sal -> 4000.
    bob.isa -> empl.   bob.sal -> 4200.
"""
RAISE = "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 50."
BUMP = "bump: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 1."


@pytest.fixture()
def conn():
    with repro.connect("memory:", base=BASE) as connection:
        yield connection


class TestContextManager:
    def test_clean_exit_commits_staged_programs(self, conn):
        with conn.transaction(tag="raised") as tx:
            assert tx.pinned == 0
            tx.stage(RAISE)
        assert tx.state == "committed"
        assert tx.result.revision.tag == "raised"
        assert conn.query("phil.sal -> S") == [{"S": 4050}]

    def test_read_only_transaction_aborts_silently(self, conn):
        with conn.transaction() as tx:
            assert tx.query("phil.sal -> S") == [{"S": 4000}]
        assert tx.state == "aborted"
        assert len(conn.log()) == 1  # nothing committed

    def test_exception_aborts_and_propagates(self, conn):
        with pytest.raises(RuntimeError, match="boom"):
            with conn.transaction() as tx:
                tx.stage(RAISE)
                raise RuntimeError("boom")
        assert tx.state == "aborted"
        assert len(conn.log()) == 1

    def test_multiple_staged_programs_commit_as_a_batch(self, conn):
        with conn.transaction(tag="batch") as tx:
            tx.stage(RAISE)
            tx.stage(BUMP)
        assert [r.tag for r in tx.result.revisions] == ["batch.0", "batch.1"]
        assert conn.query("phil.sal -> S") == [{"S": 4051}]


class TestExplicitLifecycle:
    def test_commit_returns_result_and_finishes(self, conn):
        tx = conn.transaction()
        tx.stage(RAISE)
        result = tx.commit(tag="explicit")
        assert result.revision.tag == "explicit"
        with pytest.raises(SessionError, match="already committed"):
            tx.commit()
        with pytest.raises(SessionError, match="already committed"):
            tx.stage(BUMP)

    def test_commit_with_nothing_staged_is_an_error(self, conn):
        tx = conn.transaction()
        with pytest.raises(SessionError, match="nothing staged"):
            tx.commit()

    def test_abort_is_idempotent_and_final(self, conn):
        tx = conn.transaction()
        tx.stage(RAISE)
        tx.abort()
        tx.abort()
        with pytest.raises(SessionError, match="already aborted"):
            tx.query("phil.sal -> S")
        assert len(conn.log()) == 1


class TestConflictRetry:
    def _race(self, conn, tx):
        """Commit something inside the transaction's read footprint."""
        tx.query("E.sal -> S")
        conn.apply(BUMP, tag="interloper")
        tx.stage(RAISE)

    def test_single_attempt_raises_the_retryable_conflict(self, conn):
        tx = conn.transaction()
        self._race(conn, tx)
        with pytest.raises(ConflictError) as info:
            tx.commit()
        assert info.value.retryable is True
        assert info.value.conflicting_tag == "interloper"
        assert tx.state == "aborted"

    def test_attempts_replay_the_recorded_operations(self, conn):
        tx = conn.transaction(tag="retried", attempts=3)
        self._race(conn, tx)
        result = tx.commit()
        assert tx.attempts_used == 2
        assert result.attempts == 2
        assert result.revision.tag == "retried"
        # the replayed transaction re-read at the *new* pin
        assert tx.pinned == 1
        # both the interloper and the retried raise landed
        assert conn.query("phil.sal -> S") == [{"S": 4051}]

    def test_run_transaction_reruns_the_callable(self, conn):
        seen_salaries = []

        def work(tx):
            seen_salaries.append(tx.query("phil.sal -> S")[0]["S"])
            if len(seen_salaries) == 1:
                conn.apply(BUMP, tag="interloper")
            tx.stage(RAISE)

        result = conn.run_transaction(work, attempts=3, tag="cb")
        assert result.attempts == 2
        # the callable observed the pre- and post-interloper values: real
        # re-execution, not a replayed recording
        assert seen_salaries == [4000, 4001]
        assert result.revision.tag == "cb"

    def test_run_transaction_exhausts_attempts(self, conn):
        def work(tx):
            tx.query("E.sal -> S")
            conn.apply(BUMP)
            tx.stage(RAISE)

        with pytest.raises(ConflictError):
            conn.run_transaction(work, attempts=2)
