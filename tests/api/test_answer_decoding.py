"""Satellite regression: every client surface returns *decoded* answers.

``_ClientConveniences.query``/``tx_query`` used to hand back whatever the
dispatcher produced — for the in-process client that was the store's live
memo rows (mutating one corrupted the cache), and over the wire the raw
JSON decode.  Now every receipt path decodes into canonical fresh rows
that match ``repro.query`` exactly.
"""

import json

import pytest

import repro
from repro.api import BackgroundServer
from repro.core.query import answer_sort_key, decode_answer, decode_answers
from repro.server import connect_local
from repro.server.service import StoreService
from repro.storage import VersionedStore

BASE = """
    phil.isa -> empl.   phil.sal -> 4000.
    bob.isa -> empl.    bob.sal -> 4200.
    v7.isa -> widget.   v7.label -> seven.
"""
QUERY = "E.isa -> empl, E.sal -> S"


@pytest.fixture()
def service():
    return StoreService(VersionedStore(repro.parse_object_base(BASE)))


class TestLocalClientDecoding:
    def test_matches_repro_query_exactly(self, service):
        with connect_local(service) as client:
            received = client.query(QUERY)
        expected = repro.query(service.store.current, QUERY)
        assert received == expected

    def test_rows_are_fresh_copies_not_the_live_memo(self, service):
        with connect_local(service) as client:
            first = client.query(QUERY)
            first[0]["S"] = "corrupted"
            first.pop()
            assert client.query(QUERY) == repro.query(
                service.store.current, QUERY
            )

    def test_tx_query_matches_repro_query(self, service):
        with connect_local(service) as client:
            session = client.begin()
            received = client.tx_query(session, QUERY)
            client.abort(session)
        assert received == repro.query(service.store.current, QUERY)


class TestWireDecoding:
    def test_served_answers_match_repro_query(self, service, tmp_path):
        socket_path = str(tmp_path / "decode.sock")
        with BackgroundServer(service, path=socket_path):
            with repro.connect(f"serve:{socket_path}") as conn:
                received = conn.query(QUERY)
                with conn.transaction() as tx:
                    tx_received = tx.query(QUERY)
        expected = repro.query(service.store.current, QUERY)
        assert received == expected
        assert tx_received == expected

    def test_mixed_value_types_survive_the_wire(self, service, tmp_path):
        # int results and symbolic results of one variable sort and decode
        # identically over the wire (the type-ranked answer order)
        body = "X.isa -> T"
        socket_path = str(tmp_path / "mixed.sock")
        with BackgroundServer(service, path=socket_path):
            with repro.connect(f"serve:{socket_path}") as conn:
                assert conn.query(body) == repro.query(
                    service.store.current, body
                )


class TestCanonicalForm:
    def test_decode_answer_sorts_binding_keys(self):
        row = {"S": 4000, "E": "phil"}
        assert list(decode_answer(row)) == ["E", "S"]
        assert json.dumps(decode_answer(row)) == '{"E": "phil", "S": 4000}'

    def test_decode_answers_restores_canonical_order(self):
        rows = [{"E": "zed"}, {"E": "abe"}]
        decoded = decode_answers(rows)
        assert decoded == sorted(decoded, key=answer_sort_key)
        assert decoded[0] == {"E": "abe"}

    def test_json_artifacts_are_undone(self):
        assert decode_answer({"X": [1, 2]}) == {"X": (1, 2)}

    def test_non_dict_rows_are_protocol_errors(self):
        with pytest.raises(repro.ReproError, match="malformed answer row"):
            decode_answer(["not", "a", "row"])

    def test_facade_answers_are_canonical_on_every_backend(self):
        with repro.connect("memory:", base=BASE) as conn:
            rows = conn.query(QUERY)
        assert [list(row) for row in rows] == [["E", "S"], ["E", "S"]]
        assert rows == sorted(rows, key=answer_sort_key)
