"""Tests for the sharded cluster subsystem."""
