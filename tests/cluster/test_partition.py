"""Unit tests for the partitioning layer: stable host placement, base
splitting, program-host extraction and read-scope classification."""

from __future__ import annotations

import pytest

import repro
from repro.cluster import (
    program_hosts,
    query_scope,
    shard_for,
    shard_of_fact,
    split_base,
)
from repro.core.errors import TermError
from repro.core.facts import Fact
from repro.core.query import prepare_query
from repro.core.terms import Oid, Var
from repro.server.service import StoreService

BASE = repro.parse_object_base(
    "phil.isa -> empl. phil.sal -> 4000. "
    "mary.isa -> empl. mary.sal -> 3900. "
    "henry.isa -> empl. henry.sal -> 4200."
)


def _scope(body: str, count: int = 2):
    return query_scope(prepare_query(body).body, count)


def test_shard_for_is_stable_across_processes():
    # crc32-based, NOT the salted builtin hash(): these placements are
    # load-bearing for on-disk cluster layouts and must never drift.
    assert shard_for(Oid("phil"), 2) == 1
    assert shard_for(Oid("henry"), 2) == 0
    assert shard_for(Oid(7), 2) == shard_for(Oid(7), 2)
    assert shard_for(Oid("phil"), 1) == 0
    for count in (1, 2, 4, 8):
        assert 0 <= shard_for(Oid("anyone"), count) < count


def test_split_base_partitions_by_host_and_loses_nothing():
    pieces = split_base(BASE, 2)
    assert len(pieces) == 2
    merged = {fact for piece in pieces for fact in piece}
    assert merged == set(BASE)
    for index, piece in enumerate(pieces):
        for fact in piece:
            assert shard_of_fact(fact, 2) == index


def test_shard_of_fact_rejects_variable_roots():
    pattern = Fact(Var("E"), "isa", (), Oid("empl"))
    with pytest.raises(TermError, match="no ground object identity"):
        shard_of_fact(pattern, 2)


def test_program_hosts_ground_and_variable():
    ground = StoreService.coerce_program(
        "raise: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 1."
    )
    assert program_hosts(ground) == frozenset({Oid("phil")})

    multi = StoreService.coerce_program(
        "hire: ins[dee].isa -> empl <= phil.isa -> empl."
    )
    assert program_hosts(multi) == frozenset({Oid("dee"), Oid("phil")})

    variable = StoreService.coerce_program(
        "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, "
        "S2 = S + 1."
    )
    assert program_hosts(variable) is None


def test_query_scope_classification():
    # ground single host -> that shard alone
    kind, shard = _scope("phil.sal -> S")
    assert (kind, shard) == ("single", 1)
    # ground hosts on different shards -> gather (cross-shard join)
    kind, shard = _scope("phil.sal -> S, henry.sal -> T")
    assert (kind, shard) == ("gather", None)
    # one variable root, no ground roots -> scatter (shard-local eval)
    kind, shard = _scope("E.isa -> empl, E.sal -> S")
    assert (kind, shard) == ("scatter", None)
    # two distinct variable roots -> a potential cross-host join: gather
    kind, shard = _scope("E.boss -> B, B.sal -> S")
    assert (kind, shard) == ("gather", None)
    # no version literals at all (pure builtins) -> shard 0 by convention
    kind, shard = _scope("S = 1 + 1")
    assert (kind, shard) == ("single", 0)
    # classification is count-independent for variable roots; the router
    # short-circuits the fan-out machinery itself when count == 1
    kind, shard = _scope("E.isa -> empl, E.sal -> S", count=1)
    assert (kind, shard) == ("scatter", None)
    kind, shard = _scope("phil.sal -> S, henry.sal -> T", count=1)
    assert (kind, shard) == ("single", 0)
