"""Unit and property tests for sorted unification (DESIGN.md D2).

The sort discipline is semantically load-bearing for the paper's examples
(stratification shapes, exactly-once updates), so it is pinned extensively.
"""

from hypothesis import given, strategies as st

from repro.core.terms import Oid, UpdateKind, Var, VersionId, VersionVar, wrap
from repro.unify.unification import match_term, unifiable, unify, unify_terms

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY

# -- term strategies ---------------------------------------------------------
oids = st.sampled_from(["a", "b", "phil", "bob"]).map(Oid)
variables = st.sampled_from(["X", "Y", "E"]).map(Var)
kinds = st.sampled_from(list(UpdateKind))


def wrap_random(draw_kinds, inner):
    term = inner
    for kind in draw_kinds:
        term = wrap(kind, term)
    return term


ground_terms = st.builds(wrap_random, st.lists(kinds, max_size=3), oids)
patterns = st.builds(wrap_random, st.lists(kinds, max_size=3), st.one_of(oids, variables))


class TestSortDiscipline:
    def test_var_unifies_with_oid(self):
        assert unify_terms(Var("X"), Oid("a")) == {Var("X"): Oid("a")}

    def test_var_unifies_with_var(self):
        result = unify_terms(Var("X"), Var("Y"))
        assert result in ({Var("X"): Var("Y")}, {Var("Y"): Var("X")})

    def test_var_never_takes_version(self):
        # E does not unify with mod(peter): footnote 3's stratification
        assert unify_terms(Var("E"), wrap(MOD, Oid("peter"))) is None
        assert unify_terms(wrap(MOD, Oid("peter")), Var("E")) is None

    def test_bare_var_vs_functored_pattern(self):
        # mod(E) does not unify with X: the ancestor program stays one stratum
        assert not unifiable(wrap(MOD, Var("E")), Var("X"))

    def test_same_functor_unifies_inside(self):
        result = unify_terms(wrap(MOD, Var("E")), wrap(MOD, Var("B")))
        assert result is not None

    def test_functor_mismatch(self):
        assert not unifiable(wrap(MOD, Var("E")), wrap(DEL, Var("E")))

    def test_nested(self):
        left = wrap(DEL, wrap(MOD, Var("E")))
        right = wrap(DEL, wrap(MOD, Oid("phil")))
        assert unify_terms(left, right) == {Var("E"): Oid("phil")}

    def test_depth_mismatch(self):
        assert not unifiable(wrap(MOD, Var("E")), wrap(MOD, wrap(MOD, Oid("o"))))

    def test_oids(self):
        assert unify_terms(Oid("a"), Oid("a")) == {}
        assert unify_terms(Oid("a"), Oid("b")) is None

    def test_shared_variable_consistency(self):
        # unify(mod(X), mod(Y)) then X with a: both bound consistently
        binding = unify_terms(wrap(MOD, Var("X")), wrap(MOD, Var("Y")))
        extended = unify_terms(Var("X"), Oid("a"), binding)
        assert extended is not None
        from repro.unify.substitution import resolve

        assert resolve(Var("Y"), extended) == Oid("a")


class TestVersionVars:
    def test_binds_any_vid(self):
        target = wrap(INS, wrap(MOD, Oid("o")))
        assert unify_terms(VersionVar("W"), target) == {VersionVar("W"): target}

    def test_occurs_check(self):
        w = VersionVar("W")
        assert unify_terms(w, wrap(MOD, w)) is None

    def test_inside_functor(self):
        left = wrap(MOD, VersionVar("W"))
        right = wrap(MOD, wrap(DEL, Oid("o")))
        assert unify_terms(left, right) == {VersionVar("W"): wrap(DEL, Oid("o"))}


class TestMatchTerm:
    def test_pattern_var_takes_oid_only(self):
        assert match_term(Var("X"), Oid("a")) == {Var("X"): Oid("a")}
        # salary-raise applies exactly once: X never matches mod(phil)
        assert match_term(Var("X"), wrap(MOD, Oid("phil"))) is None

    def test_functor_walk(self):
        pattern = wrap(MOD, Var("E"))
        assert match_term(pattern, wrap(MOD, Oid("phil"))) == {Var("E"): Oid("phil")}
        assert match_term(pattern, wrap(DEL, Oid("phil"))) is None
        assert match_term(pattern, Oid("phil")) is None

    def test_existing_binding_respected(self):
        pattern = wrap(MOD, Var("E"))
        assert match_term(pattern, wrap(MOD, Oid("b")), {Var("E"): Oid("a")}) is None
        assert match_term(pattern, wrap(MOD, Oid("a")), {Var("E"): Oid("a")}) == {
            Var("E"): Oid("a")
        }

    def test_input_binding_not_mutated(self):
        binding = {}
        match_term(Var("X"), Oid("a"), binding)
        assert binding == {}

    def test_version_var_matches_whole_vid(self):
        ground = wrap(DEL, wrap(MOD, Oid("o")))
        assert match_term(VersionVar("W"), ground) == {VersionVar("W"): ground}

    @given(patterns, ground_terms)
    def test_match_implies_unifiable(self, pattern, ground):
        if match_term(pattern, ground) is not None:
            assert unifiable(pattern, ground)

    @given(patterns, ground_terms)
    def test_match_result_reproduces_ground(self, pattern, ground):
        from repro.unify.substitution import apply_term

        binding = match_term(pattern, ground)
        if binding is not None:
            assert apply_term(pattern, binding) == ground


class TestUnifyPublicApi:
    def test_returns_substitution(self):
        subst = unify(wrap(MOD, Var("E")), wrap(MOD, Oid("phil")))
        assert subst is not None
        assert subst.apply(Var("E")) == Oid("phil")

    def test_failure_returns_none(self):
        assert unify(Oid("a"), Oid("b")) is None

    @given(patterns, patterns)
    def test_symmetry_of_unifiability(self, left, right):
        assert unifiable(left, right) == unifiable(right, left)

    @given(patterns)
    def test_reflexive(self, term):
        assert unifiable(term, term)
