"""Unit and property tests for substitutions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import TermError
from repro.core.terms import Oid, UpdateKind, Var, VersionId, VersionVar, wrap
from repro.unify.substitution import Substitution, apply_term, resolve

names = st.sampled_from(["X", "Y", "Z", "E", "B"])
oids = st.one_of(
    st.sampled_from(["a", "b", "phil"]).map(Oid),
    st.integers(-5, 5).map(Oid),
)


class TestResolve:
    def test_follows_chains(self):
        binding = {Var("X"): Var("Y"), Var("Y"): Oid("a")}
        assert resolve(Var("X"), binding) == Oid("a")

    def test_unbound_stays(self):
        assert resolve(Var("X"), {}) == Var("X")

    def test_non_var_passthrough(self):
        assert resolve(Oid("a"), {Var("X"): Oid("b")}) == Oid("a")


class TestApplyTerm:
    def test_rebuilds_functors(self):
        term = wrap(UpdateKind.MODIFY, Var("E"))
        assert apply_term(term, {Var("E"): Oid("phil")}) == wrap(
            UpdateKind.MODIFY, Oid("phil")
        )

    def test_identity_when_unbound(self):
        term = wrap(UpdateKind.INSERT, Var("E"))
        assert apply_term(term, {}) is term  # no rebuild on no-op

    def test_version_var_value_is_substituted_recursively(self):
        # ?W -> mod(X), X -> a  ==>  ?W evaluates to mod(a)
        binding = {
            VersionVar("W"): wrap(UpdateKind.MODIFY, Var("X")),
            Var("X"): Oid("a"),
        }
        assert apply_term(VersionVar("W"), binding) == wrap(
            UpdateKind.MODIFY, Oid("a")
        )


class TestSubstitution:
    def test_sort_discipline(self):
        # plain variables cannot take version identities (DESIGN.md D2)
        with pytest.raises(TermError):
            Substitution({Var("X"): wrap(UpdateKind.INSERT, Oid("a"))})

    def test_version_vars_may_take_vids(self):
        subst = Substitution({VersionVar("W"): wrap(UpdateKind.INSERT, Oid("a"))})
        assert subst[VersionVar("W")] == wrap(UpdateKind.INSERT, Oid("a"))

    def test_bind_returns_new(self):
        empty = Substitution()
        extended = empty.bind(Var("X"), Oid("a"))
        assert Var("X") not in empty
        assert extended[Var("X")] == Oid("a")

    def test_restrict(self):
        subst = Substitution({Var("X"): Oid("a"), Var("Y"): Oid("b")})
        assert set(subst.restrict([Var("X")])) == {Var("X")}

    def test_compose_applies_left_then_right(self):
        left = Substitution({Var("X"): Var("Y")})
        right = Substitution({Var("Y"): Oid("a")})
        composed = left.compose(right)
        assert composed.apply(Var("X")) == Oid("a")
        assert composed.apply(Var("Y")) == Oid("a")

    def test_equality_and_hash(self):
        one = Substitution({Var("X"): Oid("a")})
        two = Substitution({Var("X"): Oid("a")})
        assert one == two
        assert hash(one) == hash(two)

    @given(st.dictionaries(names.map(Var), oids, max_size=4))
    def test_apply_is_idempotent(self, binding):
        subst = Substitution(binding)
        for var in binding:
            once = subst.apply(var)
            assert subst.apply(once) == once

    @given(st.dictionaries(names.map(Var), oids, max_size=4), names.map(Var))
    def test_ground_on_matches_membership(self, binding, var):
        subst = Substitution(binding)
        assert subst.is_ground_on([var]) == (var in binding)
