"""Tests for unify."""
