"""CLI integration tests (python -m repro / repro-updates)."""

import pytest

from repro.cli import main

PROGRAM = """
rule1: mod[E].sal -> (S, S2) <=
    E.isa -> empl / pos -> mgr / sal -> S, S2 = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S2) <=
    E.isa -> empl / sal -> S, not E.pos -> mgr, S2 = S * 1.1.
rule3: del[mod(E)].* <=
    mod(E).isa -> empl / boss -> B / sal -> SE,
    mod(B).isa -> empl / sal -> SB, SE > SB.
rule4: ins[mod(E)].isa -> hpe <=
    mod(E).isa -> empl / sal -> S, S > 4500,
    not del[mod(E)].isa -> empl.
"""

BASE = """
phil.isa -> empl.  phil.pos -> mgr.  phil.sal -> 4000.
bob.isa -> empl.   bob.sal -> 4200.  bob.boss -> phil.
"""


@pytest.fixture()
def files(tmp_path):
    program = tmp_path / "update.upd"
    base = tmp_path / "world.ob"
    program.write_text(PROGRAM, encoding="utf-8")
    base.write_text(BASE, encoding="utf-8")
    return program, base


class TestApply:
    def test_prints_new_base(self, files, capsys):
        program, base = files
        code = main(["apply", "--program", str(program), "--base", str(base)])
        assert code == 0
        out = capsys.readouterr().out
        assert "phil.isa -> hpe." in out
        assert "bob" not in out

    def test_out_file(self, files, tmp_path, capsys):
        program, base = files
        target = tmp_path / "new.ob"
        code = main([
            "apply", "--program", str(program), "--base", str(base),
            "--out", str(target),
        ])
        assert code == 0
        assert "phil.sal -> 4600.0." in target.read_text(encoding="utf-8")

    def test_result_base_includes_versions(self, files, capsys):
        program, base = files
        main([
            "apply", "--program", str(program), "--base", str(base),
            "--result-base",
        ])
        out = capsys.readouterr().out
        assert "mod(phil).sal -> 4600.0." in out
        assert "del(mod(bob)).exists -> bob." in out

    def test_trace_goes_to_stderr(self, files, capsys):
        program, base = files
        main(["apply", "--program", str(program), "--base", str(base), "--trace"])
        captured = capsys.readouterr()
        assert "stratum 0" in captured.err
        assert "stratum 0" not in captured.out

    def test_linearity_error_reported(self, tmp_path, capsys):
        program = tmp_path / "bad.upd"
        base = tmp_path / "world.ob"
        program.write_text(
            "m: mod[o].m -> (a, b) <= o.t -> yes.\n"
            "d: del[o].m -> a <= o.t -> yes.\n",
            encoding="utf-8",
        )
        base.write_text("o.m -> a. o.t -> yes.", encoding="utf-8")
        code = main(["apply", "--program", str(program), "--base", str(base)])
        assert code == 1
        assert "not linear" in capsys.readouterr().err


class TestStratify:
    def test_full_conditions(self, files, capsys):
        program, _ = files
        assert main(["stratify", "--program", str(program)]) == 0
        out = capsys.readouterr().out
        assert "stratum 0: {rule1, rule2}" in out
        assert "stratum 1: {rule3}" in out
        assert "stratum 2: {rule4}" in out

    def test_condition_subset(self, files, capsys):
        program, _ = files
        assert main(["stratify", "--program", str(program), "--conditions", "a"]) == 0
        out = capsys.readouterr().out
        assert "stratum 1: {rule3, rule4}" in out


class TestCheck:
    def test_safe_program(self, files, capsys):
        program, _ = files
        assert main(["check", "--program", str(program)]) == 0
        out = capsys.readouterr().out
        assert "rule1: safe" in out
        assert "stratification:" in out

    def test_unsafe_program(self, tmp_path, capsys):
        program = tmp_path / "unsafe.upd"
        program.write_text("r: ins[X].m -> Y <= X.a -> B.", encoding="utf-8")
        assert main(["check", "--program", str(program)]) == 1
        assert "UNSAFE" in capsys.readouterr().out


class TestQuery:
    def test_answers(self, files, capsys):
        _, base = files
        assert main(["query", "--base", str(base), "E.sal -> S, S > 4100"]) == 0
        out = capsys.readouterr().out
        assert "E = bob, S = 4200" in out

    def test_ground_yes(self, files, capsys):
        _, base = files
        main(["query", "--base", str(base), "phil.pos -> mgr"])
        assert "yes" in capsys.readouterr().out

    def test_no_answers(self, files, capsys):
        _, base = files
        main(["query", "--base", str(base), "E.isa -> robot"])
        assert "(no answers)" in capsys.readouterr().out

    def test_parse_error_exit_code(self, files, capsys):
        _, base = files
        assert main(["query", "--base", str(base), "E.sal -> "]) == 1


class TestStoreCli:
    @pytest.fixture()
    def journal(self, files, tmp_path):
        _, base = files
        directory = tmp_path / "store"
        assert main(["store", "init", "--dir", str(directory), "--base", str(base)]) == 0
        return directory

    def test_init_creates_journal(self, files, tmp_path, capsys):
        _, base = files
        directory = tmp_path / "fresh-store"
        code = main(["store", "init", "--dir", str(directory), "--base", str(base)])
        assert code == 0
        assert "initialized" in capsys.readouterr().err
        assert (directory / "journal.jsonl").exists()
        assert (directory / "snap-000000.json").exists()

    def test_apply_appends_and_logs(self, files, journal, capsys):
        program, _ = files
        code = main([
            "store", "apply", "--dir", str(journal),
            "--program", str(program), "--tag", "raise-q1",
        ])
        assert code == 0
        assert "revision 1 [raise-q1]" in capsys.readouterr().err
        assert main(["store", "log", "--dir", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "raise-q1" in out
        assert "update" in out  # program name from the file stem

    def test_diff_and_as_of(self, files, journal, capsys):
        program, _ = files
        main(["store", "apply", "--dir", str(journal),
              "--program", str(program), "--tag", "upd"])
        capsys.readouterr()
        assert main(["store", "diff", "--dir", str(journal), "initial", "upd"]) == 0
        out = capsys.readouterr().out
        assert "+ phil.isa -> hpe" in out
        assert "- bob.isa -> empl" in out
        assert main(["store", "as-of", "--dir", str(journal), "0"]) == 0
        out = capsys.readouterr().out
        assert "bob.sal -> 4200." in out
        assert main(["store", "as-of", "--dir", str(journal), "upd"]) == 0
        assert "bob" not in capsys.readouterr().out

    def test_compact(self, files, journal, capsys):
        program, _ = files
        for tag in ("one", "two", "three"):
            main(["store", "apply", "--dir", str(journal),
                  "--program", str(program), "--tag", tag])
        assert main(["store", "compact", "--dir", str(journal),
                     "--interval", "2"]) == 0
        assert "compacted" in capsys.readouterr().err
        assert sorted(p.name for p in journal.glob("snap-*.json")) == [
            "snap-000000.json", "snap-000002.json",
        ]
        assert main(["store", "log", "--dir", str(journal)]) == 0
        assert "three" in capsys.readouterr().out

    def test_verify_clean_journal(self, files, journal, capsys):
        program, _ = files
        main(["store", "apply", "--dir", str(journal),
              "--program", str(program), "--tag", "one"])
        assert main(["store", "verify", "--dir", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "2 revisions" in out and "ok" in out

    def test_verify_flags_corruption_with_location(self, journal, capsys):
        journal_file = journal / "journal.jsonl"
        with journal_file.open("a", encoding="utf-8") as handle:
            handle.write('{"broken": tru\n')
        assert main(["store", "verify", "--dir", str(journal)]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        assert "line 3" in out and "byte" in out

    def test_verify_json_report(self, journal, capsys):
        import json

        assert main(["store", "verify", "--dir", str(journal),
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["revisions"] == 1

    def test_missing_journal_is_an_error(self, tmp_path, capsys):
        code = main(["store", "log", "--dir", str(tmp_path / "nope")])
        assert code == 1
        assert "no journal" in capsys.readouterr().err

    def test_init_refuses_to_overwrite_existing_journal(
        self, files, journal, capsys
    ):
        _, base = files
        code = main(["store", "init", "--dir", str(journal), "--base", str(base)])
        assert code == 1
        assert "already exists" in capsys.readouterr().err
        assert (journal / "snap-000000.json").exists()  # history untouched


class TestCliErrorPolish:
    """Satellite: unknown tags/revisions, missing files and corrupt
    journals exit non-zero with a one-line stderr message — never a
    traceback."""

    @pytest.fixture()
    def journal(self, files, tmp_path):
        _, base = files
        directory = tmp_path / "store"
        assert main(["store", "init", "--dir", str(directory), "--base", str(base)]) == 0
        return directory

    def test_unknown_tag_and_index(self, journal, capsys):
        for argv in (
            ["store", "as-of", "--dir", str(journal), "nope"],
            ["store", "as-of", "--dir", str(journal), "99"],
            ["store", "diff", "--dir", str(journal), "init", "nope"],
            ["store", "log", "--dir", str(journal / "missing")],
        ):
            assert main(argv) == 1
            err = capsys.readouterr().err
            assert err.startswith("error: ")
            assert "Traceback" not in err

    def test_negative_index_is_rejected_not_resolved(self, journal, capsys):
        code = main(["store", "as-of", "--dir", str(journal), "--", "-1"])
        assert code == 1
        assert "no revision -1" in capsys.readouterr().err

    def test_missing_program_and_base_files(self, files, tmp_path, capsys):
        program, base = files
        assert main(["apply", "--program", str(tmp_path / "nope.upd"),
                     "--base", str(base)]) == 1
        assert "no such file" in capsys.readouterr().err
        assert main(["apply", "--program", str(program),
                     "--base", str(tmp_path / "nope.ob")]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_corrupt_journal_line(self, journal, capsys):
        journal_file = journal / "journal.jsonl"
        lines = journal_file.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "garbage")
        journal_file.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert main(["store", "log", "--dir", str(journal)]) == 1
        err = capsys.readouterr().err
        assert "corrupt" in err and "Traceback" not in err

    def test_missing_snapshot_file(self, journal, capsys):
        (journal / "snap-000000.json").unlink()
        assert main(["store", "as-of", "--dir", str(journal), "0"]) == 1
        err = capsys.readouterr().err
        assert "snapshot" in err and "Traceback" not in err

    def test_client_without_server_is_an_error(self, tmp_path, capsys):
        code = main(["client", "--socket", str(tmp_path / "no.sock"), "ping"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_serve_requires_an_endpoint(self, journal, capsys):
        assert main(["serve", "--dir", str(journal)]) == 1
        assert "--socket" in capsys.readouterr().err
