"""Tests for integration."""
