"""Every example script must run clean — examples are executable docs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "enterprise_hr",
        "hypothetical_reasoning",
        "ancestors",
        "version_audit",
        "control_comparison",
        "inventory_views",
        "prepared_queries",
        "live_queries",
    } <= names


class TestExampleOutcomes:
    """Spot checks on the narratives the examples print."""

    def _output_of(self, name, capsys):
        script = next(p for p in EXAMPLES if p.stem == name)
        runpy.run_path(str(script), run_name="__main__")
        return capsys.readouterr().out

    def test_quickstart_shows_raised_salaries(self, capsys):
        out = self._output_of("quickstart", capsys)
        assert "henry: 275" in out
        assert "mod(henry)" in out

    def test_enterprise_shows_figure2_strata(self, capsys):
        out = self._output_of("enterprise_hr", capsys)
        assert "stratum 0: {rule1, rule2}" in out
        assert "ins(mod(phil))" in out

    def test_control_comparison_shows_divergence(self, capsys):
        out = self._output_of("control_comparison", capsys)
        assert "bob wrongly fired" in out
        assert "hpe = {bob, phil}" in out

    def test_inventory_reports_schema_change(self, capsys):
        out = self._output_of("inventory_views", capsys)
        assert "+ class depleted" in out

    def test_live_queries_pushes_only_answer_diffs(self, capsys):
        out = self._output_of("live_queries", capsys)
        assert "committed revision 1 [team-raise]" in out
        # the raise reaches the salary subscription as a diff ...
        assert '"added": [{"E": "ben", "S": 3360.0}' in out
        # ... while the org-chart subscription skipped that commit
        assert "'skipped': 1" in out
