"""Integration tests: the paper's examples, end to end.

Each test corresponds to an experiment in EXPERIMENTS.md (E1-E5, E7) and
asserts the outcome the paper states or implies — these are the
correctness core of the reproduction.
"""

import pytest

from repro import UpdateEngine, parse_object_base, query
from repro.core.terms import Oid, UpdateKind, wrap
from repro.workloads import (
    ancestors_program,
    enterprise_base,
    paper_example_base,
    paper_example_program,
    salary_raise_program,
)
from repro.workloads.genealogy import paper_family_base, true_ancestors

O = Oid
INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


class TestE1SalaryRaiseOnce:
    """Section 2.1: the intuitive raise terminates and applies once."""

    def test_raise_exactly_once(self, engine):
        base = parse_object_base(
            "h.isa -> empl. h.sal -> 250. m.isa -> empl. m.sal -> 300."
        )
        result = engine.apply(salary_raise_program(), base)
        salaries = {a["E"]: a["S"] for a in query(result.new_base, "E.sal -> S")}
        assert salaries == {"h": pytest.approx(275.0), "m": pytest.approx(330.0)}

    def test_scales_to_generated_base(self, engine):
        base = enterprise_base(n_employees=25, seed=11)
        before = {a["E"]: a["S"] for a in query(base, "E.sal -> S")}
        result = engine.apply(salary_raise_program(), base)
        after = {a["E"]: a["S"] for a in query(result.new_base, "E.sal -> S")}
        assert set(before) == set(after)
        for name, old in before.items():
            assert after[name] == pytest.approx(old * 1.1)


class TestE2Figure2:
    """Figure 2: the full version structure of the enterprise update."""

    @pytest.fixture()
    def result(self, tracing_engine):
        return tracing_engine.apply(paper_example_program(), paper_example_base())

    def test_stratification(self, result):
        assert result.stratification.names() == [
            ["rule1", "rule2"], ["rule3"], ["rule4"],
        ]

    def test_version_states_match_figure2(self, result):
        base = result.result_base
        # phil: 4000 -> mod: 4600 -> ins: + hpe
        assert query(base, "phil.sal -> S") == [{"S": 4000}]
        assert query(base, "mod(phil).sal -> S") == [{"S": 4600.0}]
        assert query(base, "ins(mod(phil)).isa -> hpe") == [{}]
        assert query(base, "ins(mod(phil)).isa -> empl") == [{}]
        assert query(base, "ins(mod(phil)).sal -> S") == [{"S": 4600.0}]
        # bob: 4200 -> mod: 4620 -> del: everything gone but exists
        assert query(base, "mod(bob).sal -> S") == [{"S": 4620.0}]
        del_bob = wrap(DEL, wrap(MOD, O("bob")))
        assert base.method_applications(del_bob) == frozenset()
        assert base.version_exists(del_bob)

    def test_final_versions(self, result):
        assert result.final_versions[O("phil")] == wrap(INS, wrap(MOD, O("phil")))
        assert result.final_versions[O("bob")] == wrap(DEL, wrap(MOD, O("bob")))

    def test_new_base(self, result):
        expected = parse_object_base(
            """
            phil.isa -> empl. phil.isa -> hpe. phil.pos -> mgr.
            phil.sal -> 4600.0.
            """
        )
        assert result.new_base == expected

    def test_rule3_does_not_apply_to_phil(self, result):
        # phil has no superior: no del(mod(phil)) version exists
        assert not result.result_base.version_exists(wrap(DEL, wrap(MOD, O("phil"))))

    def test_trace_order(self, result):
        # modifies happen in stratum 0, the delete in stratum 1, the
        # insert in stratum 2 — Figure 2's left-to-right stages
        trace = result.trace
        created_by_stratum = [
            {str(v) for i in s.iterations for v in i.new_versions}
            for s in trace.strata
        ]
        assert created_by_stratum[0] == {"mod(phil)", "mod(bob)"}
        assert created_by_stratum[1] == {"del(mod(bob))"}
        assert created_by_stratum[2] == {"ins(mod(phil))"}


class TestE3Hypothetical:
    """Section 2.3 example 2 + footnote 3."""

    def test_paper_scenario(self, engine, whatif_base, whatif_program):
        result = engine.apply(whatif_program, whatif_base)
        assert result.stratification.names() == [
            ["rule1"], ["rule2"], ["rule3"], ["rule4"],
        ]
        assert query(result.new_base, "peter.richest -> V") == [{"V": "yes"}]
        # original salaries restored
        salaries = {a["E"]: a["S"] for a in query(result.new_base, "E.sal -> S")}
        assert salaries == {"peter": 100, "anna": 120}

    def test_mod_mod_restores_original_state(self, engine, whatif_base, whatif_program):
        outcome = engine.evaluate(whatif_program, whatif_base)
        base = outcome.result_base
        for person in ("peter", "anna"):
            original = query(base, f"{person}.sal -> S")
            reverted = query(base, f"mod(mod({person})).sal -> S")
            assert original == reverted

    def test_negative_verdict(self, engine, whatif_program):
        base = parse_object_base(
            """
            peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 2.
            anna.isa -> empl.   anna.sal -> 120.   anna.factor -> 4.
            """
        )
        result = engine.apply(whatif_program, base)
        assert query(result.new_base, "peter.richest -> V") == [{"V": "no"}]


class TestE4Ancestors:
    """Section 2.3 example 3: recursion with set-valued methods."""

    def test_paper_family(self, engine):
        result = engine.apply(ancestors_program(), paper_family_base())
        amy = {a["P"] for a in query(result.new_base, "amy.anc -> P")}
        assert amy == {"bea", "carl", "dora"}
        bea = {a["P"] for a in query(result.new_base, "bea.anc -> P")}
        assert bea == {"dora"}

    def test_against_ground_truth(self, engine):
        from repro.workloads import genealogy_base

        base = genealogy_base(generations=5, per_generation=4, seed=13)
        result = engine.apply(ancestors_program(), base)
        for person, expected in true_ancestors(base).items():
            got = {a["P"] for a in query(result.new_base, f"{person}.anc -> P")}
            assert got == expected

    def test_single_stratum(self, engine):
        result = engine.apply(ancestors_program(), paper_family_base())
        assert len(result.stratification) == 1


class TestComposition:
    """ob -> ob' -> ob'': update-processes compose (Section 2.2)."""

    def test_two_rounds_of_updates(self, engine):
        base = paper_example_base()
        first = engine.apply(paper_example_program(), base)
        # second round: phil (now 4600) has no boss, gets raised again
        second = engine.apply(paper_example_program(), first.new_base)
        salaries = {a["E"]: a["S"] for a in query(second.new_base, "E.sal -> S")}
        assert salaries == {"phil": pytest.approx(4600 * 1.1 + 200)}
