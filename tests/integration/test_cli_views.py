"""CLI tests for the --views option (derived methods from the shell)."""

import pytest

from repro.cli import main

BASE = """
phil.isa -> empl.  phil.sal -> 4000.
bob.isa -> empl.   bob.sal -> 4200.
"""

VIEWS = """
senior: ?W.senior -> yes <= ?W.sal -> S, S > 4000.
"""

PROGRAM = """
cut: mod[E].sal -> (S, S2) <= E.senior -> yes, E.sal -> S, S2 = S - 500.
"""


@pytest.fixture()
def files(tmp_path):
    paths = {}
    for name, text in (("p.upd", PROGRAM), ("w.ob", BASE), ("v.upd", VIEWS)):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        paths[name] = path
    return paths


def test_apply_with_views(files, capsys):
    code = main([
        "apply",
        "--program", str(files["p.upd"]),
        "--base", str(files["w.ob"]),
        "--views", str(files["v.upd"]),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "bob.sal -> 3700." in out     # the senior got the cut
    assert "phil.sal -> 4000." in out    # phil (not senior) untouched
    assert "senior" not in out           # views are never stored


def test_apply_without_views_rejects_view_reads(files, capsys):
    # without --views the body's `senior` method simply never matches:
    # the rule cannot fire and salaries stay put
    code = main([
        "apply",
        "--program", str(files["p.upd"]),
        "--base", str(files["w.ob"]),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "bob.sal -> 4200." in out


def test_bad_views_file_reports_error(files, tmp_path, capsys):
    bad = tmp_path / "bad.upd"
    bad.write_text("senior: ?W.exists -> X <= ?W.sal -> S.", encoding="utf-8")
    code = main([
        "apply",
        "--program", str(files["p.upd"]),
        "--base", str(files["w.ob"]),
        "--views", str(bad),
    ])
    assert code == 1
    assert "exists" in capsys.readouterr().err
