"""Chaos property suite: replication under degraded links and crashes.

Random commit histories stream to followers through a
:class:`~repro.testing.faults.ChaosProxy` that drops connections at
arbitrary moments, and primaries die abruptly (the server cut with no
shutdown pleasantries — the in-process equivalent of SIGKILL).  The
invariants that must hold through all of it:

* the follower's journal is always a **byte-identical prefix** of the
  primary's, no matter where the link broke;
* a follower killed mid-bootstrap resumes from its torn tail without
  re-downloading the snapshot (satellite: crash-resumable bootstrap);
* after a failover, a replica-set subscription's folded answers equal a
  fresh query — the lagged resync restores exactness;
* no acknowledged fsync-durable commit is ever lost: everything the
  primary acked before death is in the promoted follower's journal.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.api import BackgroundServer
from repro.core.query import fold_answers
from repro.lang.parser import parse_object_base
from repro.replication import Follower
from repro.server.service import StoreService
from repro.storage.serialize import (
    JOURNAL_FILE,
    DurabilityOptions,
    load_store,
)
from repro.testing.faults import ChaosProxy, FaultSpec, InjectedCrash, inject_faults

BASE = "henry.isa -> empl. henry.sal -> 250."
RAISE = "raise: mod[henry].sal -> (S, S2) <= henry.sal -> S, S2 = S + 50."
CUT = "cut: mod[henry].sal -> (S, S2) <= henry.sal -> S, S2 = S - 10."
HIRE = """
    hire_isa: ins[dee].isa -> empl <= henry.isa -> empl.
    hire_sal: ins[dee].sal -> 3000 <= henry.isa -> empl.
"""
PROGRAMS = [RAISE, CUT, HIRE]

seeds = st.integers(0, 10_000)


def wait_for(predicate, *, timeout=10.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(interval)


def journal_text(directory) -> str:
    return (directory / JOURNAL_FILE).read_text()


class _ProxyThread:
    """A ChaosProxy on its own event loop, driveable from test code."""

    def __init__(self, target_path: str, listen_path: str) -> None:
        self.proxy = ChaosProxy(target_path, listen_path)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()
        self._thread.start()
        self._started.wait(5)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.proxy.start())
        self._started.set()
        self.loop.run_forever()

    def drop_connections(self) -> int:
        future = asyncio.run_coroutine_threadsafe(
            self.proxy.drop_connections(), self.loop
        )
        return future.result(5)

    def close(self) -> None:
        future = asyncio.run_coroutine_threadsafe(self.proxy.close(), self.loop)
        try:
            future.result(5)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=5)


@settings(max_examples=5, deadline=None)
@given(seeds)
def test_follower_journal_is_byte_prefix_through_link_chaos(tmp_path_factory, seed):
    """Random commits while the follower's link drops at random points:
    whenever the follower reports catch-up, its journal bytes are exactly
    the primary's."""
    import random

    rng = random.Random(seed)
    tmp_path = tmp_path_factory.mktemp(f"chaos-{seed}")
    service = StoreService.create(
        parse_object_base(BASE), tmp_path / "primary", tag="seed"
    )
    psock = str(tmp_path / "p.sock")
    proxy_sock = str(tmp_path / "proxy.sock")
    with BackgroundServer(service, path=psock) as server:
        proxy = _ProxyThread(psock, proxy_sock)
        fol = Follower(
            tmp_path / "f", f"unix:{proxy_sock}",
            heartbeat_interval=0.1,
            retry=repro.RetryPolicy(attempts=50, base_delay=0.01,
                                    max_delay=0.05),
        ).start()
        try:
            for step in range(rng.randint(4, 10)):
                service.apply(rng.choice(PROGRAMS), tag=f"c-{step}")
                if rng.random() < 0.5:
                    proxy.drop_connections()
                if rng.random() < 0.3:
                    wait_for(
                        lambda: len(fol.service.store) == len(service.store),
                        message=f"catch-up at step {step}",
                    )
                    assert journal_text(tmp_path / "f") == journal_text(
                        tmp_path / "primary"
                    )
            wait_for(
                lambda: len(fol.service.store) == len(service.store),
                message="final catch-up",
            )
            assert journal_text(tmp_path / "f") == journal_text(
                tmp_path / "primary"
            )
        finally:
            fol.close()
            proxy.close()


class TestCrashResumableBootstrap:
    def test_bootstrap_killed_mid_stream_resumes_without_snapshot(
        self, tmp_path
    ):
        """The process dies while appending replicated lines (torn tail on
        disk); the restarted follower repairs the tail and resumes the sync
        at the first missing index — zero snapshots re-downloaded."""
        service = StoreService.create(
            parse_object_base(BASE), tmp_path / "primary", tag="seed"
        )
        for i in range(6):
            service.apply(RAISE, tag=f"pre-{i}")
        psock = str(tmp_path / "p.sock")
        with BackgroundServer(service, path=psock):
            # first attempt: die mid-append of the 4th replicated line,
            # leaving a torn tail behind (7 bytes of it)
            with inject_faults(
                FaultSpec("append", "torn", at=3, keep_bytes=7,
                          path_glob=JOURNAL_FILE)
            ):
                with pytest.raises(InjectedCrash):
                    Follower(tmp_path / "f", f"unix:{psock}").start()
            # the torn journal is on disk with 3 whole lines + a fragment
            assert (tmp_path / "f" / JOURNAL_FILE).exists()
            # second attempt: clean run resumes from the repaired tail
            fol = Follower(tmp_path / "f", f"unix:{psock}").start()
            try:
                assert fol.last_sync_from == 3, (
                    "bootstrap did not resume from the torn tail"
                )
                assert fol.bootstrap_snapshots == 0, (
                    "resume re-downloaded a snapshot"
                )
                wait_for(
                    lambda: len(fol.service.store) == len(service.store)
                )
                assert journal_text(tmp_path / "f") == journal_text(
                    tmp_path / "primary"
                )
            finally:
                fol.close()

    def test_fragment_only_journal_falls_back_to_full_bootstrap(self, tmp_path):
        """Death before the *first* replicated line became durable leaves
        nothing tail repair can save; the replica rebuilds from scratch
        instead of refusing to start."""
        service = StoreService.create(
            parse_object_base(BASE), tmp_path / "primary", tag="seed"
        )
        service.apply(RAISE, tag="r1")
        psock = str(tmp_path / "p.sock")
        with BackgroundServer(service, path=psock):
            with inject_faults(
                FaultSpec("append", "torn", at=0, keep_bytes=5,
                          path_glob=JOURNAL_FILE)
            ):
                with pytest.raises(InjectedCrash):
                    Follower(tmp_path / "f", f"unix:{psock}").start()
            fol = Follower(tmp_path / "f", f"unix:{psock}").start()
            try:
                assert fol.bootstrap_rebuilds == 1
                assert fol.last_sync_from == 0
                wait_for(
                    lambda: len(fol.service.store) == len(service.store)
                )
                assert journal_text(tmp_path / "f") == journal_text(
                    tmp_path / "primary"
                )
            finally:
                fol.close()

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 60))
    def test_any_torn_point_resumes_cleanly(
        self, tmp_path_factory, crash_line, keep_bytes
    ):
        """Hypothesis sweeps the crash point: whichever replicated line the
        death tears, the resumed bootstrap never re-fetches the snapshot
        and converges to byte-identical journals."""
        tmp_path = tmp_path_factory.mktemp(f"torn-{crash_line}-{keep_bytes}")
        service = StoreService.create(
            parse_object_base(BASE), tmp_path / "primary", tag="seed"
        )
        for i in range(5):
            service.apply(RAISE if i % 2 else CUT, tag=f"pre-{i}")
        psock = str(tmp_path / "p.sock")
        with BackgroundServer(service, path=psock):
            with inject_faults(
                FaultSpec("append", "torn", at=crash_line,
                          keep_bytes=keep_bytes, path_glob=JOURNAL_FILE)
            ):
                with pytest.raises(InjectedCrash):
                    Follower(tmp_path / "f", f"unix:{psock}").start()
            fol = Follower(tmp_path / "f", f"unix:{psock}").start()
            try:
                assert fol.bootstrap_snapshots == 0
                assert fol.last_sync_from >= crash_line
                wait_for(
                    lambda: len(fol.service.store) == len(service.store)
                )
                assert journal_text(tmp_path / "f") == journal_text(
                    tmp_path / "primary"
                )
                # and the journal replays to a consistent store
                reloaded = load_store(tmp_path / "f")
                assert len(reloaded) == len(service.store)
            finally:
                fol.close()


@settings(max_examples=4, deadline=None)
@given(seeds)
def test_no_acked_durable_commit_lost_across_failover(tmp_path_factory, seed):
    """Every commit the fsync-durable primary acknowledged before dying is
    present (byte-identical) in the promoted follower's journal, and the
    folded subscription state equals a fresh query afterwards."""
    import random

    rng = random.Random(seed)
    tmp_path = tmp_path_factory.mktemp(f"failover-{seed}")
    service = StoreService.create(
        parse_object_base(BASE), tmp_path / "primary", tag="seed",
        durability=DurabilityOptions(mode="fsync"),
    )
    psock = str(tmp_path / "p.sock")
    server = BackgroundServer(service, path=psock)
    fol = Follower(
        tmp_path / "f", f"unix:{psock}", heartbeat_interval=0.1,
        durability=DurabilityOptions(mode="fsync"),
    ).start()
    fconn = repro.connect(fol.service)
    stream = fconn.subscribe("E.sal -> S")
    folded = list(stream.answers)
    try:
        acked = []
        for step in range(rng.randint(3, 8)):
            revision = service.apply(rng.choice(PROGRAMS), tag=f"c-{step}")
            acked.append(revision.revision.index)
        wait_for(lambda: len(fol.service.store) == len(service.store))
        acked_text = journal_text(tmp_path / "primary")
        server.close()  # dies with every ack already durable

        fol.promote()
        # the acked history survives as a byte prefix of the new primary's
        promoted_text = journal_text(tmp_path / "f")
        assert promoted_text.startswith(acked_text)
        assert len(fol.service.store) - 1 >= max(acked)

        # life goes on at the promoted primary; the subscription (served
        # by the follower's own subscription manager) keeps its exactness
        fconn.apply(RAISE, tag="after-failover")
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            delta = stream.next(timeout=0.2)
            if delta is None:
                if folded == fconn.query("E.sal -> S"):
                    break
                continue
            if delta.lagged:
                folded = list(delta.answers)
            else:
                folded = fold_answers(
                    folded,
                    [dict(row) for row in delta.added],
                    [dict(row) for row in delta.removed],
                )
        assert sorted(folded, key=str) == sorted(
            fconn.query("E.sal -> S"), key=str
        )
    finally:
        stream.close()
        fconn.close()
        fol.close()
        server.close()
