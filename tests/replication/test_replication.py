"""Replicated serving: followers, promotion, epoch fencing, replica sets.

The contract under test, layer by layer:

* **storage** — the fencing epoch rides inside every journal line's CRC
  envelope, survives reload and compaction, and ``verify_journal`` flags
  an epoch that regresses mid-chain;
* **follower** — a :class:`~repro.replication.Follower` bootstraps from a
  primary and keeps its journal a **byte-identical prefix** through live
  tailing, serves reads (and read-your-writes ``min_revision`` tokens)
  while refusing writes;
* **promotion** — :meth:`Follower.promote` bumps the epoch past
  everything seen and fences the old primary, whose writes then raise the
  retryable :class:`StaleEpochError`;
* **replset** — ``repro.connect("replset:...")`` fails reads over
  immediately and follows the primary across a promotion;
* **supervisor** — :class:`~repro.replication.ReplicaSet` detects a dead
  primary and promotes the freshest follower.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.api import BackgroundServer
from repro.lang.parser import parse_object_base
from repro.replication import Follower, ReplicaSet, hub_for
from repro.server.errors import NotPrimaryError, StaleEpochError
from repro.server.service import StoreService
from repro.storage.serialize import (
    JOURNAL_FILE,
    compact_journal,
    load_store,
    verify_journal,
)

BASE = "henry.isa -> empl. henry.sal -> 250."
RAISE = "raise: mod[henry].sal -> (S, S2) <= henry.sal -> S, S2 = S + 50."

FAST = dict(heartbeat_interval=0.2)


def wait_for(predicate, *, timeout=5.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(interval)


@pytest.fixture()
def primary(tmp_path):
    service = StoreService.create(
        parse_object_base(BASE), tmp_path / "primary", tag="seed"
    )
    socket_path = str(tmp_path / "primary.sock")
    with BackgroundServer(service, path=socket_path) as server:
        yield service, server, tmp_path


def journal_text(directory) -> str:
    return (directory / JOURNAL_FILE).read_text()


class TestEpochInJournal:
    def test_epoch_zero_leaves_lines_unchanged(self, tmp_path):
        service = StoreService.create(
            parse_object_base(BASE), tmp_path / "j", tag="seed"
        )
        service.apply(RAISE, tag="r1")
        assert '"epoch"' not in journal_text(tmp_path / "j")

    def test_promotion_epoch_round_trips_through_reload(self, tmp_path):
        service = StoreService.create(
            parse_object_base(BASE), tmp_path / "j", tag="seed"
        )
        service.promote(epoch=7, journal_dir=tmp_path / "j")
        service.apply(RAISE, tag="promoted-write")
        assert '"epoch": 7' in journal_text(tmp_path / "j")
        reloaded = load_store(tmp_path / "j")
        assert reloaded.epoch == 7
        assert reloaded.head.epoch == 7

    def test_epoch_survives_compaction(self, tmp_path):
        service = StoreService.create(
            parse_object_base(BASE), tmp_path / "j", tag="seed"
        )
        service.apply(RAISE, tag="r1")
        service.promote(epoch=3, journal_dir=tmp_path / "j")
        service.apply(RAISE, tag="r2")
        compacted = compact_journal(tmp_path / "j", snapshot_interval=1)
        assert compacted.epoch == 3
        report = verify_journal(tmp_path / "j")
        assert report["ok"], report["problems"]
        assert report["max_epoch"] == 3

    def test_verify_flags_epoch_regression(self, tmp_path):
        service = StoreService.create(
            parse_object_base(BASE), tmp_path / "j", tag="seed"
        )
        service.promote(epoch=5, journal_dir=tmp_path / "j")
        service.apply(RAISE, tag="fenced-write")
        service.apply(RAISE, tag="fenced-write-2")
        # forge a continuation stamped with an older epoch: rewrite the
        # last line's epoch and refresh its CRC (a zombie's history)
        import json

        from repro.storage.serialize import _record_crc

        journal = tmp_path / "j" / JOURNAL_FILE
        lines = journal.read_text().rstrip("\n").split("\n")
        record = json.loads(lines[-1])
        record["epoch"] = 2
        record["crc"] = _record_crc(record)
        lines[-1] = json.dumps(record, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        report = verify_journal(tmp_path / "j")
        assert not report["ok"]
        assert any("epoch" in p["error"] for p in report["problems"])


class TestFollower:
    def test_bootstrap_and_tail_keep_byte_identical_prefix(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        for i in range(4):
            conn.apply(RAISE, tag=f"pre-{i}")
        with Follower(tmp_path / "f", server.address, **FAST) as fol:
            fol.start()
            assert journal_text(tmp_path / "f") == journal_text(
                tmp_path / "primary"
            )
            conn.apply(RAISE, tag="live")
            wait_for(
                lambda: len(fol.service.store) == len(service.store),
                message="follower catch-up",
            )
            assert journal_text(tmp_path / "f") == journal_text(
                tmp_path / "primary"
            )
        conn.close()

    def test_follower_serves_reads_and_rejects_writes(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        conn.apply(RAISE, tag="r1")
        with Follower(tmp_path / "f", server.address, **FAST) as fol:
            fol.start()
            fconn = repro.connect(fol.service)
            assert fconn.query("henry.sal -> S") == [{"S": 300}]
            with pytest.raises(NotPrimaryError) as error:
                fconn.apply(RAISE)
            assert error.value.retryable
            stats = fconn.stats()["replication"]
            assert stats["role"] == "follower"
            assert stats["lag"] == 0
            assert stats["primary"] == server.address
            fconn.close()
        conn.close()

    def test_min_revision_read_your_writes(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        with Follower(tmp_path / "f", server.address, **FAST) as fol:
            fol.start()
            fconn = repro.connect(fol.service)
            head = conn.apply(RAISE, tag="ryw")
            # the token forces the replica to wait until replication
            # reaches the writer's revision, so the read sees the write
            assert fconn.query(
                "henry.sal -> S", min_revision=head.index
            ) == [{"S": 300}]
            fconn.close()
        conn.close()

    def test_served_follower_answers_min_revision_over_the_wire(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        fol = Follower(tmp_path / "f", server.address, **FAST).start()
        fsock = str(tmp_path / "f.sock")
        try:
            with BackgroundServer(fol.service, path=fsock):
                head = conn.apply(RAISE, tag="ryw-wire")
                with repro.connect(f"unix:{fsock}") as fconn:
                    assert fconn.query(
                        "henry.sal -> S", min_revision=head.index
                    ) == [{"S": 300}]
        finally:
            fol.close()
            conn.close()

    def test_follower_subscription_fires_on_replicated_commit(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        with Follower(tmp_path / "f", server.address, **FAST) as fol:
            fol.start()
            fconn = repro.connect(fol.service)
            stream = fconn.subscribe("henry.sal -> S")
            assert stream.answers == [{"S": 250}]
            conn.apply(RAISE, tag="watched")
            delta = stream.next(timeout=5.0)
            assert delta is not None
            assert delta.added == ({"S": 300},)
            stream.close()
            fconn.close()
        conn.close()

    def test_primary_counts_followers(self, primary):
        service, server, tmp_path = primary
        with Follower(tmp_path / "f", server.address, **FAST) as fol:
            fol.start()
            wait_for(
                lambda: service.stats()["replication"]["followers"] == 1,
                message="follower registration",
            )
        wait_for(
            lambda: service.stats()["replication"]["followers"] == 0,
            message="follower deregistration",
        )

    def test_hub_requires_a_journal(self):
        from repro.core.objectbase import ObjectBase
        from repro.core.errors import ReproError
        from repro.storage.history import VersionedStore

        service = StoreService(VersionedStore(ObjectBase()))
        with pytest.raises(ReproError):
            hub_for(service).sync(0)


class TestPromotionAndFencing:
    def test_promote_bumps_epoch_and_enables_writes(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        conn.apply(RAISE, tag="r1")
        fol = Follower(tmp_path / "f", server.address, **FAST).start()
        try:
            wait_for(lambda: len(fol.service.store) == len(service.store))
            epoch = fol.promote()
            assert epoch == 1
            assert fol.promoted
            fconn = repro.connect(fol.service)
            fconn.apply(RAISE, tag="promoted-write")
            assert '"epoch": 1' in journal_text(tmp_path / "f")
            assert fconn.query("henry.sal -> S") == [{"S": 350}]
            fconn.close()
        finally:
            fol.close()
            conn.close()

    def test_promote_is_idempotent(self, primary):
        service, server, tmp_path = primary
        fol = Follower(tmp_path / "f", server.address, **FAST).start()
        try:
            assert fol.promote() == 1
            assert fol.promote() == 1
        finally:
            fol.close()

    def test_fenced_primary_rejects_zombie_writes(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        fol = Follower(tmp_path / "f", server.address, **FAST).start()
        try:
            wait_for(lambda: len(fol.service.store) == len(service.store))
            new_epoch = fol.promote()
            # the fire-and-forget fence arrives over the wire; wait for it
            wait_for(
                lambda: service.stats()["replication"]["fenced_epoch"]
                >= new_epoch,
                message="old primary fenced",
            )
            with pytest.raises(StaleEpochError) as error:
                conn.apply(RAISE, tag="zombie")
            assert error.value.retryable
            assert error.value.required_epoch == new_epoch
            # no zombie line reached the old journal
            assert '"tag": "zombie"' not in journal_text(tmp_path / "primary")
        finally:
            fol.close()
            conn.close()

    def test_epoch_stamped_commits_carry_epoch_on_the_wire(self, primary):
        service, server, tmp_path = primary
        service.promote(epoch=4, journal_dir=tmp_path / "primary")
        with repro.connect(server.address) as conn:
            assert conn.call("ping")["epoch"] == 4
            response = conn.call("apply", program=RAISE, tag="stamped")
            assert response["epoch"] == 4

    def test_client_epoch_floor_rejected_below_fence(self, primary):
        service, server, tmp_path = primary
        service.fence(9)
        with repro.connect(server.address) as conn:
            with pytest.raises(StaleEpochError):
                conn.call("apply", program=RAISE, tag="stale", epoch=3)

    def test_follower_refuses_a_fenced_primarys_line(self, primary):
        """A replica that has seen epoch N never adopts a line below it:
        the validation gate, independent of the wire."""
        service, server, tmp_path = primary
        fol = Follower(tmp_path / "f", server.address, **FAST).start()
        try:
            fol.service.store.epoch = 2
            from repro.core.errors import ReproError
            from repro.storage.serialize import format_revision_line

            service.apply(RAISE, tag="old-epoch")  # epoch 0 line
            store = service.store
            line = format_revision_line(
                store.head, store.has_snapshot(store.head.index)
            )
            with pytest.raises(ReproError, match="refusing a fenced"):
                fol._validated(
                    {"line": line}, expected=len(fol.service.store),
                    store=fol.service.store,
                )
        finally:
            fol.close()


class TestReplicaSetConnection:
    @pytest.fixture()
    def cluster(self, primary):
        service, server, tmp_path = primary
        f1 = Follower(tmp_path / "f1", server.address, **FAST).start()
        f2 = Follower(tmp_path / "f2", server.address, **FAST).start()
        s1 = BackgroundServer(f1.service, path=str(tmp_path / "f1.sock"))
        s2 = BackgroundServer(f2.service, path=str(tmp_path / "f2.sock"))
        targets = [
            server.address,
            f"unix:{tmp_path / 'f1.sock'}",
            f"unix:{tmp_path / 'f2.sock'}",
        ]
        try:
            yield service, server, (f1, f2), (s1, s2), targets, tmp_path
        finally:
            f1.close()
            f2.close()
            s1.close()
            s2.close()

    def test_replset_reads_and_writes(self, cluster):
        service, server, followers, servers, targets, tmp_path = cluster
        conn = repro.connect("replset:" + ",".join(targets))
        revision = conn.apply(RAISE, tag="via-replset")
        assert conn.query(
            "henry.sal -> S", min_revision=revision.index
        ) == [{"S": 300}]
        assert conn.stats()["replset"]["primary"] == targets[0]
        conn.close()

    def test_replset_rejects_seed_kwargs(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            repro.connect("replset:unix:/nowhere.sock", base=BASE)
        with pytest.raises(ReproError):
            repro.connect("replset:unix:/nowhere.sock", readonly=True)

    def test_reads_fail_over_when_primary_dies(self, cluster):
        service, server, followers, servers, targets, tmp_path = cluster
        conn = repro.connect("replset:" + ",".join(targets))
        conn.apply(RAISE, tag="before-death")
        wait_for(
            lambda: all(
                len(f.service.store) == len(service.store) for f in followers
            )
        )
        server.close()  # abrupt: no shutdown pleasantries
        assert conn.query("henry.sal -> S") == [{"S": 300}]
        assert conn.failovers >= 1
        conn.close()

    def test_mutations_follow_a_promotion(self, cluster):
        service, server, followers, servers, targets, tmp_path = cluster
        conn = repro.connect("replset:" + ",".join(targets))
        conn.apply(RAISE, tag="before")
        wait_for(
            lambda: all(
                len(f.service.store) == len(service.store) for f in followers
            )
        )
        server.close()
        followers[0].promote()
        revision = conn.apply(RAISE, tag="after-failover")
        assert conn.epoch >= 1
        assert conn.query(
            "henry.sal -> S", min_revision=revision.index
        ) == [{"S": 350}]
        conn.close()

    def test_subscription_survives_member_death(self, cluster):
        service, server, followers, servers, targets, tmp_path = cluster
        conn = repro.connect("replset:" + ",".join(targets))
        stream = conn.subscribe("henry.sal -> S")
        assert stream.answers == [{"S": 250}]
        conn.apply(RAISE, tag="first")
        delta = stream.next(timeout=5.0)
        assert delta is not None and delta.added == ({"S": 300},)
        wait_for(
            lambda: all(
                len(f.service.store) == len(service.store) for f in followers
            )
        )
        server.close()
        followers[0].promote()
        # the stream re-homes to a live member; the next commit flows
        fconn = repro.connect(followers[0].service)
        fconn.apply(RAISE, tag="after")
        deadline = time.monotonic() + 10
        folded = list(stream.answers)
        saw_final = False
        while time.monotonic() < deadline:
            delta = stream.next(timeout=0.5)
            if delta is None:
                continue
            # a lagged (coalesced) delta folds exactly like a commit diff:
            # its (added, removed) was computed against the stream's state
            folded = _fold(folded, delta)
            if folded == [{"S": 350}]:
                saw_final = True
                break
        assert saw_final, f"stream never converged: {folded}"
        assert folded == list(stream.answers)  # external fold == internal
        stream.close()
        fconn.close()
        conn.close()


def _fold(state, delta):
    rows = [row for row in state if row not in list(delta.removed)]
    rows.extend(delta.added)
    return rows


class TestSupervisor:
    def test_supervisor_promotes_freshest_follower(self, primary):
        service, server, tmp_path = primary
        conn = repro.connect(server.address)
        f1 = Follower(tmp_path / "f1", server.address, **FAST).start()
        f2 = Follower(tmp_path / "f2", server.address, **FAST).start()
        s1 = BackgroundServer(f1.service, path=str(tmp_path / "f1.sock"))
        s2 = BackgroundServer(f2.service, path=str(tmp_path / "f2.sock"))
        try:
            conn.apply(RAISE, tag="r1")
            wait_for(
                lambda: len(f1.service.store) == len(service.store)
                and len(f2.service.store) == len(service.store)
            )
            supervisor = ReplicaSet(
                server.address,
                [f"unix:{tmp_path / 'f1.sock'}", f"unix:{tmp_path / 'f2.sock'}"],
                interval=0.05, misses=2,
            )
            assert supervisor.poll_once()["alive"]
            server.close()
            promoted = None
            for _ in range(20):
                state = supervisor.poll_once()
                if state["promoted"]:
                    promoted = state["promoted"]
                    break
                time.sleep(0.05)
            assert promoted is not None
            assert supervisor.epoch == 1
            assert supervisor.primary == promoted
            assert len(supervisor.followers) == 1
            # the promoted node takes writes now
            with repro.connect(promoted) as pconn:
                pconn.apply(RAISE, tag="post")
                assert pconn.stats()["replication"]["role"] == "primary"
            supervisor.close()
        finally:
            f1.close()
            f2.close()
            s1.close()
            s2.close()
            conn.close()

    def test_supervisor_needs_followers(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            ReplicaSet("unix:/p.sock", [])
