"""Tests for the UpdateEngine facade and the query API."""

import pytest

from repro import (
    UpdateEngine,
    method_results,
    parse_object_base,
    parse_program,
    query,
    result_value,
)
from repro.core.terms import Oid, UpdateKind, wrap

O = Oid


class TestEngineFacade:
    def test_apply_returns_everything(self, engine, paper_base, paper_program):
        result = engine.apply(paper_program, paper_base)
        assert result.new_base is not None
        assert result.result_base is not None
        assert result.final_versions[O("phil")] == wrap(
            UpdateKind.INSERT, wrap(UpdateKind.MODIFY, O("phil"))
        )
        assert len(result.stratification) == 3
        assert result.iterations > 0

    def test_evaluate_skips_new_base(self, engine, paper_base, paper_program):
        outcome = engine.evaluate(paper_program, paper_base)
        # result(P) retains the original facts
        assert query(outcome.result_base, "phil.sal -> S")[0]["S"] == 4000

    def test_engine_reusable(self, engine, paper_base, paper_program):
        first = engine.apply(paper_program, paper_base)
        second = engine.apply(paper_program, paper_base)
        assert first.new_base == second.new_base

    def test_option_passthrough(self):
        engine = UpdateEngine(max_iterations_per_stratum=7)
        assert engine.options.max_iterations_per_stratum == 7
        derived = engine.with_options(collect_trace=True)
        assert derived.options.max_iterations_per_stratum == 7
        assert derived.options.collect_trace


class TestCompiledPrograms:
    def test_compile_returns_cached_artifact(self, engine, paper_program):
        first = engine.compile(paper_program)
        assert engine.compile(paper_program) is first
        assert len(first.stratification) == 3

    def test_cache_hits_structurally_equal_programs(self, engine):
        text = "r: ins[a].m -> b <= a.t -> yes."
        assert engine.compile(parse_program(text)) is engine.compile(
            parse_program(text)
        )

    def test_compiled_reuse_gives_same_results(self, engine, paper_base, paper_program):
        cold = UpdateEngine(compile_cache_size=0).apply(paper_program, paper_base)
        engine.compile(paper_program)  # warm
        warm = engine.apply(paper_program, paper_base)
        assert warm.new_base == cold.new_base
        assert warm.result_base == cold.result_base

    def test_lru_eviction(self):
        engine = UpdateEngine(compile_cache_size=1)
        first_program = parse_program("r: ins[a].m -> b <= a.t -> yes.")
        second_program = parse_program("r: ins[a].n -> b <= a.t -> yes.")
        first = engine.compile(first_program)
        engine.compile(second_program)  # evicts first
        assert engine.compile(first_program) is not first

    def test_compile_rejects_invalid_programs_eagerly(self, engine):
        from repro.core.errors import SafetyError

        unsafe = parse_program("r: ins[a].m -> X <= a.t -> yes.")
        with pytest.raises(SafetyError):
            engine.compile(unsafe)

    def test_with_options_gets_a_fresh_cache(self, engine, paper_program):
        compiled = engine.compile(paper_program)
        derived = engine.with_options(check_safety=False)
        assert derived.compile(paper_program) is not compiled


class TestQueryApi:
    BASE = parse_object_base(
        """
        phil.isa -> empl.  phil.sal -> 4000.
        bob.isa -> empl.   bob.sal -> 4200.  bob.boss -> phil.
        """
    )

    def test_query_bindings_sorted(self):
        answers = query(self.BASE, "E.isa -> empl, E.sal -> S")
        assert answers == [
            {"E": "bob", "S": 4200},
            {"E": "phil", "S": 4000},
        ]

    def test_ground_query_yields_empty_binding(self):
        assert query(self.BASE, "phil.isa -> empl") == [{}]
        assert query(self.BASE, "phil.isa -> mgr") == []

    def test_query_with_negation_and_comparison(self):
        answers = query(self.BASE, "E.sal -> S, S > 4100, not E.boss -> E")
        assert answers == [{"E": "bob", "S": 4200}]

    def test_method_results_set_valued(self):
        base = parse_object_base("a.tag -> x. a.tag -> y.")
        assert method_results(base, "a", "tag") == {"x", "y"}

    def test_result_value_unique(self):
        assert result_value(self.BASE, "phil", "sal") == 4000
        assert result_value(self.BASE, "phil", "nothing") is None

    def test_result_value_rejects_set_valued(self):
        base = parse_object_base("a.tag -> x. a.tag -> y.")
        with pytest.raises(ValueError):
            result_value(base, "a", "tag")

    def test_query_version_hosts(self, engine, paper_base, paper_program):
        result = engine.apply(paper_program, paper_base)
        answers = query(result.result_base, "mod(E).sal -> S, S > 4500")
        assert {a["E"] for a in answers} == {"phil", "bob"}


class TestTraceRendering:
    def test_figure2_trace_mentions_versions(
        self, tracing_engine, paper_base, paper_program
    ):
        result = tracing_engine.apply(paper_program, paper_base)
        text = result.trace.render(objects=(O("phil"), O("bob")))
        assert "mod(phil): " in text
        assert "ins(mod(phil)): " in text
        assert "del(mod(bob)): " in text
        assert "rule3" in text

    def test_trace_statistics(self, tracing_engine, paper_base, paper_program):
        result = tracing_engine.apply(paper_program, paper_base)
        trace = result.trace
        assert trace.total_iterations >= len(result.stratification)
        created = {str(v) for v in trace.versions_created()}
        assert created == {
            "mod(phil)", "mod(bob)", "del(mod(bob))", "ins(mod(phil))"
        }
        assert trace.total_copies == 4  # one lazy copy per created version
