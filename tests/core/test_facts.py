"""Unit tests for facts (ground version-terms) and exists bookkeeping."""

import pytest

from repro.core.errors import TermError
from repro.core.facts import EXISTS, Fact, exists_fact, make_fact, method_key
from repro.core.terms import Oid, UpdateKind, Var, wrap


class TestMakeFact:
    def test_simple(self):
        fact = make_fact(Oid("henry"), "salary", (), Oid(250))
        assert fact.host == Oid("henry")
        assert fact.method == "salary"
        assert fact.result == Oid(250)
        assert str(fact) == "henry.salary -> 250"

    def test_with_arguments(self):
        fact = make_fact(Oid("g"), "dist", (Oid("a"), Oid("b")), Oid(7))
        assert fact.args == (Oid("a"), Oid("b"))
        assert str(fact) == "g.dist@a,b -> 7"

    def test_version_hosts_allowed(self):
        fact = make_fact(wrap(UpdateKind.MODIFY, Oid("henry")), "salary", (), Oid(275))
        assert str(fact.host) == "mod(henry)"

    def test_non_ground_host_rejected(self):
        with pytest.raises(TermError):
            make_fact(Var("X"), "m", (), Oid(1))
        with pytest.raises(TermError):
            make_fact(wrap(UpdateKind.INSERT, Var("X")), "m", (), Oid(1))

    def test_footnote1_result_positions_are_oids(self):
        # versions are not allowed on argument/result positions
        with pytest.raises(TermError):
            make_fact(Oid("o"), "m", (), wrap(UpdateKind.INSERT, Oid("x")))  # type: ignore[arg-type]
        with pytest.raises(TermError):
            make_fact(Oid("o"), "m", (Var("A"),), Oid(1))  # type: ignore[arg-type]

    def test_empty_method_rejected(self):
        with pytest.raises(TermError):
            make_fact(Oid("o"), "", (), Oid(1))


class TestExistsFact:
    def test_base_object(self):
        fact = exists_fact(Oid("o"))
        assert fact == Fact(Oid("o"), EXISTS, (), Oid("o"))

    def test_version_points_to_object(self):
        version = wrap(UpdateKind.DELETE, wrap(UpdateKind.MODIFY, Oid("bob")))
        fact = exists_fact(version)
        # the result names the underlying *object*, not the version
        assert fact.result == Oid("bob")
        assert fact.host == version


class TestHelpers:
    def test_application_payload(self):
        fact = make_fact(Oid("o"), "m", (Oid(1),), Oid(2))
        assert fact.application == ("m", (Oid(1),), Oid(2))

    def test_method_key(self):
        assert method_key("sal", 0) == ("sal", 0)
