"""Unit and property tests for arithmetic expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import BuiltinError, TermError
from repro.core.exprs import BinOp, Neg, evaluate_expr, expr_variables
from repro.core.terms import Oid, Var


class TestConstruction:
    def test_unknown_operator(self):
        with pytest.raises(TermError):
            BinOp("%", Oid(1), Oid(2))

    def test_variables(self):
        expr = BinOp("+", BinOp("*", Var("S"), Oid(1.1)), Var("B"))
        assert expr_variables(expr) == {Var("S"), Var("B")}
        assert expr_variables(Neg(Var("X"))) == {Var("X")}
        assert expr_variables(Oid(3)) == frozenset()


class TestEvaluation:
    def test_salary_rule_arithmetic(self):
        # S' = S * 1.1 + 200 with S = 4000 (rule 1 of Section 2.3)
        expr = BinOp("+", BinOp("*", Var("S"), Oid(1.1)), Oid(200))
        value = evaluate_expr(expr, {Var("S"): Oid(4000)})
        assert value.value == pytest.approx(4600.0)

    def test_integer_division_stays_exact(self):
        assert evaluate_expr(BinOp("/", Oid(6), Oid(2)), {}).value == 3
        assert isinstance(evaluate_expr(BinOp("/", Oid(6), Oid(2)), {}).value, int)
        assert evaluate_expr(BinOp("/", Oid(7), Oid(2)), {}).value == 3.5

    def test_negation(self):
        assert evaluate_expr(Neg(Oid(5)), {}).value == -5

    def test_subtraction(self):
        assert evaluate_expr(BinOp("-", Oid(10), Oid(4)), {}).value == 6

    def test_symbolic_oid_passthrough(self):
        # a bare term evaluates to itself, numeric or not (used by '=')
        assert evaluate_expr(Oid("empl"), {}) == Oid("empl")
        assert evaluate_expr(Var("X"), {Var("X"): Oid("empl")}) == Oid("empl")

    def test_unbound_variable(self):
        with pytest.raises(BuiltinError):
            evaluate_expr(Var("S"), {})

    def test_symbolic_in_arithmetic(self):
        with pytest.raises(BuiltinError):
            evaluate_expr(BinOp("+", Oid("empl"), Oid(1)), {})

    def test_division_by_zero(self):
        with pytest.raises(BuiltinError):
            evaluate_expr(BinOp("/", Oid(1), Oid(0)), {})

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_addition_matches_python(self, a, b):
        assert evaluate_expr(BinOp("+", Oid(a), Oid(b)), {}).value == a + b

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_multiplication_matches_python(self, a, b):
        assert evaluate_expr(BinOp("*", Oid(a), Oid(b)), {}).value == a * b

    @given(st.integers(-100, 100))
    def test_double_negation(self, a):
        assert evaluate_expr(Neg(Neg(Oid(a))), {}).value == a
