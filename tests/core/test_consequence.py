"""Unit tests for the 3-step T_P operator (Section 3)."""

from repro import parse_object_base, parse_program
from repro.core.consequence import apply_tp, tp_step
from repro.core.facts import EXISTS, Fact, exists_fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, UpdateKind, wrap

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY
O = Oid


def step(program_text, base):
    program = parse_program(program_text)
    return tp_step(list(program), base, collect_fired=True)


class TestStepOne:
    def test_head_truth_filters(self):
        # a delete of information that does not exist must not enter T1
        base = parse_object_base("a.m -> 1.")
        result = step("d: del[X].m -> 2 <= X.m -> V.", base)
        assert result.pending.is_empty()

    def test_insert_enters_unconditionally(self):
        base = parse_object_base("a.m -> 1.")
        result = step("i: ins[X].t -> yes <= X.m -> V.", base)
        assert result.pending.inserts == {
            wrap(INS, O("a")): {("t", (), O("yes"))}
        }

    def test_delete_all_expansion(self):
        base = parse_object_base("a.m -> 1. a.n -> 2.")
        result = step("d: del[X].* <= X.m -> 1.", base)
        deletes = result.pending.deletes[wrap(DEL, O("a"))]
        assert deletes == {("m", (), O(1)), ("n", (), O(2))}

    def test_delete_all_never_touches_exists(self):
        base = parse_object_base("a.m -> 1.")
        result = step("d: del[X].* <= X.m -> 1.", base)
        for method, _args, _result in result.pending.deletes[wrap(DEL, O("a"))]:
            assert method != EXISTS

    def test_fired_instances_recorded(self):
        base = parse_object_base("a.m -> 1. b.m -> 2.")
        result = step("i: ins[X].t -> yes <= X.m -> V.", base)
        assert len(result.fired) == 2
        assert {f.rule_name for f in result.fired} == {"i"}


class TestStepTwo:
    def test_fresh_version_copies_v_star(self):
        base = parse_object_base("a.m -> 1. a.n -> 2.")
        result = step("i: ins[X].t -> yes <= X.m -> 1.", base)
        state = result.new_states[wrap(INS, O("a"))]
        assert Fact(wrap(INS, O("a")), "m", (), O(1)) in state
        assert Fact(wrap(INS, O("a")), "n", (), O(2)) in state

    def test_copy_includes_exists(self):
        base = parse_object_base("a.m -> 1.")
        result = step("i: ins[X].t -> yes <= X.m -> 1.", base)
        assert exists_fact(wrap(INS, O("a"))) in result.new_states[wrap(INS, O("a"))]

    def test_active_version_copies_itself(self):
        base = parse_object_base("a.m -> 1.")
        version = wrap(INS, O("a"))
        base.add(exists_fact(version))
        base.add(Fact(version, "t", (), O("old")))
        result = step("i: ins[X].t -> yes <= X.m -> 1.", base)
        state = result.new_states[version]
        # the active version keeps its own accumulated state...
        assert Fact(version, "t", (), O("old")) in state
        # ...and does NOT re-copy from v* = a
        assert Fact(version, "m", (), O(1)) not in state

    def test_copy_counter(self):
        base = parse_object_base("a.m -> 1.")
        result = step("i: ins[X].t -> yes <= X.m -> 1.", base)
        assert result.copies == 1  # fresh copy of a's state

    def test_skipped_level_copy(self):
        # del[mod(a)] with no mod version: copy from v* = a
        base = parse_object_base("a.m -> 1. a.n -> 2.")
        result = step("d: del[mod(X)].m -> 1 <= X.m -> 1.", base)
        version = wrap(DEL, wrap(MOD, O("a")))
        state = result.new_states[version]
        assert Fact(version, "n", (), O(2)) in state
        assert Fact(version, "m", (), O(1)) not in state  # deleted


class TestStepThree:
    def test_insert_union(self):
        base = parse_object_base("a.m -> 1.")
        result = step("i: ins[X].t -> yes <= X.m -> 1.", base)
        state = result.new_states[wrap(INS, O("a"))]
        assert Fact(wrap(INS, O("a")), "t", (), O("yes")) in state
        assert Fact(wrap(INS, O("a")), "m", (), O(1)) in state

    def test_delete_subtracts(self):
        base = parse_object_base("a.m -> 1. a.m -> 2.")
        result = step("d: del[X].m -> 1 <= X.m -> 1.", base)
        state = result.new_states[wrap(DEL, O("a"))]
        assert Fact(wrap(DEL, O("a")), "m", (), O(1)) not in state
        assert Fact(wrap(DEL, O("a")), "m", (), O(2)) in state

    def test_modify_replaces(self):
        base = parse_object_base("a.m -> 1.")
        result = step("m: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 10.", base)
        state = result.new_states[wrap(MOD, O("a"))]
        assert Fact(wrap(MOD, O("a")), "m", (), O(11)) in state
        assert Fact(wrap(MOD, O("a")), "m", (), O(1)) not in state

    def test_conflicting_modifies_are_set_valued(self):
        # two mod-updates of the same old value: both new values hold
        base = parse_object_base("a.m -> 1.")
        result = step(
            """
            m1: mod[X].m -> (1, 10) <= X.m -> 1.
            m2: mod[X].m -> (1, 20) <= X.m -> 1.
            """,
            base,
        )
        state = result.new_states[wrap(MOD, O("a"))]
        values = {f.result for f in state if f.method == "m"}
        assert values == {O(10), O(20)}

    def test_modify_keeps_untouched_values(self):
        base = parse_object_base("a.m -> 1. a.m -> 5.")
        result = step("m: mod[X].m -> (1, 10) <= X.m -> 1.", base)
        state = result.new_states[wrap(MOD, O("a"))]
        values = {f.result for f in state if f.method == "m"}
        assert values == {O(10), O(5)}


class TestApplyTp:
    def test_replacement_semantics(self):
        base = parse_object_base("a.m -> 1.")
        result = step("m: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.", base)
        assert apply_tp(base, result)
        version = wrap(MOD, O("a"))
        assert Fact(version, "m", (), O(2)) in base
        # second application reaches the fixpoint: nothing changes
        result2 = step("m: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.", base)
        assert not apply_tp(base, result2)

    def test_growing_deletes_within_iterations(self):
        """DESIGN.md D1: a delete firing later must remove the fact copied
        earlier — union semantics would resurrect it."""
        base = parse_object_base("a.keep -> 1. a.m -> 1. a.trigger -> go.")
        program_text = """
            d1: del[X].m -> 1 <= X.trigger -> go.
            d2: del[X].keep -> 1 <= del[X].m -> 1.
        """
        result = step(program_text, base)
        apply_tp(base, result)
        version = wrap(DEL, O("a"))
        assert Fact(version, "m", (), O(1)) not in base
        assert Fact(version, "keep", (), O(1)) in base  # d2 not fired yet
        result2 = step(program_text, base)
        apply_tp(base, result2)
        assert Fact(version, "keep", (), O(1)) not in base  # now deleted

    def test_strict_mode_orphan_insert(self):
        base = ObjectBase()
        base.add_object("seed")
        program = "i: ins[ghost].t -> 1 <= seed.exists -> seed."
        result = step(program, base)
        apply_tp(base, result)
        version = wrap(INS, O("ghost"))
        # strict paper reading: the orphan state exists but carries no
        # exists fact (the object 'ghost' was never in ob)
        assert Fact(version, "t", (), O(1)) in base
        assert not base.version_exists(version)

    def test_create_missing_objects_mode(self):
        base = ObjectBase()
        base.add_object("seed")
        program = parse_program("i: ins[ghost].t -> 1 <= seed.exists -> seed.")
        result = tp_step(list(program), base, create_missing_objects=True)
        apply_tp(base, result)
        assert base.version_exists(wrap(INS, O("ghost")))
