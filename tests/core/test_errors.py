"""Error hierarchy tests: catchability and message content (API stability)."""

import pytest

from repro.core import errors
from repro.core.terms import Oid, UpdateKind, wrap


def test_single_catch_all():
    for cls in (
        errors.TermError,
        errors.ProgramError,
        errors.SafetyError,
        errors.StratificationError,
        errors.EvaluationError,
        errors.EvaluationLimitError,
        errors.VersionLinearityError,
        errors.BuiltinError,
    ):
        assert issubclass(cls, errors.ReproError)


def test_safety_error_payload():
    error = errors.SafetyError("rule9", ("X", "Y"))
    assert error.rule_name == "rule9"
    assert error.unlimited == ("X", "Y")
    assert "rule9" in str(error) and "X, Y" in str(error)


def test_stratification_error_cycle():
    error = errors.StratificationError("nope", cycle=("a", "b", "a"))
    assert error.cycle == ("a", "b", "a")


def test_limit_error_mentions_stratum_and_cap():
    error = errors.EvaluationLimitError(3, 500)
    assert error.stratum == 3 and error.limit == 500
    assert "500" in str(error)


def test_depth_error_names_the_version():
    version = wrap(UpdateKind.INSERT, Oid("o"))
    error = errors.VersionDepthError(2, 1, version)
    assert isinstance(error, errors.EvaluationLimitError)
    assert "ins(o)" in str(error) and "max_version_depth" in str(error)
    assert error.version == version


def test_linearity_error_names_versions():
    previous = wrap(UpdateKind.MODIFY, Oid("o"))
    offending = wrap(UpdateKind.DELETE, Oid("o"))
    error = errors.VersionLinearityError(Oid("o"), previous, offending)
    assert error.previous == previous
    assert error.offending == offending
    assert "mod(o)" in str(error) and "del(o)" in str(error)


def test_parse_error_is_repro_error():
    from repro.lang.errors import ParseError

    error = ParseError("boom", 3, 7)
    assert isinstance(error, errors.ReproError)
    assert error.line == 3 and error.column == 7
    assert "line 3" in str(error)
