"""Unit and property tests for the object base (indexes, exists, v*)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import FrozenBaseError, TermError
from repro.core.facts import EXISTS, Fact, exists_fact, make_fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, UpdateKind, Var, wrap

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


def small_base() -> ObjectBase:
    return ObjectBase.from_triples(
        [
            ("phil", "isa", "empl"),
            ("phil", "sal", 4000),
            ("bob", "isa", "empl"),
            ("bob", "boss", "phil"),
        ]
    )


class TestConstruction:
    def test_from_triples_adds_exists(self):
        base = small_base()
        assert Fact(Oid("phil"), EXISTS, (), Oid("phil")) in base
        assert base.objects() == {Oid("phil"), Oid("bob")}

    def test_from_triples_with_args(self):
        base = ObjectBase.from_triples([("g", "dist", ("a", "b"), 7)])
        assert Fact(Oid("g"), "dist", (Oid("a"), Oid("b")), Oid(7)) in base

    def test_bad_tuple_length(self):
        with pytest.raises(TermError):
            ObjectBase.from_triples([("a", "b")])

    def test_non_ground_rejected(self):
        base = ObjectBase()
        with pytest.raises(TermError):
            base.add(Fact(Var("X"), "m", (), Oid(1)))


class TestMutation:
    def test_add_is_idempotent(self):
        base = ObjectBase()
        fact = make_fact(Oid("a"), "m", (), Oid(1))
        assert base.add(fact)
        assert not base.add(fact)
        assert len(base) == 1

    def test_discard(self):
        base = ObjectBase()
        fact = make_fact(Oid("a"), "m", (), Oid(1))
        base.add(fact)
        assert base.discard(fact)
        assert not base.discard(fact)
        assert fact not in base

    def test_discard_keeps_indexes_consistent(self):
        base = small_base()
        fact = make_fact(Oid("phil"), "sal", (), Oid(4000))
        base.discard(fact)
        assert base.facts_by_host_method(Oid("phil"), "sal", 0) == frozenset()
        assert fact not in base.facts_by_method("sal", 0)

    def test_exists_tracking_on_discard(self):
        base = ObjectBase()
        base.add_object("o")
        assert base.version_exists(Oid("o"))
        base.discard(exists_fact(Oid("o")))
        assert not base.version_exists(Oid("o"))

    def test_copy_is_independent(self):
        base = small_base()
        clone = base.copy()
        clone.add(make_fact(Oid("new"), "m", (), Oid(1)))
        assert len(clone) == len(base) + 1
        assert clone != base

    def test_equality(self):
        assert small_base() == small_base()


class TestFreezing:
    def test_freeze_rejects_mutation(self):
        base = small_base().freeze()
        assert base.frozen
        with pytest.raises(FrozenBaseError):
            base.add(make_fact(Oid("new"), "m", (), Oid(1)))
        with pytest.raises(FrozenBaseError):
            base.discard(make_fact(Oid("phil"), "sal", (), Oid(4000)))

    def test_noop_mutations_stay_cheap(self):
        # add of a present fact / discard of an absent one never mutate,
        # so they are answered before the frozen check fires
        base = small_base().freeze()
        assert not base.add(make_fact(Oid("phil"), "sal", (), Oid(4000)))
        assert not base.discard(make_fact(Oid("ghost"), "m", (), Oid(1)))

    def test_frozen_base_still_reads_and_indexes(self):
        facts = {f for f in small_base() if f.method != EXISTS}
        base = ObjectBase.from_fact_set(facts).freeze()
        assert base.facts_by_method("sal", 0)  # index built lazily, allowed
        assert base.version_exists(Oid("phil")) is False  # no exists facts

    def test_copy_of_frozen_is_mutable(self):
        base = small_base().freeze()
        clone = base.copy()
        assert not clone.frozen
        clone.add(make_fact(Oid("new"), "m", (), Oid(1)))
        assert len(clone) == len(base) + 1

    def test_ensure_exists_on_complete_frozen_base_is_a_noop(self):
        base = small_base()
        base.ensure_exists()
        assert base.freeze().ensure_exists() == 0


class TestApplyDelta:
    def test_apply_delta_shares_fact_objects(self):
        base = small_base().freeze()
        old = make_fact(Oid("phil"), "sal", (), Oid(4000))
        new = make_fact(Oid("phil"), "sal", (), Oid(4400))
        derived = base.apply_delta({new}, {old})
        assert not derived.frozen
        assert new in derived and old not in derived
        kept = next(f for f in base if f.method == "boss")
        assert next(f for f in derived if f.method == "boss") is kept

    def test_apply_delta_leaves_source_untouched(self):
        base = small_base()
        fact = make_fact(Oid("phil"), "sal", (), Oid(4000))
        derived = base.apply_delta((), {fact})
        assert fact in base
        assert fact not in derived
        assert len(derived) == len(base) - 1

    def test_apply_empty_delta_is_equal(self):
        base = small_base()
        assert base.apply_delta((), ()) == base


class TestReplaceState:
    def test_replaces_whole_state(self):
        base = small_base()
        version = wrap(MOD, Oid("phil"))
        state = {
            Fact(version, "isa", (), Oid("empl")),
            Fact(version, "sal", (), Oid(4600)),
            exists_fact(version),
        }
        assert base.replace_state(version, state)
        assert base.state_of(version) == frozenset(state)
        # replacing with the same state reports no change (fixpoint test)
        assert not base.replace_state(version, state)

    def test_replacement_removes_stale_facts(self):
        base = ObjectBase()
        version = wrap(DEL, Oid("o"))
        base.replace_state(version, {Fact(version, "m", (), Oid(1)), exists_fact(version)})
        base.replace_state(version, {exists_fact(version)})
        assert base.method_applications(version) == frozenset()
        assert base.version_exists(version)

    def test_wrong_host_rejected(self):
        base = ObjectBase()
        with pytest.raises(TermError):
            base.replace_state(wrap(MOD, Oid("o")), {make_fact(Oid("o"), "m", (), Oid(1))})


class TestVStar:
    def test_existing_version_is_its_own_v_star(self):
        base = small_base()
        assert base.v_star(Oid("phil")) == Oid("phil")

    def test_skipped_levels_fall_through(self):
        # del(mod(e)) when no modify ever ran: v* = e  (Section 3)
        base = small_base()
        target = wrap(DEL, wrap(MOD, Oid("phil")))
        assert base.v_star(target) == Oid("phil")

    def test_deepest_existing_wins(self):
        base = small_base()
        version = wrap(MOD, Oid("phil"))
        base.add(exists_fact(version))
        assert base.v_star(wrap(DEL, version)) == version

    def test_none_when_nothing_exists(self):
        base = small_base()
        assert base.v_star(wrap(MOD, Oid("ghost"))) is None


class TestLookups:
    def test_state_of_and_method_applications(self):
        base = small_base()
        state = base.state_of(Oid("phil"))
        assert len(state) == 3  # isa, sal, exists
        applications = base.method_applications(Oid("phil"))
        assert len(applications) == 2
        assert all(f.method != EXISTS for f in applications)

    def test_versions_of(self):
        base = small_base()
        version = wrap(MOD, Oid("phil"))
        base.add(exists_fact(version))
        assert base.versions_of(Oid("phil")) == {Oid("phil"), version}
        assert base.versions_of(Oid("bob")) == {Oid("bob")}

    def test_facts_by_method_respects_arity(self):
        base = ObjectBase.from_triples(
            [("a", "m", 1), ("b", "m", ("x",), 2)]
        )
        assert len(base.facts_by_method("m", 0)) == 1
        assert len(base.facts_by_method("m", 1)) == 1

    def test_oid_universe(self):
        base = small_base()
        universe = base.oid_universe()
        assert Oid("phil") in universe and Oid(4000) in universe

    def test_sorted_facts_stable(self):
        assert small_base().sorted_facts() == small_base().sorted_facts()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.sampled_from(["m", "n"]),
            st.integers(0, 5),
        ),
        max_size=20,
    )
)
def test_indexes_agree_with_linear_scan(triples):
    base = ObjectBase.from_triples(triples)
    for fact in base:
        assert fact in base.facts_by_method(fact.method, len(fact.args))
        assert fact in base.facts_by_host(fact.host)
        assert fact in base.facts_by_host_method(fact.host, fact.method, len(fact.args))
    for host in {f.host for f in base}:
        expected = {f for f in base if f.host == host}
        assert base.facts_by_host(host) == expected
