"""Tests for the benchmark reporting helpers."""

import pytest

from repro.bench import ExperimentTable, time_callable


class TestExperimentTable:
    def test_render_alignment(self):
        table = ExperimentTable("E1", ["n", "time"])
        table.add_row([10, 0.5])
        table.add_row([1000, 12.25])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== E1 =="
        assert "n" in lines[1] and "time" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "1000" in lines[4]

    def test_row_width_checked(self):
        table = ExperimentTable("X", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_float_formatting(self):
        table = ExperimentTable("X", ["v"])
        for value, expected in [
            (0.0, "0"),
            (0.1234567, "0.1235"),
            (3.14159, "3.14"),
            (123.456, "123.5"),
        ]:
            table.rows.clear()
            table.add_row([value])
            assert table.rows[0][0] == expected

    def test_emit_prints(self, capsys):
        table = ExperimentTable("X", ["v"])
        table.add_row([1])
        table.emit()
        assert "== X ==" in capsys.readouterr().out


class TestTimeCallable:
    def test_returns_best_and_result(self):
        milliseconds, result = time_callable(lambda: sum(range(100)), repeat=2)
        assert result == 4950
        assert milliseconds >= 0

    def test_single_repeat(self):
        _ms, result = time_callable(lambda: "x", repeat=1)
        assert result == "x"
