"""Unit tests for the term model (Section 2.1 alphabet)."""

import pytest

from repro.core.errors import TermError
from repro.core.terms import (
    Oid,
    UpdateKind,
    Var,
    VersionId,
    VersionVar,
    depth,
    is_ground,
    is_object_id_term,
    is_proper_subterm,
    is_subterm,
    is_version_id_term,
    object_of,
    subterms,
    variables_of,
    wrap,
)

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


class TestOid:
    def test_values_are_oids(self):
        # the paper: "we consider values as specific OIDs"
        assert Oid("henry").value == "henry"
        assert Oid(250).value == 250
        assert Oid(2.5).value == 2.5

    def test_numeric_flag(self):
        assert Oid(250).is_numeric
        assert Oid(1.5).is_numeric
        assert not Oid("henry").is_numeric

    def test_equality_is_structural(self):
        assert Oid("a") == Oid("a")
        assert Oid("a") != Oid("b")
        assert hash(Oid(3)) == hash(Oid(3))

    def test_bad_payloads_rejected(self):
        with pytest.raises(TermError):
            Oid(None)
        with pytest.raises(TermError):
            Oid(True)  # bools are not values of the language
        with pytest.raises(TermError):
            Oid([1])

    def test_str(self):
        assert str(Oid("phil")) == "phil"
        assert str(Oid(42)) == "42"


class TestVar:
    def test_name_required(self):
        with pytest.raises(TermError):
            Var("")

    def test_identity(self):
        assert Var("E") == Var("E")
        assert Var("E") != Var("F")
        assert Var("E") != Oid("E")

    def test_version_var_is_a_var(self):
        assert isinstance(VersionVar("W"), Var)
        assert VersionVar("W") != Var("W")  # different classes, different terms
        assert str(VersionVar("W")) == "?W"


class TestVersionId:
    def test_structure(self):
        vid = VersionId(MOD, Oid("henry"))
        assert vid.kind is MOD
        assert vid.base == Oid("henry")
        assert str(vid) == "mod(henry)"

    def test_nesting_reads_inside_out(self):
        vid = wrap(INS, wrap(DEL, wrap(MOD, Oid("o"))))
        assert str(vid) == "ins(del(mod(o)))"

    def test_base_must_be_term(self):
        with pytest.raises(TermError):
            VersionId(INS, "henry")  # type: ignore[arg-type]

    def test_kind_from_name(self):
        assert UpdateKind.from_name("ins") is INS
        assert UpdateKind.from_name("del") is DEL
        assert UpdateKind.from_name("mod") is MOD
        with pytest.raises(TermError):
            UpdateKind.from_name("upd")


class TestPredicates:
    def test_is_ground(self):
        assert is_ground(Oid("a"))
        assert is_ground(wrap(INS, Oid("a")))
        assert not is_ground(Var("X"))
        assert not is_ground(wrap(MOD, Var("X")))

    def test_sorts(self):
        assert is_object_id_term(Oid("a"))
        assert is_object_id_term(Var("X"))
        assert not is_object_id_term(wrap(INS, Oid("a")))
        # every object-id-term is also a version-id-term (O ⊆ O_V)
        assert is_version_id_term(Oid("a"))
        assert is_version_id_term(wrap(INS, Oid("a")))

    def test_object_of(self):
        assert object_of(Oid("phil")) == Oid("phil")
        assert object_of(wrap(INS, wrap(MOD, Oid("phil")))) == Oid("phil")
        with pytest.raises(TermError):
            object_of(wrap(MOD, Var("X")))

    def test_depth(self):
        assert depth(Oid("o")) == 0
        assert depth(wrap(MOD, Oid("o"))) == 1
        assert depth(wrap(INS, wrap(DEL, wrap(MOD, Oid("o"))))) == 3

    def test_variables_of(self):
        assert variables_of(Oid("o")) == frozenset()
        assert variables_of(wrap(MOD, Var("E"))) == frozenset({Var("E")})


class TestSubterms:
    def test_subterms_outermost_first(self):
        vid = wrap(INS, wrap(MOD, Oid("o")))
        assert list(subterms(vid)) == [vid, wrap(MOD, Oid("o")), Oid("o")]

    def test_subterm_relation(self):
        inner = wrap(MOD, Oid("o"))
        outer = wrap(DEL, inner)
        assert is_subterm(inner, outer)
        assert is_subterm(outer, outer)
        assert is_subterm(Oid("o"), outer)
        assert not is_subterm(outer, inner)

    def test_proper_subterm(self):
        inner = wrap(MOD, Oid("o"))
        outer = wrap(DEL, inner)
        assert is_proper_subterm(inner, outer)
        assert not is_proper_subterm(outer, outer)

    def test_different_kinds_not_subterms(self):
        # mod(o) is not a subterm of del(o): VIDs encode the exact history
        assert not is_subterm(wrap(MOD, Oid("o")), wrap(DEL, Oid("o")))

    def test_different_objects_not_subterms(self):
        assert not is_subterm(Oid("a"), wrap(MOD, Oid("b")))
