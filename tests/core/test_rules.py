"""Unit tests for rules and programs."""

import pytest

from repro.core.atoms import Literal, UpdateAtom, VersionAtom
from repro.core.errors import ProgramError
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import Oid, UpdateKind, Var, wrap

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


def _raise_rule() -> UpdateRule:
    return UpdateRule(
        UpdateAtom(MOD, Var("E"), "sal", (), Var("S"), Var("S2")),
        (
            Literal(VersionAtom(Var("E"), "isa", (), Oid("empl"))),
            Literal(VersionAtom(Var("E"), "sal", (), Var("S"))),
        ),
        "raise",
    )


class TestUpdateRule:
    def test_head_must_be_update_term(self):
        with pytest.raises(ProgramError):
            UpdateRule(VersionAtom(Var("E"), "m", (), Oid(1)))  # type: ignore[arg-type]

    def test_variables(self):
        assert _raise_rule().variables == {Var("E"), Var("S"), Var("S2")}

    def test_fact(self):
        fact = UpdateRule(UpdateAtom(INS, Oid("o"), "m", (), Oid(1)))
        assert fact.is_fact
        assert str(fact) == "ins[o].m -> 1."

    def test_substitution(self):
        ground = _raise_rule().substitute(
            {Var("E"): Oid("h"), Var("S"): Oid(1), Var("S2"): Oid(2)}
        )
        assert ground.head.is_ground()
        assert all(lit.is_ground() for lit in ground.body)

    def test_head_version_id_term_replaces_brackets(self):
        # Section 4: [V] is replaced by (V) for stratification
        rule = _raise_rule()
        assert rule.head_version_id_term() == wrap(MOD, Var("E"))

    def test_body_version_id_terms(self):
        rule = UpdateRule(
            UpdateAtom(INS, wrap(MOD, Var("E")), "isa", (), Oid("hpe")),
            (
                Literal(VersionAtom(wrap(MOD, Var("E")), "sal", (), Var("S"))),
                Literal(
                    UpdateAtom(DEL, wrap(MOD, Var("E")), "isa", (), Oid("empl")),
                    positive=False,
                ),
            ),
            "rule4",
        )
        terms = list(rule.body_version_id_terms())
        assert (wrap(MOD, Var("E")), True) in terms
        # the update-term contributes its created version del(mod(E))
        assert (wrap(DEL, wrap(MOD, Var("E"))), False) in terms

    def test_literal_split(self):
        rule = UpdateRule(
            UpdateAtom(INS, Var("E"), "m", (), Oid(1)),
            (
                Literal(VersionAtom(Var("E"), "a", (), Oid(1))),
                Literal(VersionAtom(Var("E"), "b", (), Oid(2)), positive=False),
            ),
        )
        assert len(list(rule.positive_literals())) == 1
        assert len(list(rule.negative_literals())) == 1


class TestUpdateProgram:
    def test_auto_naming(self):
        program = UpdateProgram(
            [
                UpdateRule(UpdateAtom(INS, Oid("o"), "m", (), Oid(1))),
                UpdateRule(UpdateAtom(INS, Oid("o"), "n", (), Oid(2))),
            ]
        )
        assert [rule.name for rule in program] == ["rule1", "rule2"]

    def test_explicit_names_kept(self):
        program = UpdateProgram([_raise_rule()])
        assert program.rule_named("raise").name == "raise"
        with pytest.raises(KeyError):
            program.rule_named("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ProgramError):
            UpdateProgram([_raise_rule(), _raise_rule()])

    def test_kinds_used(self):
        program = UpdateProgram([_raise_rule()])
        assert program.update_kinds_used() == {MOD}

    def test_iteration_and_indexing(self):
        program = UpdateProgram([_raise_rule()])
        assert len(program) == 1
        assert program[0].name == "raise"
        assert program.variables == {Var("E"), Var("S"), Var("S2")}
