"""Stratification tests — the paper's Section 4 examples, pinned exactly.

These are reproduction experiment E5: the enterprise program stratifies as
``{rule1, rule2} < {rule3} < {rule4}`` under conditions (a)-(d) and as
``{rule1, rule2} < {rule3, rule4}`` under condition (a) alone; the
hypothetical program as four singleton strata (footnote 3); the recursive
ancestor program as a single stratum.
"""

import pytest

from repro import parse_program
from repro.core.errors import StratificationError
from repro.core.stratification import precedence_edges, stratify
from repro.workloads import (
    ancestors_program,
    hypothetical_program,
    paper_example_program,
)


class TestPaperExampleStrata:
    def test_full_conditions(self):
        strata = stratify(paper_example_program())
        assert strata.names() == [["rule1", "rule2"], ["rule3"], ["rule4"]]

    def test_condition_a_alone(self):
        strata = stratify(paper_example_program(), conditions="a")
        assert strata.names() == [["rule1", "rule2"], ["rule3", "rule4"]]

    def test_hypothetical_program(self):
        strata = stratify(hypothetical_program())
        assert strata.names() == [["rule1"], ["rule2"], ["rule3"], ["rule4"]]

    def test_ancestors_single_recursive_stratum(self):
        strata = stratify(ancestors_program())
        assert strata.names() == [["r1", "r2"]]

    def test_stratum_of_mapping(self):
        strata = stratify(paper_example_program())
        assert strata.stratum_of["rule1"] == 0
        assert strata.stratum_of["rule4"] == 2


class TestConditions:
    def test_condition_a_copy_before_extend(self):
        # ins[mod(E)] copies mod(E): the rule defining mod(E) is lower
        program = parse_program(
            """
            a: mod[E].m -> (V, V2) <= E.m -> V, V2 = V + 1.
            b: ins[mod(E)].t -> 1 <= E.m -> V.
            """
        )
        strata = stratify(program)
        assert strata.names() == [["a"], ["b"]]

    def test_condition_b_weak_allows_recursion(self):
        program = parse_program(
            """
            r1: ins[X].anc -> P <= X.parents -> P.
            r2: ins[X].anc -> P <= ins(X).anc -> A, A.parents -> P.
            """
        )
        assert len(stratify(program)) == 1

    def test_condition_c_negation_strict(self):
        program = parse_program(
            """
            pos: mod[X].t -> (V, V2) <= X.t -> V, V2 = V + 1.
            neg: ins[X].u -> 1 <= X.t -> V, not mod(X).t -> V.
            """
        )
        # condition (c) alone already forces the split
        strata = stratify(program, conditions="c")
        assert strata.names() == [["pos"], ["neg"]]

    def test_vid_granularity_is_coarser_than_datalog(self):
        """Version-id-terms play the role Datalog predicate names play
        ([Ull88] adaptation) — but they are *coarser*: a rule negating a
        method of the very version its own head creates is rejected even
        though the two methods differ.  The paper's rule 4 avoids this by
        negating del(mod(E)) while creating ins(mod(E))."""
        program = parse_program(
            """
            pos: ins[X].t -> 1 <= X.m -> V.
            neg: ins[X].u -> 1 <= X.m -> V, not ins(X).t -> 1.
            """
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_condition_d_write_before_read(self):
        program = parse_program(
            """
            w: del[X].m -> V <= X.m -> V, X.kill -> yes.
            r: ins[del(X)].t -> 1 <= del(X).n -> V.
            """
        )
        strata = stratify(program)
        assert strata.stratum_of["w"] < strata.stratum_of["r"]

    def test_negative_self_recursion_rejected(self):
        program = parse_program(
            "r: ins[X].t -> 1 <= X.m -> V, not ins(X).t -> 1."
        )
        with pytest.raises(StratificationError) as excinfo:
            stratify(program)
        assert "r" in str(excinfo.value)

    def test_destructive_self_read_rejected(self):
        # a rule deleting from del(X) while reading del(X): (d) forces r < r
        program = parse_program(
            "r: del[X].m -> V <= del(X).n -> V."
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_insert_self_read_allowed(self):
        # inserts are monotone: reading your own ins version is fine
        program = parse_program("r: ins[X].t -> V <= ins(X).m -> V.")
        assert len(stratify(program)) == 1


class TestEdgesAndExplain:
    def test_edges_carry_conditions(self):
        edges = precedence_edges(paper_example_program())
        conditions = {edge.condition for edge in edges}
        assert conditions == {"a", "b", "c", "d"}

    def test_strict_flags(self):
        edges = precedence_edges(paper_example_program())
        by_condition = {}
        for edge in edges:
            by_condition.setdefault(edge.condition, set()).add(edge.strict)
        assert by_condition["a"] == {True}
        assert by_condition["b"] == {False}
        assert by_condition["c"] == {True}
        assert by_condition["d"] == {True}

    def test_explain_mentions_all_strata(self):
        text = stratify(paper_example_program()).explain()
        assert "stratum 0: {rule1, rule2}" in text
        assert "stratum 2: {rule4}" in text
        assert "condition (a)" in text

    def test_facts_only_program(self):
        program = parse_program("f: ins[o].m -> 1.")
        strata = stratify(program)
        assert strata.names() == [["f"]]
        assert strata.edges == ()

    def test_unifiability_respects_constants(self):
        # mod-heads on different constants do not constrain each other
        program = parse_program(
            """
            a: mod[x].m -> (1, 2) <= x.m -> 1.
            b: ins[mod(y)].t -> 1 <= y.m -> V.
            """
        )
        strata = stratify(program)
        # b copies mod(y); rule a writes mod(x) — x and y distinct constants
        assert strata.names() == [["a", "b"]]
