"""Tests for the trace module (records, statistics, rendering)."""

from repro import Oid, UpdateEngine
from repro.core.trace import EvaluationTrace, render_version_chains
from repro.workloads import paper_example_base, paper_example_program

O = Oid


class TestRecording:
    def test_empty_trace(self):
        trace = EvaluationTrace()
        assert trace.total_iterations == 0
        assert trace.total_fired == 0
        assert trace.versions_created() == []
        assert trace.render() == ""

    def test_stratum_records(self, tracing_engine):
        outcome = tracing_engine.evaluate(
            paper_example_program(), paper_example_base()
        )
        trace = outcome.trace
        assert len(trace.strata) == 3
        assert trace.strata[0].rule_names == ("rule1", "rule2")
        # every stratum needs its productive round plus the fixpoint round
        for stratum in trace.strata:
            assert stratum.iteration_count == 2

    def test_iteration_flags(self, tracing_engine):
        outcome = tracing_engine.evaluate(
            paper_example_program(), paper_example_base()
        )
        for stratum in outcome.trace.strata:
            assert stratum.iterations[-1].changed is False
            assert stratum.iterations[0].changed is True

    def test_snapshots_recorded(self, tracing_engine):
        outcome = tracing_engine.evaluate(
            paper_example_program(), paper_example_base()
        )
        first = outcome.trace.strata[0].iterations[0]
        assert first.snapshot is not None
        assert first.snapshot.version_exists(O("phil"))

    def test_no_snapshots_without_option(self):
        engine = UpdateEngine(collect_trace=True, collect_snapshots=False)
        outcome = engine.evaluate(paper_example_program(), paper_example_base())
        assert outcome.trace.strata[0].iterations[0].snapshot is None


class TestRendering:
    def test_render_without_objects(self, tracing_engine):
        outcome = tracing_engine.evaluate(
            paper_example_program(), paper_example_base()
        )
        text = outcome.trace.render()
        assert "stratum 0: {rule1, rule2}" in text
        assert "new versions: mod(bob), mod(phil)" in text

    def test_render_with_object_states(self, tracing_engine):
        outcome = tracing_engine.evaluate(
            paper_example_program(), paper_example_base()
        )
        text = outcome.trace.render(objects=(O("phil"),))
        assert "mod(phil): {" in text
        assert "sal -> 4600.0" in text
        # state lines are filtered to the requested objects
        assert "mod(bob): {" not in text

    def test_nothing_fired_line(self, tracing_engine):
        from repro import parse_object_base, parse_program

        outcome = tracing_engine.evaluate(
            parse_program("r: ins[X].t -> 1 <= X.never -> 1."),
            parse_object_base("a.m -> 1."),
        )
        assert "(nothing fired)" in outcome.trace.render()


class TestChainRenderingEdgeCases:
    def test_values_do_not_appear_as_chains(self):
        text = render_version_chains(paper_example_base())
        assert "4000" not in text  # value OIDs host nothing
