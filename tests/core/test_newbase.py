"""Tests for building ob' from result(P) (Section 5)."""

import pytest

from repro import UpdateEngine, parse_object_base, parse_program
from repro.core.facts import EXISTS, Fact
from repro.core.newbase import build_new_base
from repro.core.terms import Oid

O = Oid


def run(program_text: str, base_text: str):
    return UpdateEngine().apply(
        parse_program(program_text), parse_object_base(base_text)
    )


class TestFinalVersionCopy:
    def test_final_version_rehosted_on_oid(self):
        result = run(
            "r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.", "a.m -> 1."
        )
        assert Fact(O("a"), "m", (), O(2)) in result.new_base
        assert Fact(O("a"), "m", (), O(1)) not in result.new_base

    def test_untouched_objects_copied_verbatim(self):
        result = run(
            "r: mod[X].m -> (V, V2) <= X.m -> V, X.touch -> yes, V2 = V + 1.",
            "a.m -> 1. a.touch -> yes. b.m -> 7.",
        )
        assert Fact(O("b"), "m", (), O(7)) in result.new_base
        assert Fact(O("a"), "m", (), O(2)) in result.new_base

    def test_fully_deleted_object_vanishes(self):
        # Section 5: only `exists` left in the final version => no trace in ob'
        result = run("r: del[X].* <= X.kill -> yes.", "a.m -> 1. a.kill -> yes.")
        hosts = {f.host for f in result.new_base}
        assert O("a") not in hosts

    def test_exists_regenerated_for_survivors(self):
        result = run(
            "r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.", "a.m -> 1."
        )
        assert Fact(O("a"), EXISTS, (), O("a")) in result.new_base

    def test_new_base_is_valid_input_again(self):
        # ob' can be updated again: the ob -> ob' mapping composes
        first = run("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.", "a.m -> 1.")
        program = parse_program("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.")
        second = UpdateEngine().apply(program, first.new_base)
        assert Fact(O("a"), "m", (), O(3)) in second.new_base


class TestStandalone:
    def test_build_from_unevaluated_base(self):
        base = parse_object_base("a.m -> 1.")
        rebuilt = build_new_base(base)
        assert Fact(O("a"), "m", (), O(1)) in rebuilt

    def test_values_never_become_objects(self):
        # 250 is an OID but hosts nothing: it must not appear as an object
        base = parse_object_base("a.sal -> 250.")
        rebuilt = build_new_base(base)
        assert O(250) not in rebuilt.objects()
        assert rebuilt.objects() == {O("a")}


class TestFigure2NewBase:
    def test_paper_result(self, engine, paper_base, paper_program):
        result = engine.apply(paper_program, paper_base)
        expected = parse_object_base(
            """
            phil.isa -> empl.  phil.isa -> hpe.  phil.pos -> mgr.
            phil.sal -> 4600.0.
            """
        )
        assert result.new_base == expected
