"""Unit tests for the [Ull88]-style safety check."""

import pytest

from repro import parse_rule
from repro.core.errors import SafetyError
from repro.core.safety import check_rule_safety, is_safe, limited_variables
from repro.core.terms import Var


def test_paper_rules_are_safe():
    for text in (
        "mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S * 1.1.",
        "del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE, "
        "mod(B).sal -> SB, SE > SB.",
        "ins[mod(E)].isa -> hpe <= mod(E).sal -> S, S > 4500, "
        "not del[mod(E)].isa -> empl.",
        "ins[X].anc -> P <= ins(X).isa -> person / anc -> A, "
        "A.isa -> person / parents -> P.",
    ):
        check_rule_safety(parse_rule(text))


def test_head_variable_not_limited():
    rule = parse_rule("ins[X].m -> Y <= X.a -> B.")
    with pytest.raises(SafetyError) as excinfo:
        check_rule_safety(rule)
    assert "Y" in excinfo.value.unlimited


def test_negated_only_variable_not_limited():
    rule = parse_rule("ins[X].m -> 1 <= X.a -> B, not X.c -> C.")
    with pytest.raises(SafetyError) as excinfo:
        check_rule_safety(rule)
    assert excinfo.value.unlimited == ("C",)


def test_comparison_only_variable_not_limited():
    rule = parse_rule("ins[X].m -> 1 <= X.a -> B, S > 10.")
    assert not is_safe(rule)


def test_equality_chain_limits():
    rule = parse_rule("ins[X].m -> T <= X.a -> S, S2 = S * 2, T = S2 + 1.")
    assert is_safe(rule)
    limited = limited_variables(rule)
    assert {Var("X"), Var("S"), Var("S2"), Var("T")} <= limited


def test_equality_between_unlimited_does_not_limit():
    rule = parse_rule("ins[X].m -> A <= X.a -> S, A = B.")
    with pytest.raises(SafetyError) as excinfo:
        check_rule_safety(rule)
    assert set(excinfo.value.unlimited) == {"A", "B"}


def test_positive_update_term_limits():
    # body update-terms are checked against the base, so they limit
    rule = parse_rule("ins[X].m -> S2 <= mod[X].sal -> (S, S2).")
    assert is_safe(rule)


def test_unsafe_fact_head():
    rule = parse_rule("ins[X].m -> 1.")
    with pytest.raises(SafetyError):
        check_rule_safety(rule)


def test_ground_fact_is_safe():
    check_rule_safety(parse_rule("ins[o].m -> 1."))
