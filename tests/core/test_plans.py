"""Unit tests for the precompiled join plans, the rule dependency
signatures and the delta machinery behind semi-naive evaluation."""

import pytest

from repro.core.consequence import apply_tp, tp_step
from repro.core.grounding import (
    match_body_dynamic,
    match_rule,
    match_rule_dynamic,
    match_rule_seeded,
)
from repro.core.objectbase import Delta, ObjectBase
from repro.core.plans import (
    FULL,
    GENERATE,
    SEED,
    SKIP,
    classify,
    compile_plan,
    rule_plan,
)
from repro.core.facts import Fact
from repro.core.terms import Oid
from repro.lang.parser import parse_object_base, parse_program


BASE = parse_object_base(
    """
    phil.isa -> empl.   phil.pos -> mgr.    phil.sal -> 4000.
    bob.isa -> empl.    bob.sal -> 4200.    bob.boss -> phil.
    ann.isa -> empl.    ann.sal -> 3000.    ann.boss -> phil.
    """
)

RULES = parse_program(
    """
    r1: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S, S2 = S * 1.1.
    r2: ins[E].rich -> yes <= E.sal -> S, E.boss -> B, B.sal -> SB, S > SB.
    r3: del[mod(E)].* <= mod(E).sal -> S, S > 5000.
    r4: ins[mod(E)].hpe -> yes <= mod(E).sal -> S, S > 4500,
        not del[mod(E)].sal -> S.
    """
)


def bindings_set(bindings):
    return {frozenset(b.items()) for b in bindings}


class TestJoinPlans:
    def test_planned_equals_dynamic_on_every_rule(self):
        for rule in RULES:
            assert bindings_set(match_rule(rule, BASE)) == bindings_set(
                match_rule_dynamic(rule, BASE)
            ), rule.name

    def test_plan_compiles_and_counts_generators(self):
        plan = rule_plan(RULES[1]).full_plan  # r2: three generators
        assert plan is not None
        generators = [s for s in plan.steps if s.action == GENERATE]
        assert len(generators) >= 2

    def test_version_atom_generators_skip_reverification(self):
        plan = rule_plan(RULES[0]).full_plan
        assert any(
            s.action == GENERATE and not s.verify for s in plan.steps
        )

    def test_single_generator_plans_have_no_duplicates(self):
        rule = RULES[0]
        results = list(match_rule(rule, BASE))
        keys = bindings_set(results)
        assert len(results) == len(keys)

    def test_unsafe_body_falls_back(self):
        # A body the planner cannot order: only a negated literal.
        program = parse_program("u1: ins[X].t -> 1 <= not X.isa -> empl.")
        assert compile_plan(program[0].body) is None


class TestDelta:
    def test_apply_tp_returns_structured_delta(self):
        program = parse_program(
            "g1: mod[E].sal -> (S, S2) <= E.sal -> S, S2 = S + 1."
        )
        base = BASE.copy()
        step = tp_step(list(program), base)
        delta = apply_tp(base, step)
        assert delta  # truthy: the base changed
        assert any(f.method == "sal" for f in delta.added)
        assert ("sal", 0) in delta.added_index()
        # all new facts live on mod(..) versions
        assert set(delta.added_index()[("sal", 0)]) == {("mod",)}
        # re-applying the same step is idempotent: empty delta
        assert not apply_tp(base, step)

    def test_replace_state_diff_reports_exact_changes(self):
        base = ObjectBase()
        host = Oid("o")
        f1 = Fact(host, "a", (), Oid(1))
        f2 = Fact(host, "b", (), Oid(2))
        f3 = Fact(host, "c", (), Oid(3))
        base.add(f1), base.add(f2)
        added, removed = base.replace_state_diff(host, {f2, f3})
        assert added == {f3} and removed == {f1}
        assert base.replace_state_diff(host, {f2, f3}) == (frozenset(), frozenset())


class TestClassification:
    def _delta_with(self, fact):
        delta = Delta()
        delta.record([fact], [])
        return delta

    def test_base_level_rule_skips_on_version_level_delta(self):
        # r1 reads plain-object facts; a delta on mod(..) hosts cannot
        # re-enable it (plain variables never bind proper VIDs).
        sig = rule_plan(RULES[0]).signature
        from repro.core.terms import UpdateKind, VersionId

        mod_phil = VersionId(UpdateKind.MODIFY, Oid("phil"))
        delta = self._delta_with(Fact(mod_phil, "sal", (), Oid(4400)))
        assert classify(sig, delta) == (SKIP, ())

    def test_seed_mode_on_matching_shape(self):
        sig = rule_plan(RULES[0]).signature
        delta = self._delta_with(Fact(Oid("zoe"), "sal", (), Oid(1)))
        mode, positions = classify(sig, delta)
        assert mode == SEED and positions

    def test_negation_and_update_atoms_force_full(self):
        from repro.core.terms import UpdateKind, VersionId

        sig = rule_plan(RULES[3]).signature  # r4 has `not del[mod(E)].sal`
        mod_phil = VersionId(UpdateKind.MODIFY, Oid("phil"))
        delta = self._delta_with(Fact(mod_phil, "sal", (), Oid(1)))
        assert classify(sig, delta) == (FULL, ())

    def test_delete_all_head_is_volatile_for_matching_shapes(self):
        from repro.core.terms import UpdateKind, VersionId

        sig = rule_plan(RULES[2]).signature  # r3: del[mod(E)].*
        mod_phil = VersionId(UpdateKind.MODIFY, Oid("phil"))
        delta = self._delta_with(Fact(mod_phil, "anything", (), Oid(1)))
        assert classify(sig, delta) == (FULL, ())
        # ...but an ins(mod(..))-level delta is unreadable by r3 entirely.
        ins_mod = VersionId(UpdateKind.INSERT, mod_phil)
        delta2 = self._delta_with(Fact(ins_mod, "anything", (), Oid(1)))
        assert classify(sig, delta2) == (SKIP, ())

    def test_seeded_match_finds_only_delta_derived_bindings(self):
        rule = RULES[0]
        base = BASE.copy()
        new_fact = Fact(Oid("zoe"), "sal", (), Oid(100))
        base.add(new_fact)
        base.add(Fact(Oid("zoe"), "isa", (), Oid("empl")))
        base.ensure_exists()
        delta = Delta()
        delta.record([new_fact], [])
        mode, positions = classify(rule_plan(rule).signature, delta)
        assert mode == SEED
        seeded = bindings_set(match_rule_seeded(rule, base, delta, positions))
        assert len(seeded) == 1
        full = bindings_set(match_rule(rule, base))
        assert seeded < full and len(full) == 4


class TestLazyCopies:
    def test_lazy_copy_equals_eager_copy(self):
        lazy = BASE.copy(lazy_indexes=True)
        assert lazy == BASE
        assert lazy.facts_by_method("sal", 0) == BASE.facts_by_method("sal", 0)
        assert lazy.existing_versions() == BASE.existing_versions()

    def test_lazy_copy_is_independent(self):
        lazy = BASE.copy(lazy_indexes=True)
        lazy.add(Fact(Oid("new"), "isa", (), Oid("empl")))
        assert len(lazy) == len(BASE) + 1
        assert Fact(Oid("new"), "isa", (), Oid("empl")) not in BASE

    def test_from_fact_set_adopts_without_indexes(self):
        facts = {Fact(Oid("a"), "m", (), Oid(1))}
        base = ObjectBase.from_fact_set(set(facts))
        assert set(base) == facts
        assert base.facts_by_host(Oid("a"))  # index rebuilt on demand
