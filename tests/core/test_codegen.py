"""Unit tests for the codegen'd, set-at-a-time join executor.

The differential property suite (``tests/property/test_codegen_equiv.py``)
establishes compiled == interpreted == naive on randomized programs; these
tests pin the deterministic contracts — slot layout and dedup keys against
``var_sort_key``, the paper workloads end to end, the ``REPRO_NO_CODEGEN``
escape hatch, the prepared-query fast path, and the cache-registry
surface.
"""

import os

import pytest

from repro.core.caches import cache_stats
from repro.core.codegen import (
    codegen_enabled,
    compiled_body,
    compiled_rule,
    match_rule_compiled,
)
from repro.core.engine import UpdateEngine
from repro.core.evaluation import EvaluationOptions, evaluate
from repro.core.grounding import _body_plan, match_body_dynamic, match_rule
from repro.core.plans import rule_plan, var_sort_key
from repro.core.query import PreparedQuery
from repro.lang.parser import parse_body
from repro.workloads.enterprise import (
    enterprise_base,
    enterprise_update_program,
    hypothetical_base,
    hypothetical_program,
    paper_example_base,
    paper_example_program,
)


@pytest.fixture
def no_codegen(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")


@pytest.fixture
def with_codegen(monkeypatch):
    """Force codegen on — these tests assert the compiled executor is
    *active*, which the CI leg running everything under
    ``REPRO_NO_CODEGEN=1`` would otherwise falsify."""
    monkeypatch.setenv("REPRO_NO_CODEGEN", "0")


def _fired_sets(trace):
    return [
        {(f.rule_name, str(f.head), f.binding) for i in s.iterations for f in i.fired}
        for s in trace.strata
    ]


def _workloads():
    return [
        (paper_example_program(), paper_example_base()),
        (paper_example_program(), paper_example_base(bob_salary=4100)),
        (hypothetical_program(), hypothetical_base()),
        (
            enterprise_update_program(hpe_threshold=4000),
            enterprise_base(n_employees=40, overpaid_ratio=0.2, seed=7),
        ),
    ]


# ----------------------------------------------------------------------
# end-to-end parity on the paper workloads
# ----------------------------------------------------------------------


def test_compiled_execution_matches_interpreted_on_paper_workloads():
    """Full evaluations (multi-stratum, update atoms in bodies, negation,
    seeded delta iterations) agree between the compiled and interpreted
    paths: result base, fired-instance sets, linearity verdicts."""
    options_compiled = EvaluationOptions(collect_trace=True, compiled=True)
    options_interpreted = EvaluationOptions(collect_trace=True, compiled=False)
    for program, base in _workloads():
        fast = evaluate(program, base, options_compiled)
        slow = evaluate(program, base, options_interpreted)
        assert fast.result_base == slow.result_base
        assert fast.final_versions == slow.final_versions
        assert fast.iterations == slow.iterations
        assert _fired_sets(fast.trace) == _fired_sets(slow.trace)


def test_compiled_matcher_matches_interpreted_per_rule():
    for program, base in _workloads():
        for rule in program:
            compiled = match_rule_compiled(rule, base)
            if compiled is None:
                assert rule_plan(rule).full_plan is None
                continue
            interpreted = list(match_rule(rule, base))
            assert len(compiled) == len(interpreted)
            assert {frozenset(b.items()) for b in compiled} == {
                frozenset(b.items()) for b in interpreted
            }


# ----------------------------------------------------------------------
# slot layout and dedup keys
# ----------------------------------------------------------------------


def test_slot_layout_and_dedup_keys_agree_with_var_sort_key():
    """The dedup contract: a compiled body's key slots read back exactly
    the plan's ``key_vars`` — every body variable in ``var_sort_key``
    order — and the slot tuple is a permutation of them."""
    for program, _base in _workloads():
        for rule in program:
            body = compiled_body(tuple(rule.body))
            if body is None:
                continue
            plan = _body_plan(tuple(rule.body))
            assert tuple(body.slots[i] for i in body.key_slots) == plan.key_vars
            assert tuple(sorted(body.slots, key=var_sort_key)) == plan.key_vars
            assert body.generator_count == plan.generator_count


def test_key_getter_small_arities():
    """The 0-ary and 1-ary dedup-key special cases (plain ``itemgetter``
    would return a scalar for one slot and is unavailable for zero)."""
    base = paper_example_base()

    ground = compiled_body(parse_body("phil.isa -> empl"))
    assert ground is not None
    assert ground.key_slots == ()
    assert ground.key_getter(()) == ()
    assert ground.bindings(base) == [{}]

    single = compiled_body(parse_body("E.isa -> empl"))
    assert single is not None
    assert len(single.key_slots) == 1
    row = next(iter(single.fn(base, [()])))
    assert single.key_getter(row) == (row[single.key_slots[0]],)
    assert len(single.bindings(base)) == 2  # phil and bob


def test_compiled_body_is_cached():
    body = parse_body("E.isa -> empl, E.sal -> S")
    assert compiled_body(body) is compiled_body(tuple(body))


# ----------------------------------------------------------------------
# the REPRO_NO_CODEGEN escape hatch
# ----------------------------------------------------------------------


def test_escape_hatch_disables_codegen(no_codegen):
    assert not codegen_enabled()
    # The options default tracks the environment at construction time.
    assert EvaluationOptions().compiled is False
    # Prepared queries skip the compiled executor but still answer.
    query = PreparedQuery(parse_body("E.isa -> empl, E.sal -> S"))
    assert query.compiled is None
    base = paper_example_base()
    assert query.run(base) == query.run_unplanned(base)


def test_escape_hatch_results_identical(no_codegen):
    program, base = _workloads()[0]
    hatch = UpdateEngine().apply(program, base)
    assert hatch.new_base == UpdateEngine(compiled=True).apply(program, base).new_base


def test_codegen_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CODEGEN", raising=False)
    assert codegen_enabled()
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    assert not codegen_enabled()
    monkeypatch.setenv("REPRO_NO_CODEGEN", "0")
    assert codegen_enabled()


# ----------------------------------------------------------------------
# the prepared-query fast path
# ----------------------------------------------------------------------


def test_prepared_query_uses_compiled_executor(with_codegen):
    query = PreparedQuery(parse_body("E.isa -> empl, E.sal -> S"))
    assert query.compiled is not None
    base = enterprise_base(n_employees=30, overpaid_ratio=0.1, seed=3)
    assert query.run(base) == query.run_unplanned(base)


def test_match_body_prefers_compiled_and_agrees():
    from repro.core.grounding import match_body

    body = parse_body("E.isa -> empl, E.boss -> B, E.sal -> SE, B.sal -> SB, SE > SB")
    base = enterprise_base(n_employees=30, overpaid_ratio=0.3, seed=3)
    via_match_body = {frozenset(b.items()) for b in match_body(body, base)}
    dynamic = {frozenset(b.items()) for b in match_body_dynamic(body, base)}
    assert via_match_body == dynamic


# ----------------------------------------------------------------------
# the cache-registry surface
# ----------------------------------------------------------------------


def test_codegen_caches_registered():
    compiled_rule(paper_example_program().rules[0])  # ensure at least one entry
    stats = cache_stats()
    for name in ("codegen.rule", "codegen.body", "codegen.backend"):
        assert name in stats, f"{name} missing from cache_stats()"
    assert stats["codegen.rule"]["size"] >= 1
    backend = stats["codegen.backend"]
    assert backend["bodies_compiled"] >= 1
    assert {"seed_matchers_compiled", "batch_steps", "loop_steps"} <= set(backend)


def test_datalog_codegen_cache_registered():
    from repro.datalog.codegen import compiled_datalog_body
    from repro.workloads.synthetic import random_datalog_chain_program

    rule = random_datalog_chain_program(n_idb=1).rules[0]
    assert compiled_datalog_body(rule.body) is not None
    assert "datalog.codegen" in cache_stats()


def test_generated_source_is_inspectable():
    body = compiled_body(parse_body("E.isa -> empl, E.sal -> S"))
    assert body is not None
    assert "def _run(base, rows):" in body.source
