"""Tests for the query layer: prepared queries, index-driven plans, and
the deterministic answer ordering (including the mixed-type regression)."""

import pytest

from repro import parse_body, parse_object_base
from repro.core.plans import GENERATE, compile_plan
from repro.core.query import (
    PreparedQuery,
    prepare_query,
    query_literals,
    sorted_answers,
)
from repro.core.terms import Var


@pytest.fixture()
def base():
    return parse_object_base(
        """
        phil.isa -> empl.   phil.pos -> mgr.    phil.sal -> 4000.
        bob.isa -> empl.    bob.sal -> 4200.    bob.boss -> phil.
        eve.isa -> empl.    eve.sal -> 3100.    eve.boss -> phil.
        """
    )


# ----------------------------------------------------------------------
# the mixed-type sort regression (satellite fix)
# ----------------------------------------------------------------------


def test_query_literals_sorts_heterogeneous_answers(base):
    """``badge`` is int-valued for one employee and str-valued for another;
    sorting the answers used to raise ``TypeError: '<' not supported``."""
    hetero = parse_object_base(
        """
        phil.badge -> 17.
        bob.badge -> blue.
        eve.badge -> 4.
        """
    )
    answers = query_literals(hetero, parse_body("E.badge -> B"))
    assert {(a["E"], a["B"]) for a in answers} == {
        ("phil", 17),
        ("bob", "blue"),
        ("eve", 4),
    }
    # numeric values sort numerically and before strings
    assert [a["B"] for a in answers] == [4, 17, "blue"]
    # and the order is a pure function of the answer set
    assert answers == query_literals(hetero, parse_body("E.badge -> B"))


def test_numeric_answers_sort_numerically_not_lexicographically():
    base = parse_object_base("e.n -> 900.  e.n -> 10000.  e.n -> 2000.")
    answers = query_literals(base, parse_body("e.n -> S"))
    assert [a["S"] for a in answers] == [900, 2000, 10000]


def test_sorted_answers_dedupe():
    left, right = Var("X"), Var("Y")
    from repro.core.terms import Oid

    rows = [{left: Oid(1), right: Oid("a")}, {left: Oid(1), right: Oid("a")}]
    assert len(sorted_answers(rows, dedupe=True)) == 1
    assert len(sorted_answers(rows)) == 2


# ----------------------------------------------------------------------
# prepared queries
# ----------------------------------------------------------------------


def test_prepared_query_matches_per_call_and_reference(base):
    text = "E.isa -> empl, E.sal -> S"
    prepared = prepare_query(text)
    per_call = query_literals(base, parse_body(text))
    assert prepared.run(base) == per_call
    assert prepared.run_unplanned(base) == per_call
    assert len(per_call) == 3


def test_prepare_query_is_idempotent_and_hashable(base):
    first = prepare_query("E.sal -> S")
    again = prepare_query(first)
    assert again is first
    other = prepare_query("E.sal -> S", name="renamed")
    assert other == first and hash(other) == hash(first)
    assert prepare_query(parse_body("E.sal -> S")) == first


def test_prepared_query_with_constants_uses_arg_index(base):
    """A query with an unbound host but a constant result column must plan
    a secondary-index access path, and still answer correctly."""
    body = parse_body("E.isa -> empl, E.boss -> phil")
    plan = compile_plan(body)
    generate_steps = [s for s in plan.steps if s.action == GENERATE]
    assert generate_steps and all(s.index_cols for s in generate_steps)
    assert -1 in generate_steps[0].index_cols  # the constant result column
    answers = PreparedQuery(body).run(base)
    assert {a["E"] for a in answers} == {"bob", "eve"}


def test_indexed_and_dynamic_matchers_agree_on_join(base):
    prepared = prepare_query(
        "E.isa -> empl, E.boss -> B, E.sal -> SE, B.sal -> SB, SE < SB"
    )
    assert prepared.run(base) == prepared.run_unplanned(base)
    assert {a["E"] for a in prepared.run(base)} == {"eve"}


def test_signature_detects_relevant_and_irrelevant_deltas(base):
    from repro.core.facts import Fact
    from repro.core.objectbase import Delta
    from repro.core.terms import Oid

    prepared = prepare_query("E.boss -> B")
    relevant = Delta()
    relevant.record([Fact(Oid("amy"), "boss", (), Oid("phil"))], [])
    irrelevant = Delta()
    irrelevant.record([Fact(Oid("amy"), "sal", (), Oid(3000))], [])
    assert prepared.signature.affected_by(relevant)
    assert not prepared.signature.affected_by(irrelevant)
