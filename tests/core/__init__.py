"""Tests for core."""
