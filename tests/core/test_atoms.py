"""Unit tests for atoms and literals (Section 2.1 syntax objects)."""

import pytest

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.errors import ProgramError, TermError
from repro.core.facts import Fact
from repro.core.terms import Oid, UpdateKind, Var, VersionVar, wrap

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


class TestVersionAtom:
    def test_basic(self):
        atom = VersionAtom(wrap(MOD, Var("E")), "sal", (), Var("S"))
        assert atom.variables == {Var("E"), Var("S")}
        assert not atom.is_ground()
        assert str(atom) == "mod(E).sal -> S"

    def test_substitute_and_to_fact(self):
        atom = VersionAtom(Var("E"), "sal", (), Var("S"))
        ground = atom.substitute({Var("E"): Oid("henry"), Var("S"): Oid(250)})
        assert ground.is_ground()
        assert ground.to_fact() == Fact(Oid("henry"), "sal", (), Oid(250))

    def test_to_fact_requires_ground(self):
        with pytest.raises(TermError):
            VersionAtom(Var("E"), "sal", (), Oid(1)).to_fact()

    def test_footnote1_no_versions_in_results(self):
        with pytest.raises(TermError):
            VersionAtom(Oid("o"), "m", (), wrap(INS, Oid("x")))
        with pytest.raises(TermError):
            VersionAtom(Oid("o"), "m", (wrap(INS, Oid("x")),), Oid(1))

    def test_version_vars_not_allowed_in_results(self):
        with pytest.raises(TermError):
            VersionAtom(Oid("o"), "m", (), VersionVar("W"))

    def test_arguments(self):
        atom = VersionAtom(Var("G"), "dist", (Var("A"), Oid("b")), Var("D"))
        assert str(atom) == "G.dist@A,b -> D"
        assert atom.variables == {Var("G"), Var("A"), Var("D")}


class TestUpdateAtom:
    def test_insert(self):
        atom = UpdateAtom(INS, wrap(MOD, Var("E")), "isa", (), Oid("hpe"))
        assert str(atom) == "ins[mod(E)].isa -> hpe"
        assert atom.new_version() == wrap(INS, wrap(MOD, Var("E")))

    def test_modify_needs_both_results(self):
        atom = UpdateAtom(MOD, Var("E"), "sal", (), Var("S"), Var("S2"))
        assert str(atom) == "mod[E].sal -> (S, S2)"
        with pytest.raises(TermError):
            UpdateAtom(MOD, Var("E"), "sal", (), Var("S"))

    def test_only_modify_takes_second_result(self):
        with pytest.raises(TermError):
            UpdateAtom(INS, Var("E"), "sal", (), Var("S"), Var("S2"))

    def test_delete_all(self):
        atom = UpdateAtom(DEL, wrap(MOD, Var("E")), None, (), None, None, delete_all=True)
        assert str(atom) == "del[mod(E)].*"
        assert atom.variables == {Var("E")}

    def test_delete_all_only_for_delete(self):
        with pytest.raises(ProgramError):
            UpdateAtom(INS, Var("E"), None, (), None, None, delete_all=True)

    def test_delete_all_carries_no_application(self):
        with pytest.raises(ProgramError):
            UpdateAtom(DEL, Var("E"), "m", (), Oid(1), None, delete_all=True)

    def test_exists_cannot_be_updated(self):
        # the system method of Section 3 never appears in update-terms
        with pytest.raises(ProgramError):
            UpdateAtom(INS, Var("E"), "exists", (), Var("E"))

    def test_substitution(self):
        atom = UpdateAtom(MOD, Var("E"), "sal", (), Var("S"), Var("S2"))
        ground = atom.substitute(
            {Var("E"): Oid("henry"), Var("S"): Oid(250), Var("S2"): Oid(275)}
        )
        assert ground.is_ground()
        assert str(ground) == "mod[henry].sal -> (250, 275)"

    def test_result_needed(self):
        with pytest.raises(TermError):
            UpdateAtom(INS, Var("E"), "m", ())


class TestBuiltinAtom:
    def test_operators(self):
        atom = BuiltinAtom(">", Var("SE"), Var("SB"))
        assert atom.variables == {Var("SE"), Var("SB")}
        with pytest.raises(TermError):
            BuiltinAtom("~", Oid(1), Oid(2))

    def test_substitute(self):
        atom = BuiltinAtom("=", Var("X"), Oid(1))
        assert atom.substitute({Var("X"): Oid(1)}).is_ground()


class TestLiteral:
    def test_polarity(self):
        atom = VersionAtom(Var("E"), "pos", (), Oid("mgr"))
        positive = Literal(atom)
        negative = positive.negate()
        assert positive.positive and not negative.positive
        assert str(negative) == "not E.pos -> mgr"
        assert negative.negate() == positive

    def test_substitute_preserves_polarity(self):
        literal = Literal(VersionAtom(Var("E"), "m", (), Oid(1)), positive=False)
        assert not literal.substitute({Var("E"): Oid("a")}).positive
