"""Section 3 truth definitions, case by case.

These tests transcribe the paper's truth conditions for version-terms and
update-terms (in heads and bodies) directly; they are the semantic anchor
of the whole reproduction.
"""

import pytest

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.errors import BuiltinError, TermError
from repro.core.facts import Fact, exists_fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, UpdateKind, Var, wrap
from repro.core.truth import (
    builtin_atom_true,
    literal_true,
    update_atom_true_in_body,
    update_atom_true_in_head,
    version_atom_true,
)

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY
O = Oid


def base_with(*facts) -> ObjectBase:
    base = ObjectBase.from_triples([("henry", "sal", 250)])
    for fact in facts:
        base.add(fact)
    return base


def atom(kind, target, method="sal", args=(), result=O(250), result2=None):
    return UpdateAtom(kind, target, method, args, result, result2)


class TestVersionTermTruth:
    """Definition 1: v.m -> r is true iff it is in I."""

    def test_membership(self):
        base = base_with()
        assert version_atom_true(base, VersionAtom(O("henry"), "sal", (), O(250)))
        assert not version_atom_true(base, VersionAtom(O("henry"), "sal", (), O(300)))

    def test_version_host(self):
        version = wrap(MOD, O("henry"))
        base = base_with(Fact(version, "sal", (), O(275)), exists_fact(version))
        assert version_atom_true(base, VersionAtom(version, "sal", (), O(275)))
        assert not version_atom_true(base, VersionAtom(version, "sal", (), O(250)))

    def test_requires_ground(self):
        with pytest.raises(TermError):
            version_atom_true(base_with(), VersionAtom(Var("X"), "sal", (), O(250)))


class TestHeadTruth:
    """Definition 2: ins always; del/mod need v*.m -> r ∈ I."""

    def test_insert_always_true(self):
        base = base_with()
        assert update_atom_true_in_head(base, atom(INS, O("ghost"), result=O(1)))

    def test_delete_needs_existing_information(self):
        base = base_with()
        assert update_atom_true_in_head(base, atom(DEL, O("henry"), result=O(250)))
        assert not update_atom_true_in_head(base, atom(DEL, O("henry"), result=O(999)))

    def test_delete_checks_v_star_not_target(self):
        # del[mod(henry)] with no mod version: v* = henry
        base = base_with()
        target = wrap(MOD, O("henry"))
        assert update_atom_true_in_head(base, atom(DEL, target, result=O(250)))

    def test_modify_needs_old_value(self):
        base = base_with()
        assert update_atom_true_in_head(
            base, atom(MOD, O("henry"), result=O(250), result2=O(275))
        )
        assert not update_atom_true_in_head(
            base, atom(MOD, O("henry"), result=O(300), result2=O(275))
        )

    def test_no_v_star_makes_del_mod_false(self):
        base = base_with()
        assert not update_atom_true_in_head(base, atom(DEL, O("ghost")))
        assert not update_atom_true_in_head(
            base, atom(MOD, O("ghost"), result2=O(1))
        )

    def test_delete_all_true_iff_applications_exist(self):
        base = base_with()
        delete_all = UpdateAtom(DEL, O("henry"), None, (), None, None, delete_all=True)
        assert update_atom_true_in_head(base, delete_all)
        empty = ObjectBase()
        empty.add_object("lonely")  # only the exists bookkeeping
        lonely_delete = UpdateAtom(DEL, O("lonely"), None, (), None, None, delete_all=True)
        assert not update_atom_true_in_head(empty, lonely_delete)


class TestBodyInsertTruth:
    """Definition 3, ins: true iff ins(v).m -> r ∈ I."""

    def test_transition_must_have_happened(self):
        base = base_with()
        assert not update_atom_true_in_body(base, atom(INS, O("henry")))
        version = wrap(INS, O("henry"))
        base.add(Fact(version, "sal", (), O(250)))
        assert update_atom_true_in_body(base, atom(INS, O("henry")))


class TestBodyDeleteTruth:
    """Definition 3, del: v*.m -> r ∈ I, del(v) exists, del(v).m -> r ∉ I."""

    def _deleted_base(self):
        base = base_with(Fact(O("henry"), "isa", (), O("empl")))
        version = wrap(DEL, O("henry"))
        # the delete removed sal -> 250 but kept isa -> empl
        base.add(exists_fact(version))
        base.add(Fact(version, "isa", (), O("empl")))
        return base, version

    def test_true_delete(self):
        base, _ = self._deleted_base()
        assert update_atom_true_in_body(base, atom(DEL, O("henry"), result=O(250)))

    def test_false_when_old_value_never_held(self):
        base, _ = self._deleted_base()
        assert not update_atom_true_in_body(base, atom(DEL, O("henry"), result=O(999)))

    def test_false_when_fact_survived(self):
        base, _ = self._deleted_base()
        # isa -> empl was NOT deleted
        assert not update_atom_true_in_body(
            base, atom(DEL, O("henry"), method="isa", result=O("empl"))
        )

    def test_false_when_del_version_missing(self):
        base = base_with()
        assert not update_atom_true_in_body(base, atom(DEL, O("henry"), result=O(250)))

    def test_exists_fact_keeps_del_version_observable(self):
        # Section 3's motivation for `exists`: even a full delete leaves
        # del(v).exists -> o, so the transition stays testable.
        base = base_with()
        version = wrap(DEL, O("henry"))
        base.add(exists_fact(version))  # everything else deleted
        assert update_atom_true_in_body(base, atom(DEL, O("henry"), result=O(250)))


class TestBodyModifyTruth:
    """Definition 3, mod — including the subtle r = r' case."""

    def _modified_base(self):
        base = base_with()
        version = wrap(MOD, O("henry"))
        base.add(exists_fact(version))
        base.add(Fact(version, "sal", (), O(275)))
        return base, version

    def test_true_modify(self):
        base, _ = self._modified_base()
        assert update_atom_true_in_body(
            base, atom(MOD, O("henry"), result=O(250), result2=O(275))
        )

    def test_false_wrong_new_value(self):
        base, _ = self._modified_base()
        assert not update_atom_true_in_body(
            base, atom(MOD, O("henry"), result=O(250), result2=O(300))
        )

    def test_false_old_value_still_present(self):
        base, version = self._modified_base()
        base.add(Fact(version, "sal", (), O(250)))  # old value survived
        assert not update_atom_true_in_body(
            base, atom(MOD, O("henry"), result=O(250), result2=O(275))
        )

    def test_identity_modify_requires_value_kept(self):
        # mod[v].m -> (r, r): true iff v*.m -> r ∈ I and mod(v).m -> r ∈ I
        base = base_with()
        version = wrap(MOD, O("henry"))
        base.add(exists_fact(version))
        assert not update_atom_true_in_body(
            base, atom(MOD, O("henry"), result=O(250), result2=O(250))
        )
        base.add(Fact(version, "sal", (), O(250)))
        assert update_atom_true_in_body(
            base, atom(MOD, O("henry"), result=O(250), result2=O(250))
        )


class TestNegationAndLiterals:
    def test_negated_version_term(self):
        base = base_with()
        atom_ = VersionAtom(O("henry"), "sal", (), O(300))
        assert literal_true(base, Literal(atom_, positive=False))
        assert not literal_true(base, Literal(atom_, positive=True))

    def test_footnote2_negated_update_vs_negated_version_term(self):
        """The footnote-2 distinction: ¬del(v).m->r (version-term) is true
        when no del version exists at all, while ¬del[v].m->r (update-term)
        asks that the delete-transition did not happen."""
        base = base_with(Fact(O("henry"), "isa", (), O("empl")))
        version = wrap(DEL, O("henry"))

        negated_version_term = Literal(
            VersionAtom(version, "isa", (), O("empl")), positive=False
        )
        negated_update_term = Literal(
            atom(DEL, O("henry"), method="isa", result=O("empl")), positive=False
        )
        # no del version yet: both true, but for different reasons
        assert literal_true(base, negated_version_term)
        assert literal_true(base, negated_update_term)

        # delete happens: version exists without isa -> empl
        base.add(exists_fact(version))
        base.add(Fact(version, "sal", (), O(250)))
        assert literal_true(base, negated_version_term)       # still no fact there
        assert not literal_true(base, negated_update_term)    # transition happened!

    def test_delete_all_rejected_in_bodies(self):
        base = base_with()
        delete_all = UpdateAtom(DEL, O("henry"), None, (), None, None, delete_all=True)
        with pytest.raises(TermError):
            update_atom_true_in_body(base, delete_all)


class TestBuiltins:
    def test_comparisons(self):
        assert builtin_atom_true(BuiltinAtom(">", O(4200), O(4000)))
        assert builtin_atom_true(BuiltinAtom("<=", O(2), O(2)))
        assert builtin_atom_true(BuiltinAtom("!=", O("a"), O("b")))
        assert not builtin_atom_true(BuiltinAtom("<", O(5), O(5)))

    def test_equality_on_symbolic_oids(self):
        assert builtin_atom_true(BuiltinAtom("=", O("empl"), O("empl")))
        assert not builtin_atom_true(BuiltinAtom("=", O("empl"), O("mgr")))

    def test_numeric_equality_across_int_float(self):
        assert builtin_atom_true(BuiltinAtom("=", O(2), O(2.0)))

    def test_order_needs_numbers(self):
        with pytest.raises(BuiltinError):
            builtin_atom_true(BuiltinAtom("<", O("a"), O(1)))
