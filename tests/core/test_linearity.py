"""Version-linearity tests (Section 5 / experiment E7)."""

import pytest

from repro import UpdateEngine, parse_object_base, parse_program
from repro.core.errors import VersionLinearityError
from repro.core.facts import exists_fact
from repro.core.linearity import (
    LinearityTracker,
    check_version_linear,
    final_versions,
)
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, UpdateKind, wrap

O = Oid
INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


class TestTracker:
    def test_linear_chain_accepted(self):
        tracker = LinearityTracker()
        tracker.observe(O("o"))
        tracker.observe(wrap(MOD, O("o")))
        tracker.observe(wrap(DEL, wrap(MOD, O("o"))))
        assert tracker.latest[O("o")] == wrap(DEL, wrap(MOD, O("o")))

    def test_incomparable_versions_rejected(self):
        tracker = LinearityTracker()
        tracker.observe(wrap(MOD, O("o")))
        with pytest.raises(VersionLinearityError) as excinfo:
            tracker.observe(wrap(DEL, O("o")))
        assert excinfo.value.object_id == O("o")

    def test_order_independence_of_violation(self):
        tracker = LinearityTracker()
        tracker.observe(wrap(DEL, O("o")))
        with pytest.raises(VersionLinearityError):
            tracker.observe(wrap(MOD, O("o")))

    def test_older_stage_resurfacing_is_fine(self):
        tracker = LinearityTracker()
        tracker.observe(wrap(DEL, wrap(MOD, O("o"))))
        tracker.observe(wrap(MOD, O("o")))  # comparable: subterm
        assert tracker.latest[O("o")] == wrap(DEL, wrap(MOD, O("o")))

    def test_independent_objects_do_not_interact(self):
        tracker = LinearityTracker()
        tracker.observe(wrap(MOD, O("a")))
        tracker.observe(wrap(DEL, O("b")))  # different object: fine

    def test_seeding_from_base(self):
        base = parse_object_base("a.m -> 1.")
        tracker = LinearityTracker()
        tracker.seed_from(base)
        assert tracker.latest[O("a")] == O("a")


class TestPosterioriCheck:
    def _base_with_versions(self, *versions) -> ObjectBase:
        base = parse_object_base("o.m -> 1.")
        for version in versions:
            base.add(exists_fact(version))
        return base

    def test_linear_result(self):
        base = self._base_with_versions(
            wrap(MOD, O("o")), wrap(INS, wrap(MOD, O("o")))
        )
        finals = check_version_linear(base)
        assert finals[O("o")] == wrap(INS, wrap(MOD, O("o")))

    def test_nonlinear_result(self):
        base = self._base_with_versions(wrap(MOD, O("o")), wrap(DEL, O("o")))
        with pytest.raises(VersionLinearityError):
            check_version_linear(base)

    def test_final_versions_alias(self):
        base = self._base_with_versions(wrap(MOD, O("o")))
        assert final_versions(base)[O("o")] == wrap(MOD, O("o"))


class TestSection5Example:
    """The paper's own violation: mod[o].m -> (a,b) and del[o].m -> a."""

    PROGRAM = """
        m: mod[o].m -> (a, b) <= o.trigger -> yes.
        d: del[o].m -> a <= o.trigger -> yes.
    """

    def test_violation_detected_during_evaluation(self):
        base = parse_object_base("o.m -> a. o.trigger -> yes.")
        program = parse_program(self.PROGRAM)
        with pytest.raises(VersionLinearityError):
            UpdateEngine().apply(program, base)

    def test_program_passes_when_only_one_rule_fires(self):
        base = parse_object_base("o.m -> a.")  # no trigger: nothing fires
        program = parse_program(self.PROGRAM)
        result = UpdateEngine().apply(program, base)
        assert result.final_versions[O("o")] == O("o")

    def test_posteriori_check_catches_it_too(self):
        base = parse_object_base("o.m -> a. o.trigger -> yes.")
        program = parse_program(self.PROGRAM)
        engine = UpdateEngine(check_linearity=False)
        outcome = engine.evaluate(program, base)
        with pytest.raises(VersionLinearityError):
            check_version_linear(outcome.result_base)
