"""Unit and differential tests for the rule matcher.

The matcher is an optimisation layer over the truth functions; the key
property is equivalence with the brute-force active-domain enumeration
(the paper's "∀-quantified over O" read literally).
"""

from hypothesis import given, settings, strategies as st

from repro import parse_object_base, parse_rule
from repro.core.grounding import match_rule, match_rule_bruteforce
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Var


def bindings_set(iterable):
    return {frozenset((v.name, o.value) for v, o in b.items()) for b in iterable}


BASE = parse_object_base(
    """
    phil.isa -> empl.  phil.pos -> mgr.  phil.sal -> 4000.
    bob.isa -> empl.   bob.sal -> 4200.  bob.boss -> phil.
    """
)


class TestBasicMatching:
    def test_single_atom(self):
        rule = parse_rule("ins[E].t -> 1 <= E.isa -> empl.")
        assert bindings_set(match_rule(rule, BASE)) == {
            frozenset({("E", "phil")}),
            frozenset({("E", "bob")}),
        }

    def test_join_through_shared_variable(self):
        rule = parse_rule("ins[E].t -> 1 <= E.boss -> B, B.pos -> mgr.")
        assert bindings_set(match_rule(rule, BASE)) == {
            frozenset({("E", "bob"), ("B", "phil")})
        }

    def test_negation_filters(self):
        rule = parse_rule("ins[E].t -> 1 <= E.isa -> empl, not E.pos -> mgr.")
        assert bindings_set(match_rule(rule, BASE)) == {frozenset({("E", "bob")})}

    def test_comparison_filters(self):
        rule = parse_rule("ins[E].t -> 1 <= E.sal -> S, S > 4100.")
        assert bindings_set(match_rule(rule, BASE)) == {
            frozenset({("E", "bob"), ("S", 4200)})
        }

    def test_equality_binds(self):
        rule = parse_rule("mod[E].sal -> (S, S2) <= E.sal -> S, S2 = S * 2.")
        results = bindings_set(match_rule(rule, BASE))
        assert frozenset({("E", "phil"), ("S", 4000), ("S2", 8000)}) in results

    def test_constant_positions_prune(self):
        rule = parse_rule("ins[E].t -> 1 <= E.sal -> 4000.")
        assert bindings_set(match_rule(rule, BASE)) == {frozenset({("E", "phil")})}

    def test_repeated_variable_within_atom(self):
        base = parse_object_base("a.likes -> a.  b.likes -> c.")
        rule = parse_rule("ins[X].t -> 1 <= X.likes -> X.")
        assert bindings_set(match_rule(rule, base)) == {frozenset({("X", "a")})}

    def test_no_duplicate_bindings(self):
        # two ways to derive the same binding must yield it once
        base = parse_object_base("a.m -> 1.  a.m -> 2.")
        rule = parse_rule("ins[X].t -> 1 <= X.m -> V1, X.m -> V2.")
        results = list(match_rule(rule, base))
        keys = [frozenset((v.name, o.value) for v, o in b.items()) for b in results]
        assert len(keys) == len(set(keys)) == 4

    def test_arithmetic_on_symbolic_fails_candidate_not_run(self):
        base = parse_object_base("a.m -> blue.  b.m -> 3.")
        rule = parse_rule("ins[X].t -> V2 <= X.m -> V, V2 = V + 1.")
        # 'blue' + 1 is a type error: that candidate dies, b survives
        assert bindings_set(match_rule(rule, base)) == {
            frozenset({("X", "b"), ("V", 3), ("V2", 4)})
        }


class TestVersionPatternMatching:
    def test_var_host_never_matches_versions(self):
        from repro import UpdateEngine
        from repro.workloads import salary_raise_program

        result = UpdateEngine().evaluate(salary_raise_program(), BASE)
        # after the raise, matching E.sal -> S must still see only OIDs
        rule = parse_rule("ins[E].t -> 1 <= E.sal -> S.")
        hosts = {b[Var("E")] for b in match_rule(rule, result.result_base)}
        assert hosts == {Oid("phil"), Oid("bob")}

    def test_mod_pattern_matches_only_mod_versions(self):
        from repro import UpdateEngine
        from repro.workloads import salary_raise_program

        result = UpdateEngine().evaluate(salary_raise_program(), BASE)
        rule = parse_rule("ins[E].t -> 1 <= mod(E).sal -> S.")
        answers = bindings_set(match_rule(rule, result.result_base))
        assert answers == {
            frozenset({("E", "phil"), ("S", 4400.0)}),
            frozenset({("E", "bob"), ("S", 4620.0)}),
        }


class TestBodyUpdateTermGenerators:
    def _with_versions(self):
        from repro import UpdateEngine, parse_program

        program = parse_program(
            """
            m: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 1.
            d: del[mod(E)].boss -> B <= mod(E).boss -> B.
            """
        )
        return UpdateEngine().evaluate(program, BASE).result_base

    def test_positive_mod_generator(self):
        base = self._with_versions()
        rule = parse_rule("ins[E].t -> S2 <= mod[E].sal -> (S, S2).")
        answers = bindings_set(match_rule(rule, base))
        assert answers == {
            frozenset({("E", "phil"), ("S", 4000), ("S2", 4001)}),
            frozenset({("E", "bob"), ("S", 4200), ("S2", 4201)}),
        }

    def test_positive_del_generator(self):
        base = self._with_versions()
        rule = parse_rule("ins[E].t -> 1 <= del[mod(E)].boss -> B.")
        answers = bindings_set(match_rule(rule, base))
        assert answers == {frozenset({("E", "bob"), ("B", "phil")})}

    def test_positive_ins_generator(self):
        from repro import UpdateEngine, parse_program

        program = parse_program("i: ins[E].tag -> yes <= E.isa -> empl.")
        base = UpdateEngine().evaluate(program, BASE).result_base
        rule = parse_rule("ins[X].t -> 1 <= ins[E].tag -> yes, E.boss -> X.")
        answers = bindings_set(match_rule(rule, base))
        assert answers == {frozenset({("E", "bob"), ("X", "phil")})}


# ----------------------------------------------------------------------
# differential testing against the brute-force reference
# ----------------------------------------------------------------------

RULES = [
    "ins[X].t -> 1 <= X.m -> Y.",
    "ins[X].t -> 1 <= X.m -> Y, Y.m -> Z.",
    "ins[X].t -> 1 <= X.m -> Y, not Y.m -> X.",
    "ins[X].t -> V2 <= X.m -> V, V2 = V + V, V2 > 2.",
    "ins[X].t -> 1 <= X.m -> Y, X.n -> Y.",
    "ins[X].t -> 1 <= X.m -> V, not X.n -> V.",
]

value_strategy = st.one_of(st.sampled_from(["a", "b", "c"]), st.integers(0, 3))
fact_strategy = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.sampled_from(["m", "n"]),
    value_strategy,
)


@settings(max_examples=40, deadline=None)
@given(st.lists(fact_strategy, max_size=10), st.sampled_from(RULES))
def test_matcher_equals_bruteforce(facts, rule_text):
    base = ObjectBase.from_triples(facts)
    rule = parse_rule(rule_text)
    fast = bindings_set(match_rule(rule, base))
    slow = bindings_set(match_rule_bruteforce(rule, base))
    assert fast == slow
