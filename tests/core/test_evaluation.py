"""Unit tests for bottom-up evaluation (Section 4) and its options."""

import pytest

from repro import UpdateEngine, parse_object_base, parse_program
from repro.core.errors import EvaluationLimitError, ProgramError, SafetyError
from repro.core.evaluation import EvaluationOptions, evaluate
from repro.core.facts import Fact
from repro.core.terms import Oid, UpdateKind, wrap

O = Oid
INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


class TestBasics:
    def test_input_base_never_mutated(self):
        base = parse_object_base("a.m -> 1.")
        snapshot = base.copy()
        evaluate(parse_program("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1."), base)
        assert base == snapshot

    def test_result_contains_old_and_new_versions(self):
        base = parse_object_base("a.m -> 1.")
        outcome = evaluate(
            parse_program("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1."), base
        )
        assert Fact(O("a"), "m", (), O(1)) in outcome.result_base
        assert Fact(wrap(MOD, O("a")), "m", (), O(2)) in outcome.result_base

    def test_fixpoint_reached(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.")
        first = evaluate(program, base)
        # running again on the result changes nothing (mod(a) is active and
        # already carries the modified value; a's state is untouched)
        second = evaluate(program, first.result_base)
        assert second.result_base == first.result_base

    def test_safety_checked_by_default(self):
        base = parse_object_base("a.m -> 1.")
        with pytest.raises(SafetyError):
            evaluate(parse_program("r: ins[X].t -> Y <= X.m -> V."), base)

    def test_iterations_counted(self):
        base = parse_object_base("a.m -> 1.")
        outcome = evaluate(
            parse_program("r: ins[X].t -> 1 <= X.m -> 1."), base
        )
        # one productive iteration plus the fixpoint check
        assert outcome.iterations == 2


class TestStratumOrdering:
    def test_lower_strata_feed_higher(self):
        base = parse_object_base("a.sal -> 100.")
        program = parse_program(
            """
            raise: mod[E].sal -> (S, S2) <= E.sal -> S, S2 = S * 2.
            flag:  ins[mod(E)].rich -> yes <= mod(E).sal -> S, S > 150.
            """
        )
        outcome = evaluate(program, base)
        assert Fact(
            wrap(INS, wrap(MOD, O("a"))), "rich", (), O("yes")
        ) in outcome.result_base

    def test_negation_sees_completed_stratum(self):
        base = parse_object_base("a.sal -> 100. b.sal -> 300.")
        program = parse_program(
            """
            raise: mod[E].sal -> (S, S2) <= E.sal -> S, S2 = S * 2.
            poor:  ins[mod(E)].poor -> yes <=
                mod(E).sal -> S, not mod(E).rich -> yes, S > 0.
            rich:  ins[mod(E)].rich -> yes <= mod(E).sal -> S, S > 500.
            """
        )
        # note: 'poor' negates the version ins(mod(E))?  No — it negates a
        # method of mod(E) written by 'rich' via ins(mod(E))... which is a
        # different version, so 'poor' tests mod(E) itself: never rich.
        outcome = evaluate(program, base)
        poor = {
            str(f.host)
            for f in outcome.result_base
            if f.method == "poor"
        }
        assert poor == {"ins(mod(a))", "ins(mod(b))"}


class TestRecursion:
    def test_recursive_inserts_reach_fixpoint(self):
        base = parse_object_base(
            "a.next -> b. b.next -> c. c.next -> d. a.isa -> node. "
            "b.isa -> node. c.isa -> node. d.isa -> node."
        )
        program = parse_program(
            """
            r1: ins[X].reach -> Y <= X.isa -> node, X.next -> Y.
            r2: ins[X].reach -> Z <= ins(X).reach -> Y, Y.next -> Z.
            """
        )
        outcome = evaluate(program, base)
        reach_a = {
            f.result.value
            for f in outcome.result_base.facts_by_host_method(
                wrap(INS, O("a")), "reach", 0
            )
        }
        assert reach_a == {"b", "c", "d"}

    def test_value_generating_recursion_hits_cap(self):
        base = parse_object_base("a.n -> 1. a.isa -> counter.")
        program = parse_program(
            """
            r1: ins[X].n -> V2 <= X.isa -> counter, X.n -> V, V2 = V + 1.
            r2: ins[X].n -> V2 <= ins(X).n -> V, V2 = V + 1.
            """
        )
        with pytest.raises(EvaluationLimitError):
            evaluate(
                program, base, EvaluationOptions(max_iterations_per_stratum=50)
            )


class TestOptions:
    def test_max_version_depth_guard(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.")
        with pytest.raises(EvaluationLimitError):
            evaluate(program, base, EvaluationOptions(max_version_depth=0))
        evaluate(program, base, EvaluationOptions(max_version_depth=1))

    def test_version_vars_rejected_in_heads(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program("r: ins[?W].t -> 1 <= ?W.m -> V.")
        with pytest.raises(ProgramError) as excinfo:
            evaluate(program, base)
        assert "version variable" in str(excinfo.value)

    def test_trace_collection(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program("r: ins[X].t -> 1 <= X.m -> 1.")
        outcome = evaluate(program, base, EvaluationOptions(collect_trace=True))
        assert outcome.trace.total_fired >= 1
        assert outcome.trace.strata[0].rule_names == ("r",)

    def test_engine_with_options(self):
        engine = UpdateEngine().with_options(collect_trace=True)
        assert engine.options.collect_trace
        assert not UpdateEngine().options.collect_trace


class TestExactlyOnceClaim:
    """E1: the Section 2.1 claim — each employee is raised exactly once."""

    def test_single_raise(self):
        base = parse_object_base(
            "h.isa -> empl. h.sal -> 100. m.isa -> empl. m.sal -> 200."
        )
        program = parse_program(
            "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, "
            "S2 = S * 1.1."
        )
        outcome = evaluate(program, base)
        for name, expected in (("h", 110.0), ("m", 220.0)):
            values = sorted(
                f.result.value
                for f in outcome.result_base.facts_by_host_method(
                    wrap(MOD, O(name)), "sal", 0
                )
            )
            assert values == [pytest.approx(expected)]

    def test_termination_without_guard(self):
        # the rule would loop forever in a naive one-level semantics;
        # version identities terminate it structurally
        base = parse_object_base("h.isa -> empl. h.sal -> 100.")
        program = parse_program(
            "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, "
            "S2 = S * 1.1."
        )
        outcome = evaluate(program, base)
        assert outcome.iterations <= 4
