"""Tests for the cache registry (bounded plan caches + stats hook) and
symbol interning."""

from repro.core import caches
from repro.core.facts import Fact
from repro.core.terms import Oid, intern_oid


def test_known_caches_are_registered_with_bounds():
    # Importing the engine modules registers their lru_caches.
    import repro.core.grounding  # noqa: F401
    import repro.core.plans  # noqa: F401
    import repro.datalog.evaluation  # noqa: F401

    stats = caches.cache_stats()
    for name in ("plans.rule_plan", "grounding.body_plan", "datalog.compile_plan"):
        assert name in stats, name
        assert stats[name]["maxsize"] == 4096  # bounded, not lru_cache(None)
        assert set(stats[name]) >= {"hits", "misses", "size", "maxsize"}
    assert "terms.oid_intern" in stats


def test_cache_stats_move_after_use():
    from repro import parse_body
    from repro.core.grounding import _body_plan

    before = caches.cache_stats()["grounding.body_plan"]
    body = parse_body("Zz.cache_probe -> R")
    _body_plan(tuple(body))
    _body_plan(tuple(body))
    after = caches.cache_stats()["grounding.body_plan"]
    assert after["misses"] >= before["misses"] + 1
    assert after["hits"] >= before["hits"] + 1


def test_intern_oid_returns_canonical_instance():
    a = intern_oid("phil")
    assert intern_oid("phil") is a
    assert intern_oid(Oid("phil")) is a
    assert a == Oid("phil")
    # ints and floats with equal values stay distinct interned objects
    one, one_f = intern_oid(1), intern_oid(1.0)
    assert one is not one_f
    assert isinstance(one.value, int) and isinstance(one_f.value, float)


def test_fact_methods_are_interned():
    left = Fact(Oid("a"), "some_method_name", (), Oid(1))
    right = Fact(Oid("b"), "some_method_" + "name", (), Oid(2))
    assert left.method is right.method
