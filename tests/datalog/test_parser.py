"""Tests for the Datalog concrete syntax."""

import pytest

from repro.core.terms import Oid, Var
from repro.datalog import (
    DatalogEngine,
    parse_datalog,
    parse_datalog_database,
    parse_datalog_program,
)
from repro.lang.errors import ParseError


class TestParsing:
    def test_rules_and_facts_split(self):
        program, database = parse_datalog(
            """
            edge(a, b).  edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        assert len(program) == 2
        assert len(database) == 2

    def test_named_rules(self):
        program = parse_datalog_program("base: p(X) :- q(X).")
        assert program.rules[0].name == "base"

    def test_builtins(self):
        program = parse_datalog_program(
            "big(X) :- num(X), X > 3.\ndouble(X, D) :- num(X), D = X * 2."
        )
        assert len(program.rules[0].body) == 2

    def test_negation(self):
        program = parse_datalog_program(
            "iso(X) :- node(X), not linked(X).\niso2(X) :- node(X), ~linked(X)."
        )
        for rule in program:
            assert not rule.body[1].positive

    def test_zero_arity(self):
        program, database = parse_datalog("go().\nready() :- go().")
        assert ("go", ()) in database
        assert len(program) == 1

    def test_negative_numbers_and_strings(self):
        _program, database = parse_datalog("t(-3, 'Hello World').")
        assert ("t", (Oid(-3), Oid("Hello World"))) in database

    def test_le_spelling_hint(self):
        with pytest.raises(ParseError):
            parse_datalog_program("p(X) :- q(X), X <= 3.")
        parse_datalog_program("p(X) :- q(X), X =< 3.")

    def test_mode_guards(self):
        with pytest.raises(ParseError):
            parse_datalog_program("edge(a, b).")
        with pytest.raises(ParseError):
            parse_datalog_database("p(X) :- q(X).")

    def test_variables_by_case(self):
        program = parse_datalog_program("p(X, a) :- q(X, _y).")
        head = program.rules[0].head
        assert head.args == (Var("X"), Oid("a"))


class TestEndToEnd:
    def test_parsed_program_runs(self):
        program, edb = parse_datalog(
            """
            edge(a, b).  edge(b, c).  edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            top(X) :- edge(X, Y), not path(Y, X).
            """
        )
        result = DatalogEngine().run(program, edb)
        assert len(result.rows("path", 2)) == 6
        assert DatalogEngine.query(result, "top", (None,)) == [("a",), ("b",), ("c",)]

    def test_arithmetic_end_to_end(self):
        program, edb = parse_datalog(
            """
            num(2). num(5).
            double(X, D) :- num(X), D = X * 2.
            """
        )
        result = DatalogEngine().run(program, edb)
        assert DatalogEngine.query(result, "double", (None, None)) == [(2, 4), (5, 10)]
