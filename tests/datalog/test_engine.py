"""Tests for the Datalog substrate: stratification, modes, built-ins."""

import pytest

from repro.core.atoms import BuiltinAtom
from repro.core.errors import ProgramError, SafetyError, StratificationError
from repro.core.exprs import BinOp
from repro.core.terms import Oid, Var
from repro.datalog import Database, DatalogEngine, DatalogProgram, stratify_datalog
from repro.datalog.ast import DatalogLiteral as L
from repro.datalog.ast import DatalogRule, PredicateAtom

A = DatalogEngine.atom


def tc_program(extra=()):
    return DatalogProgram(
        [
            DatalogRule(A("path", "X", "Y"), (L(A("edge", "X", "Y")),), "base"),
            DatalogRule(
                A("path", "X", "Z"),
                (L(A("path", "X", "Y")), L(A("edge", "Y", "Z"))),
                "step",
            ),
            *extra,
        ]
    )


CHAIN = Database.from_tuples(
    [("edge", "a", "b"), ("edge", "b", "c"), ("edge", "c", "d")]
)


class TestModes:
    @pytest.mark.parametrize("mode", ["naive", "seminaive", "inflationary"])
    def test_transitive_closure(self, mode):
        result = DatalogEngine(mode).run(tc_program(), CHAIN)
        assert DatalogEngine.query(result, "path", (None, None)) == [
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        ]

    def test_modes_agree_on_stratified_program(self):
        program = tc_program(
            (
                DatalogRule(A("node", "X"), (L(A("edge", "X", "Y")),), "n1"),
                DatalogRule(A("node", "Y"), (L(A("edge", "X", "Y")),), "n2"),
                DatalogRule(
                    A("unreach", "X", "Y"),
                    (
                        L(A("node", "X")),
                        L(A("node", "Y")),
                        L(A("path", "X", "Y"), False),
                    ),
                    "un",
                ),
            )
        )
        naive = DatalogEngine("naive").run(program, CHAIN)
        seminaive = DatalogEngine("seminaive").run(program, CHAIN)
        assert naive == seminaive

    def test_edb_untouched(self):
        before = CHAIN.copy()
        DatalogEngine().run(tc_program(), CHAIN)
        assert CHAIN == before

    def test_unknown_mode(self):
        with pytest.raises(ProgramError):
            DatalogEngine("magic")


class TestBuiltins:
    def test_arithmetic_binding(self):
        program = DatalogProgram(
            [
                DatalogRule(
                    A("double", "X", "D"),
                    (
                        L(A("num", "X")),
                        L(BuiltinAtom("=", Var("D"), BinOp("*", Var("X"), Oid(2)))),
                    ),
                )
            ]
        )
        edb = Database.from_tuples([("num", 2), ("num", 5)])
        result = DatalogEngine().run(program, edb)
        assert DatalogEngine.query(result, "double", (None, None)) == [(2, 4), (5, 10)]

    def test_comparison_filter(self):
        program = DatalogProgram(
            [
                DatalogRule(
                    A("big", "X"),
                    (L(A("num", "X")), L(BuiltinAtom(">", Var("X"), Oid(3)))),
                )
            ]
        )
        edb = Database.from_tuples([("num", 2), ("num", 5)])
        result = DatalogEngine().run(program, edb)
        assert DatalogEngine.query(result, "big", (None,)) == [(5,)]


class TestStratification:
    def test_negation_strata(self):
        program = tc_program(
            (
                DatalogRule(
                    A("iso", "X"),
                    (L(A("edge", "X", "Y")), L(A("path", "Y", "X"), False)),
                    "iso",
                ),
            )
        )
        strat = stratify_datalog(program)
        assert strat.predicate_stratum[("path", 2)] < strat.predicate_stratum[("iso", 1)]

    def test_unstratified_rejected(self):
        program = DatalogProgram(
            [
                DatalogRule(A("win", "X"), (L(A("move", "X", "Y")), L(A("win", "Y"), False))),
            ]
        )
        with pytest.raises(StratificationError):
            DatalogEngine().run(program, Database())

    def test_inflationary_accepts_unstratified(self):
        # inflationary semantics has no stratification requirement [AV91]
        program = DatalogProgram(
            [
                DatalogRule(A("win", "X"), (L(A("move", "X", "Y")), L(A("win", "Y"), False))),
            ]
        )
        edb = Database.from_tuples([("move", "a", "b"), ("move", "b", "c")])
        result = DatalogEngine("inflationary").run(program, edb)
        # every position with a move to a (currently) non-winning position wins
        winners = {row[0] for row in DatalogEngine.query(result, "win", (None,))}
        assert "a" in winners and "b" in winners


class TestSafety:
    def test_unsafe_rule_rejected(self):
        program = DatalogProgram(
            [DatalogRule(A("p", "X", "Y"), (L(A("q", "X")),))]
        )
        with pytest.raises(SafetyError):
            DatalogEngine().run(program, Database())

    def test_negation_only_variable_rejected(self):
        program = DatalogProgram(
            [DatalogRule(A("p", "X"), (L(A("q", "X")), L(A("r", "Y"), False)))]
        )
        with pytest.raises(SafetyError):
            DatalogEngine().run(program, Database())


class TestDatabase:
    def test_add_remove(self):
        db = Database()
        assert db.add("p", (Oid(1),))
        assert not db.add("p", (Oid(1),))
        assert ("p", (Oid(1),)) in db
        assert db.remove("p", (Oid(1),))
        assert not db.remove("p", (Oid(1),))

    def test_position_index_lazily_built_and_maintained(self):
        db = Database.from_tuples([("e", "a", "b"), ("e", "a", "c"), ("e", "b", "c")])
        assert len(db.rows_with("e", 2, 0, Oid("a"))) == 2
        db.add("e", (Oid("a"), Oid("d")))
        assert len(db.rows_with("e", 2, 0, Oid("a"))) == 3
        db.remove("e", (Oid("a"), Oid("b")))
        assert len(db.rows_with("e", 2, 0, Oid("a"))) == 2

    def test_equality_ignores_empty_relations(self):
        left = Database.from_tuples([("p", 1)])
        right = Database.from_tuples([("p", 1)])
        right.add("q", (Oid(1),))
        right.remove("q", (Oid(1),))
        assert left == right

    def test_atom_helper_case_convention(self):
        atom = A("edge", "X", "a", 3)
        assert atom.args == (Var("X"), Oid("a"), Oid(3))
