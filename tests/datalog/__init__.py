"""Tests for datalog."""
