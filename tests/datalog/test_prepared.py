"""Tests for the Datalog prepared-query layer: plan reuse, per-database
memoization stamped by predicate version counters, and invalidation."""

from repro.core.terms import Oid, Var
from repro.datalog import (
    Database,
    DatalogEngine,
    PreparedDatalogQuery,
    body_literal,
)
from repro.datalog.parser import parse_datalog


def _setup():
    program, edb = parse_datalog(
        """
        edge(a, b). edge(b, c). edge(c, d).
        path(X, Y) <= edge(X, Y).
        path(X, Z) <= edge(X, Y), path(Y, Z).
        """
    )
    return DatalogEngine().run(program, edb)


def _query(*atoms):
    return PreparedDatalogQuery(
        tuple(body_literal(atom) for atom in atoms), name="q"
    )


def test_memo_hit_and_answers():
    database = _setup()
    query = _query(DatalogEngine.atom("path", Var("X"), Var("Z")))
    first = query.run(database)
    assert {(a["X"], a["Z"]) for a in first} == {
        ("a", "b"), ("a", "c"), ("a", "d"),
        ("b", "c"), ("b", "d"), ("c", "d"),
    }
    assert query.run(database) is first
    assert query.stats()["hits"] == 1 and query.stats()["misses"] == 1


def test_dependency_change_invalidates():
    database = _setup()
    query = _query(DatalogEngine.atom("path", Var("X"), Var("Z")))
    query.run(database)
    database.add("path", (Oid("z"), Oid("w")))
    answers = query.run(database)
    assert {"X": "z", "Z": "w"} in answers
    assert query.stats()["misses"] == 2


def test_non_dependency_change_keeps_memo():
    database = _setup()
    query = _query(DatalogEngine.atom("path", Var("X"), Var("Z")))
    query.run(database)
    database.add("unrelated", (Oid(1),))
    query.run(database)
    assert query.stats()["hits"] == 1  # still served from the memo


def test_memo_is_per_database():
    query = _query(DatalogEngine.atom("edge", Var("X"), Var("Y")))
    one = Database.from_tuples([("edge", "a", "b")])
    two = Database.from_tuples([("edge", "x", "y")])
    assert query.run(one) != query.run(two)
    assert query.stats()["memoized_databases"] == 2
    # hits accrue per database independently
    query.run(one)
    query.run(two)
    assert query.stats()["hits"] == 2


def test_memo_entry_evicted_when_database_dies():
    import gc

    query = _query(DatalogEngine.atom("edge", Var("X"), Var("Y")))
    database = Database.from_tuples([("edge", "a", "b")])
    query.run(database)
    assert query.stats()["memoized_databases"] == 1
    del database
    gc.collect()
    assert query.stats()["memoized_databases"] == 0


def test_answers_match_engine_query():
    database = _setup()
    query = _query(DatalogEngine.atom("path", Oid("a"), Var("Z")))
    answers = {a["Z"] for a in query.run(database)}
    rows = DatalogEngine.query(database, "path", ("a", None))
    assert answers == {b for _a, b in rows}
