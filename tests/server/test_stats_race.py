"""Regression: ``StoreService.stats()`` vs a concurrent commit storm.

``stats()`` hands its document straight to ``json.dumps`` on the wire
path; before the ``_deep_snapshot`` fix the live cache/subscription dicts
inside it intermittently raised ``RuntimeError: dictionary changed size
during iteration`` while a commit was growing them.  This hammers the
exact interleaving: a writer thread commits in a tight loop (with an
active subscription so the subscription counters churn too) while the
main thread JSON-encodes ``stats()`` a few hundred times.
"""

from __future__ import annotations

import json
import threading

from repro.server import StoreService
from repro.storage import VersionedStore
from repro.workloads import paper_example_base

RAISE_PHIL = "r: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 1."


def test_stats_json_encodes_during_commit_storm():
    service = StoreService(
        VersionedStore(paper_example_base(), tag="initial")
    )
    pushes: list[dict] = []
    service.subscriptions.subscribe("phil.sal -> S", pushes.append)

    stop = threading.Event()
    writer_errors: list[BaseException] = []

    def committer() -> None:
        index = 0
        while not stop.is_set():
            try:
                service.apply(RAISE_PHIL, tag=f"u{index}")
            except BaseException as error:  # pragma: no cover
                writer_errors.append(error)
                return
            index += 1

    thread = threading.Thread(target=committer)
    thread.start()
    try:
        for _ in range(200):
            document = json.loads(json.dumps(service.stats()))
            assert document["revisions"] >= 1
            assert set(document["slowlog"]) == {
                "entries", "dropped", "capacity", "thresholds_ms",
            }
    finally:
        stop.set()
        thread.join()
    assert not writer_errors
    # the subscription really was live while we hammered stats()
    assert pushes
