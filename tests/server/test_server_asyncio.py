"""End-to-end asyncio transport tests, including the acceptance-criteria
differential: concurrent optimistic commits through the server leave a
journal byte-identical to the same programs applied sequentially in the
server's commit order, and wire subscription streams fold to fresh store
queries at every revision.
"""

import asyncio

import pytest

from repro.core.query import fold_answers, prepare_query
from repro.lang.parser import parse_program
from repro.server import AsyncClient, ConflictError, ReproServer, StoreService
from repro.storage import VersionedStore, load_store
from repro.storage.serialize import JOURNAL_FILE, append_revision, save_store
from repro.workloads import paper_example_base

SALARIES = "E.isa -> empl, E.sal -> S"
RAISE_PHIL = "r: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100."


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def socket_path(tmp_path):
    return str(tmp_path / "repro.sock")


class TestWireBasics:
    def test_ping_query_apply(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            client = await AsyncClient.connect(path=socket_path)
            assert (await client.call("ping"))["pong"] is True
            applied = await client.call("apply", program=RAISE_PHIL, tag="raise")
            assert applied["revision"] == 1
            answers = (await client.call("query", body="phil.sal -> S"))["answers"]
            await client.close()
            await server.close()
            return answers

        assert run(scenario()) == [{"S": 4100}]

    def test_subscription_push_crosses_connections(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            watcher = await AsyncClient.connect(path=socket_path)
            writer = await AsyncClient.connect(path=socket_path)
            subscribed = await watcher.call("subscribe", body=SALARIES)
            await writer.call("apply", program=RAISE_PHIL, tag="raise")
            push = await watcher.next_push(timeout=5.0)
            await watcher.close()
            await writer.close()
            await server.close()
            return subscribed, push

        subscribed, push = run(scenario())
        assert subscribed["answers"] == [
            {"E": "bob", "S": 4200}, {"E": "phil", "S": 4000},
        ]
        assert push["tag"] == "raise"
        assert push["added"] == [{"E": "phil", "S": 4100}]
        assert push["removed"] == [{"E": "phil", "S": 4000}]

    def test_malformed_line_gets_an_error_response(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            reader, writer = await asyncio.open_unix_connection(socket_path)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            writer.close()
            await writer.wait_closed()
            await server.close()
            return line

        import json

        response = json.loads(run(scenario()))
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_disconnect_cleans_up_sessions_and_subscriptions(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            client = await AsyncClient.connect(path=socket_path)
            await client.call("subscribe", body=SALARIES)
            await client.call("tx-begin")
            assert len(service.subscriptions) == 1
            await client.close()
            # give the server loop a tick to observe EOF and tear down
            for _ in range(50):
                if len(service.subscriptions) == 0:
                    break
                await asyncio.sleep(0.01)
            count = len(service.subscriptions)
            await server.close()
            return count

        assert run(scenario()) == 0


class TestSerializedConcurrentCommits:
    """The acceptance differential (see the module docstring)."""

    N_CLIENTS = 5
    COMMITS_PER_CLIENT = 3

    def test_concurrent_commits_replay_byte_identical(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        served_dir = tmp_path / "served"
        sequential_dir = tmp_path / "sequential"

        def client_program(client_index: int, step: int) -> str:
            # Every client repeatedly raises the same object's salary, so
            # concurrent sessions genuinely collide on the sal fact key
            # and exercise conflict + retry; the program text is unique
            # per (client, step) via the rule name.
            return (
                f"c{client_index}s{step}: mod[phil].sal -> (S, S2) <= "
                f"phil.sal -> S, S2 = S + {client_index + 1}."
            )

        async def scenario():
            service = StoreService.create(
                paper_example_base(), served_dir, tag="initial"
            )
            server = await ReproServer(service, path=socket_path).start()

            async def run_client(client_index: int):
                client = await AsyncClient.connect(path=socket_path)
                for step in range(self.COMMITS_PER_CLIENT):
                    program = client_program(client_index, step)
                    tag = f"c{client_index}-{step}"
                    for _attempt in range(50):
                        begun = await client.call("tx-begin")
                        session = begun["session"]
                        await client.call(
                            "tx-query", session=session, body="phil.sal -> S"
                        )
                        await client.call(
                            "tx-stage", session=session, program=program
                        )
                        try:
                            await client.call(
                                "tx-commit", session=session, tag=tag
                            )
                            break
                        except ConflictError:
                            await asyncio.sleep(0)  # yield, then retry
                    else:  # pragma: no cover - fails the test
                        raise AssertionError("commit never succeeded")
                await client.close()

            await asyncio.gather(
                *(run_client(index) for index in range(self.N_CLIENTS))
            )
            log = (await _one_shot(socket_path, "log"))["revisions"]
            await server.close()
            return log

        log = run(scenario())
        committed = log[1:]  # skip the initial revision
        assert len(committed) == self.N_CLIENTS * self.COMMITS_PER_CLIENT

        # Sequential replay: the same programs, applied in the server's
        # commit order to a plain single-writer store with journal appends.
        store = VersionedStore(paper_example_base(), tag="initial")
        save_store(store, sequential_dir)
        for entry in committed:
            client_index, step = (
                int(part) for part in entry["tag"][1:].split("-")
            )
            program = parse_program(client_program(client_index, step))
            store.apply(program, tag=entry["tag"])
            append_revision(store, sequential_dir)

        served_journal = (served_dir / JOURNAL_FILE).read_bytes()
        sequential_journal = (sequential_dir / JOURNAL_FILE).read_bytes()
        assert served_journal == sequential_journal

        # and the replayed stores agree fact-for-fact at every revision
        served_store = load_store(served_dir)
        sequential_store = load_store(sequential_dir)
        for index in range(len(served_store)):
            assert set(served_store.base_at(index)) == set(
                sequential_store.base_at(index)
            )

    def test_wire_subscription_stream_folds_to_fresh_queries(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")

        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            watcher = await AsyncClient.connect(path=socket_path)
            writer = await AsyncClient.connect(path=socket_path)
            subscribed = await watcher.call("subscribe", body=SALARIES)
            pushes = []
            for step in range(4):
                await writer.call(
                    "apply", program=RAISE_PHIL, tag=f"raise-{step}"
                )
                pushes.append(await watcher.next_push(timeout=5.0))
            await watcher.close()
            await writer.close()
            await server.close()
            return service.store, subscribed["answers"], pushes

        store, state, pushes = run(scenario())
        prepared = prepare_query(SALARIES)
        for push in pushes:
            state = fold_answers(state, push["added"], push["removed"])
            assert state == prepared.run(store.base_at(push["revision"]))
        assert state == prepared.run(store.current)


async def _one_shot(socket_path: str, cmd: str, **payload) -> dict:
    client = await AsyncClient.connect(path=socket_path)
    try:
        return await client.call(cmd, **payload)
    finally:
        await client.close()
