"""Degradation-under-load and teardown tests for the asyncio transport.

Covers the PR-6 server contracts: bounded outboxes that shed slow
subscribers into one coalesced ``lagged`` resync, hard-cap disconnects
with a typed retryable error, graceful shutdown that drains outboxes, and
connection teardown (vanishing clients release their sessions and
subscriptions; duplicate unsubscribes are harmless).

The pipelining trick: the server loop is single-threaded and its handler
only yields when the read buffer runs dry, so N requests written in one
frame batch are processed back-to-back — pushes for another connection
pile into its outbox faster than its drain task can run, which is exactly
the backlog the shedding policy exists for.
"""

import asyncio
import json

import pytest

from repro.core.query import fold_answers
from repro.server import (
    AsyncClient,
    ConnectionClosed,
    ReproServer,
    ServerLimits,
    StoreService,
)
from repro.server.protocol import encode
from repro.server.server import Outbox
from repro.storage import VersionedStore
from repro.workloads import paper_example_base

SALARIES = "E.isa -> empl, E.sal -> S"
RAISE_PHIL = "r: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100."


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def socket_path(tmp_path):
    return str(tmp_path / "repro.sock")


def _fold(state, push):
    """Fold one push message the way a client must: diffs compose, a
    lagged resync replaces."""
    if push.get("push") == "diff":
        return fold_answers(state, push["added"], push["removed"])
    if push.get("push") == "lagged":
        return list(push["answers"])
    return state


@pytest.fixture()
def idle_loop():
    """A live (not running) loop: Outbox wakeups post to it harmlessly."""
    loop = asyncio.new_event_loop()
    yield loop
    loop.close()


class TestOutboxShedding:
    """Unit tests of the bounded queue's policy, no sockets involved."""

    @staticmethod
    def _outbox(loop, *, soft=2, hard=10):
        return Outbox(loop, ServerLimits(outbox_soft=soft, outbox_hard=hard))

    @staticmethod
    def _diff(sid, revision):
        return {"push": "diff", "sid": sid, "revision": revision,
                "added": [], "removed": []}

    def test_diffs_over_the_soft_limit_coalesce_into_one_marker(self, idle_loop):
        outbox = self._outbox(idle_loop, soft=2)
        outbox.put(self._diff("q1", 1))
        outbox.put(self._diff("q1", 2))
        assert len(outbox) == 2 and outbox.shed == 0
        outbox.put(self._diff("q1", 3))  # trips the soft limit
        # both queued diffs and the new one are shed into one marker
        assert outbox.shed == 3
        assert len(outbox) == 1
        marker = outbox._items[0]
        assert marker.sid == "q1" and marker.from_revision == 1

    def test_lagging_sid_swallows_further_diffs_until_acknowledged(self, idle_loop):
        outbox = self._outbox(idle_loop, soft=2)
        outbox.put(self._diff("q1", 1))
        outbox.put(self._diff("q1", 2))
        outbox.put(self._diff("q1", 3))  # sheds all q1 diffs into the marker
        assert len(outbox) == 1 and outbox.shed == 3
        outbox.put(self._diff("q1", 4))  # covered by the pending resync
        assert outbox.shed == 4
        assert len(outbox) == 1  # still just the marker
        assert outbox.clear_lag("q1") == 1  # earliest shed revision
        outbox.put(self._diff("q1", 5))  # post-resync diffs flow again
        assert len(outbox) == 2

    def test_soft_limit_only_sheds_the_guilty_sid(self, idle_loop):
        outbox = self._outbox(idle_loop, soft=2)
        outbox.put({"id": 1, "ok": True})
        outbox.put(self._diff("q2", 1))
        outbox.put(self._diff("q1", 2))  # trips; only q1 diffs shed
        kept_kinds = [
            item.get("push") if isinstance(item, dict) else type(item).__name__
            for item in outbox._items
        ]
        assert kept_kinds == [None, "diff", "_Lagged"]

    def test_hard_cap_kills_with_a_typed_reason(self, idle_loop):
        outbox = self._outbox(idle_loop, soft=50, hard=3)
        for index in range(4):
            outbox.put({"id": index, "ok": True})
        assert outbox.kill_reason is not None
        assert "hard cap" in outbox.kill_reason
        # one kill marker, then the outbox goes deaf
        outbox.put({"id": 99, "ok": True})
        assert len(outbox) == 5  # 4 responses + the kill marker


class TestSlowSubscriberDegradation:
    def test_slow_subscriber_gets_coalesced_resync(self, socket_path):
        """A subscriber that cannot keep up is shed to one ``lagged`` push;
        folding it lands on exactly the fresh answers (bounded memory, no
        lost updates)."""
        commits = 8

        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            limits = ServerLimits(outbox_soft=1, outbox_hard=64)
            server = await ReproServer(
                service, path=socket_path, limits=limits
            ).start()
            watcher = await AsyncClient.connect(path=socket_path)
            subscribed = await watcher.call("subscribe", body=SALARIES)

            # pipeline every apply in one write: the handler processes them
            # without yielding, so the watcher's outbox backs up and sheds
            _reader, writer = await asyncio.open_unix_connection(socket_path)
            frames = b"".join(
                encode({"id": index, "cmd": "apply", "program": RAISE_PHIL,
                        "tag": f"raise-{index}"})
                for index in range(commits)
            )
            writer.write(frames)
            await writer.drain()

            state = list(subscribed["answers"])
            lagged = []
            revision = subscribed["revision"]
            while revision < commits:
                push = await watcher.next_push(timeout=5.0)
                state = _fold(state, push)
                if push.get("push") == "lagged":
                    lagged.append(push)
                    revision = push["to_revision"]
                else:
                    revision = push["revision"]
            fresh = (await watcher.call("query", body=SALARIES))["answers"]
            counters = (server.lagged_resyncs, server.overload_disconnects)
            writer.close()
            await watcher.close()
            await server.close()
            return state, fresh, lagged, counters

        state, fresh, lagged, (resyncs, disconnects) = run(scenario())
        assert state == fresh
        assert lagged, "the backlog never coalesced into a lagged resync"
        assert resyncs >= 1 and disconnects == 0
        for push in lagged:
            assert push["from_revision"] <= push["to_revision"]
            assert push["sid"] and push["query"]

    def test_hard_cap_disconnects_with_typed_error(self, socket_path):
        """A connection whose outbox overflows the hard cap receives one
        ``{"push": "closed", retryable: true}`` and is cut off."""

        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            limits = ServerLimits(outbox_soft=1000, outbox_hard=3)
            server = await ReproServer(
                service, path=socket_path, limits=limits
            ).start()
            reader, writer = await asyncio.open_unix_connection(socket_path)
            writer.write(
                b"".join(
                    encode({"id": index, "cmd": "ping"}) for index in range(10)
                )
            )
            await writer.drain()
            closed = None
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not line:
                    break  # server cut the connection
                frame = json.loads(line)
                if frame.get("push") == "closed":
                    closed = frame
            disconnects = server.overload_disconnects
            writer.close()
            await server.close()
            return closed, disconnects

        closed, disconnects = run(scenario())
        assert closed is not None
        assert closed["retryable"] is True
        assert "hard cap" in closed["error"]
        assert disconnects == 1


class TestGracefulShutdown:
    def test_shutdown_flushes_outboxes_and_says_goodbye(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            client = await AsyncClient.connect(path=socket_path)
            await client.call("subscribe", body=SALARIES)
            await server.shutdown(deadline=5.0)
            push = await client.next_push(timeout=5.0)
            # the link then dies; further requests fail fast and typed
            with pytest.raises(ConnectionClosed):
                await client.call("ping")
                await client.call("ping")
            await client.close()
            return push

        push = run(scenario())
        assert push["push"] == "shutdown"
        assert "shut" in push["reason"]

    def test_shutdown_refuses_new_connections(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            await server.shutdown(deadline=1.0)
            try:
                reader, writer = await asyncio.open_unix_connection(socket_path)
            except (ConnectionError, OSError):
                return "refused"
            # accepted by a lingering socket: the link must be dead anyway
            writer.write(encode({"id": 1, "cmd": "ping"}))
            try:
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=2.0)
            except (ConnectionError, OSError):
                return "refused"
            finally:
                writer.close()
            return "answered" if line else "refused"

        assert run(scenario()) == "refused"


class TestConnectionTeardown:
    def test_vanishing_client_releases_session_and_subscription(
        self, socket_path
    ):
        """A client that disappears mid-transaction must not leak its MVCC
        session or its subscriptions — and must not block later writers."""

        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            ghost = await AsyncClient.connect(path=socket_path)
            session = (await ghost.call("tx-begin"))["session"]
            await ghost.call(
                "tx-stage", session=session, program=RAISE_PHIL
            )
            await ghost.call("subscribe", body=SALARIES)
            assert len(service.subscriptions) == 1
            # vanish without tx-abort/unsubscribe/goodbye
            ghost._writer.transport.abort()
            await ghost.close()

            survivor = await AsyncClient.connect(path=socket_path)
            for _ in range(100):
                if len(service.subscriptions) == 0:
                    break
                await asyncio.sleep(0.01)
            applied = await survivor.call(
                "apply", program=RAISE_PHIL, tag="after-ghost"
            )
            subscriptions = len(service.subscriptions)
            head = (await survivor.call("query", body="phil.sal -> S"))[
                "answers"
            ]
            await survivor.close()
            await server.close()
            return applied, subscriptions, head

        applied, subscriptions, head = run(scenario())
        assert subscriptions == 0  # the ghost's live query is gone
        assert applied["revision"] == 1  # the staged-but-dead tx never landed
        assert head == [{"S": 4100}]

    def test_duplicate_unsubscribe_is_harmless(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            client = await AsyncClient.connect(path=socket_path)
            other = await AsyncClient.connect(path=socket_path)
            sid = (await client.call("subscribe", body=SALARIES))["sid"]
            first = await client.call("unsubscribe", sid=sid)
            second = await client.call("unsubscribe", sid=sid)
            foreign = await other.call("unsubscribe", sid=sid)
            alive = (await client.call("ping"))["pong"]
            await client.close()
            await other.close()
            await server.close()
            return first, second, foreign, alive

        first, second, foreign, alive = run(scenario())
        assert first["removed"] is True
        assert second["removed"] is False
        assert foreign["removed"] is False  # never someone else's sid
        assert alive is True

    def test_subscribe_then_disconnect_race(self, socket_path):
        """Subscribing and dropping the link while commits are in flight
        must neither crash the server nor leak the subscription."""

        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            writer_client = await AsyncClient.connect(path=socket_path)

            async def churn():
                for index in range(5):
                    await writer_client.call(
                        "apply", program=RAISE_PHIL, tag=f"race-{index}"
                    )

            async def flicker():
                for _ in range(5):
                    flaky = await AsyncClient.connect(path=socket_path)
                    await flaky.call("subscribe", body=SALARIES)
                    flaky._writer.transport.abort()
                    await flaky.close()

            await asyncio.gather(churn(), flicker())
            for _ in range(100):
                if len(service.subscriptions) == 0:
                    break
                await asyncio.sleep(0.01)
            remaining = len(service.subscriptions)
            head = (await writer_client.call("query", body="phil.sal -> S"))[
                "answers"
            ]
            await writer_client.close()
            await server.close()
            return remaining, head

        remaining, head = run(scenario())
        assert remaining == 0
        assert head == [{"S": 4500}]


class TestAsyncClientClose:
    def test_close_wakes_pending_push_waiters(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            client = await AsyncClient.connect(path=socket_path)
            waiter = asyncio.ensure_future(client.next_push())
            await asyncio.sleep(0.05)  # let the waiter block
            await client.close()
            try:
                await asyncio.wait_for(waiter, timeout=5.0)
            except ConnectionClosed:
                outcome = "closed"
            else:
                outcome = "hung-or-returned"
            await server.close()
            return outcome

        assert run(scenario()) == "closed"

    def test_close_is_idempotent_and_kills_pending_requests(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            client = await AsyncClient.connect(path=socket_path)
            await client.close()
            await client.close()  # second close must be a no-op
            try:
                await client.request("ping")
            except ConnectionClosed:
                outcome = "closed"
            else:
                outcome = "answered"
            await server.close()
            return outcome

        assert run(scenario()) == "closed"

    def test_server_death_fails_pending_request_waiters(self, socket_path):
        async def scenario():
            service = StoreService(VersionedStore(paper_example_base()))
            server = await ReproServer(service, path=socket_path).start()
            client = await AsyncClient.connect(path=socket_path)
            assert client.alive
            # one round-trip first, so the server has fully adopted the
            # connection before we cut it (close only cuts adopted links)
            assert (await client.call("ping"))["pong"] is True
            await server.close()
            try:
                await asyncio.wait_for(client.call("ping"), timeout=5.0)
            except ConnectionClosed:
                outcome = "closed"
            else:  # pragma: no cover - would be the bug
                outcome = "answered"
            alive = client.alive
            await client.close()
            return outcome, alive

        outcome, alive = run(scenario())
        assert outcome == "closed"
        assert alive is False
