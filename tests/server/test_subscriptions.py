"""Live queries: trigger-gated refresh, answer diffs, and the fold law.

The load-bearing differential test: folding a subscription's diff stream
over its initial answer set reproduces ``VersionedStore.query`` at every
revision.
"""

import pytest

from repro.core.query import diff_answers, fold_answers, prepare_query
from repro.server import StoreService, connect_local
from repro.storage import VersionedStore
from repro.workloads import paper_example_base

SALARIES = "E.isa -> empl, E.sal -> S"
ORG = "E.boss -> B"
RAISE_PHIL = "r: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100."
RAISE_BOB = "r: mod[bob].sal -> (S, S2) <= bob.sal -> S, S2 = S + 100."
ADD_BOSS = "b: ins[joe].boss -> phil <= phil.isa -> empl."


@pytest.fixture()
def service():
    return StoreService(VersionedStore(paper_example_base(), tag="initial"))


class TestAnswerDiffs:
    def test_diff_and_fold_round_trip(self):
        old = [{"E": "bob", "S": 4200}, {"E": "phil", "S": 4000}]
        new = [{"E": "bob", "S": 4200}, {"E": "joe", "S": 1}, {"E": "phil", "S": 4100}]
        added, removed = diff_answers(old, new)
        assert added == [{"E": "joe", "S": 1}, {"E": "phil", "S": 4100}]
        assert removed == [{"E": "phil", "S": 4000}]
        assert fold_answers(old, added, removed) == new

    def test_empty_diff(self):
        answers = [{"S": 1}]
        assert diff_answers(answers, list(answers)) == ([], [])
        assert fold_answers(answers, [], []) == answers

    def test_mixed_value_types_are_orderable(self):
        old = [{"S": "txt"}]
        new = [{"S": 5}, {"S": "txt"}]
        added, removed = diff_answers(old, new)
        assert fold_answers(old, added, removed) == new


class TestSubscriptions:
    def test_initial_answers_match_store(self, service):
        received = []
        subscription = service.subscriptions.subscribe(
            SALARIES, received.append, name="salaries"
        )
        assert subscription.answers == service.store.query(SALARIES)
        assert received == []  # initial state is the response, not a push

    def test_push_carries_the_exact_diff(self, service):
        received = []
        service.subscriptions.subscribe(SALARIES, received.append)
        service.apply(RAISE_PHIL, tag="raise")
        assert len(received) == 1
        push = received[0]
        assert push["push"] == "diff"
        assert push["revision"] == 1
        assert push["tag"] == "raise"
        assert push["added"] == [{"E": "phil", "S": 4100}]
        assert push["removed"] == [{"E": "phil", "S": 4000}]

    def test_unaffected_query_is_skipped_without_evaluation(self, service):
        received = []
        subscription = service.subscriptions.subscribe(ORG, received.append)
        service.apply(RAISE_PHIL)
        assert received == []
        assert subscription.skipped == 1
        assert subscription.refreshed == 0
        assert subscription.revision == 1  # still advanced to the head

    def test_affected_but_unchanged_sends_nothing(self, service):
        # ``bob.sal -> S`` shares the sal key with a phil-only raise: the
        # trigger fires (re-evaluation), but the answers are identical, so
        # no diff is pushed.
        received = []
        subscription = service.subscriptions.subscribe(
            "bob.sal -> S", received.append
        )
        service.apply(RAISE_PHIL)
        assert received == []
        assert subscription.refreshed == 1
        assert subscription.pushed == 0

    def test_shared_body_shares_refresh(self, service):
        a_received, b_received = [], []
        sub_a = service.subscriptions.subscribe(SALARIES, a_received.append)
        sub_b = service.subscriptions.subscribe(SALARIES, b_received.append)
        assert sub_a.query is sub_b.query  # one compiled query
        service.apply(RAISE_PHIL)
        assert sub_a.answers is sub_b.answers  # one refreshed answer list
        assert a_received[0]["added"] == b_received[0]["added"]

    def test_unsubscribe_stops_pushes(self, service):
        received = []
        subscription = service.subscriptions.subscribe(SALARIES, received.append)
        assert service.subscriptions.unsubscribe(subscription.id)
        service.apply(RAISE_PHIL)
        assert received == []
        assert not service.subscriptions.unsubscribe(subscription.id)

    def test_close_detaches_from_the_store(self, service):
        received = []
        service.subscriptions.subscribe(SALARIES, received.append)
        service.subscriptions.close()
        service.apply(RAISE_PHIL)
        assert received == []


class TestFoldDifferential:
    def test_folded_streams_equal_fresh_queries_at_every_revision(self, service):
        """The acceptance-criteria law: initial answers + folded diffs ==
        a fresh ``VersionedStore.query`` at every revision, per query."""
        queries = (SALARIES, ORG, "bob.sal -> S")
        client = connect_local(service)
        state = {
            text: client.subscribe(text)["answers"] for text in queries
        }
        programs = [
            (RAISE_PHIL, "p1"),
            (ADD_BOSS, "b1"),
            (RAISE_BOB, "r1"),
            (RAISE_PHIL, "p2"),
            ("noop: ins[phil].isa -> empl <= phil.isa -> empl.", "n1"),
        ]
        for text, tag in programs:
            client.apply(text, tag=tag)
            by_query = {}
            for push in client.pushes():
                by_query.setdefault(push["query"], []).append(push)
            for query_text in queries:
                for push in by_query.get(query_text, ()):
                    state[query_text] = fold_answers(
                        state[query_text], push["added"], push["removed"]
                    )
                # the folded client state equals a fresh evaluation at the
                # head revision the push stream brought us to
                fresh = prepare_query(query_text).run(service.store.current)
                assert state[query_text] == fresh, (query_text, tag)

    def test_fold_against_historic_revisions(self, service):
        """Replaying the stream fold step by step equals ``prepare.run``
        against ``base_at`` for each intermediate revision."""
        client = connect_local(service)
        initial = client.subscribe(SALARIES)["answers"]
        tags = ["a", "b", "c"]
        for tag in tags:
            client.apply(RAISE_PHIL, tag=tag)
        pushes = [p for p in client.pushes() if p["query"] == SALARIES]
        assert [p["revision"] for p in pushes] == [1, 2, 3]
        prepared = prepare_query(SALARIES)
        state = initial
        for push in pushes:
            state = fold_answers(state, push["added"], push["removed"])
            historic = prepared.run(service.store.base_at(push["revision"]))
            assert state == historic
