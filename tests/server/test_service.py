"""StoreService: MVCC sessions, optimistic commits, FIFO writers, durability."""

import threading
import time

import pytest

from repro.core.errors import VersionLinearityError
from repro.lang.parser import parse_program
from repro.server import ConflictError, SessionError, StoreService
from repro.server.service import _FIFOLock
from repro.storage import VersionedStore, load_store
from repro.storage.serialize import JOURNAL_FILE
from repro.workloads import paper_example_base

RAISE_PHIL = "r: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100."
RAISE_BOB = "r: mod[bob].sal -> (S, S2) <= bob.sal -> S, S2 = S + 100."
ADD_BOSS = "b: ins[joe].boss -> phil <= phil.isa -> empl."


@pytest.fixture()
def service():
    return StoreService(VersionedStore(paper_example_base(), tag="initial"))


class TestSessions:
    def test_session_reads_pinned_revision(self, service):
        session = service.begin()
        before = session.query("phil.sal -> S")
        service.apply(RAISE_PHIL, tag="raise")
        assert session.query("phil.sal -> S") == before
        assert service.query("phil.sal -> S") == [{"S": 4100}]

    def test_pinned_base_is_shared_not_copied(self, service):
        session = service.begin()
        assert session.base() is service.store.current

    def test_session_ids_are_unique(self, service):
        assert service.begin().id != service.begin().id

    def test_lifecycle_errors(self, service):
        session = service.begin()
        with pytest.raises(SessionError):
            session.commit()  # nothing staged
        session.stage(RAISE_PHIL)
        session.commit(tag="ok")
        with pytest.raises(SessionError):
            session.stage(RAISE_PHIL)
        with pytest.raises(SessionError):
            session.commit()
        aborted = service.begin()
        aborted.abort()
        with pytest.raises(SessionError):
            aborted.query("phil.sal -> S")


class TestOptimisticCommits:
    def test_disjoint_commit_succeeds(self, service):
        session = service.begin()
        session.query("E.boss -> B")  # reads no sal fact
        service.apply(RAISE_PHIL, tag="interim")
        session.stage(ADD_BOSS)
        outcome = session.commit(tag="mine")
        assert outcome.revision.tag == "mine"
        assert session.state == "committed"
        # Both the interim and the session's commit are in the chain.
        assert [r.tag for r in service.store.revisions()[1:]] == ["interim", "mine"]

    def test_read_write_conflict(self, service):
        session = service.begin()
        session.query("phil.sal -> S")
        service.apply(RAISE_PHIL, tag="sneaky")
        session.stage(ADD_BOSS)
        with pytest.raises(ConflictError) as excinfo:
            session.commit(tag="mine")
        conflict = excinfo.value
        assert conflict.retryable
        assert conflict.pinned == 0
        assert conflict.conflicting_index == 1
        assert conflict.conflicting_tag == "sneaky"
        assert session.state == "aborted"
        assert service.store.head.tag == "sneaky"  # nothing committed

    def test_write_footprint_conflict(self, service):
        # The staged program reads phil.sal; an interim commit changed it.
        session = service.begin()
        service.apply(RAISE_PHIL, tag="interim")
        session.stage(RAISE_PHIL)
        with pytest.raises(ConflictError):
            session.commit()

    def test_fact_key_granularity_is_conservative(self, service):
        # The footprint is key-level ((method, arity) + host shape), not
        # object-level: raising bob conflicts with an interim raise of
        # phil because both touch the ``sal`` key at base-object shape.
        # First-committer-wins; the loser retries (see run_transaction).
        session = service.begin()
        session.stage(RAISE_BOB)
        service.apply(RAISE_PHIL, tag="other-object")
        with pytest.raises(ConflictError):
            session.commit()

    def test_run_transaction_retries_to_success(self, service):
        # The work function conflicts on its first attempt (a concurrent
        # commit lands between begin and commit), then succeeds.
        interfered = []

        def work(session):
            session.query("phil.sal -> S")
            if not interfered:
                interfered.append(True)
                service.apply(RAISE_PHIL, tag="interference")
            session.stage(RAISE_BOB)

        outcome = service.run_transaction(work, tag="retried")
        assert outcome.revision.tag == "retried"
        assert service.query("bob.sal -> S") == [{"S": 4300}]

    def test_run_transaction_exhausts_attempts(self, service):
        def work(session):
            session.query("phil.sal -> S")
            service.apply(RAISE_PHIL)  # always interferes
            session.stage(RAISE_BOB)

        with pytest.raises(ConflictError):
            service.run_transaction(work, attempts=3)
        assert service._conflicts == 3


class TestCommitBatches:
    def test_multi_program_batch_commits_in_order(self, service):
        session = service.begin()
        session.stage(RAISE_PHIL).stage(RAISE_BOB)
        outcome = session.commit(tag="batch")
        assert [r.tag for r in outcome.revisions] == ["batch.0", "batch.1"]
        assert service.query("phil.sal -> S") == [{"S": 4100}]
        assert service.query("bob.sal -> S") == [{"S": 4300}]

    def test_batch_is_atomic_on_evaluation_error(self, service):
        # The second program derives incomparable versions of phil
        # (mod and del), which the linearity check rejects — the whole
        # batch must commit nothing.
        bad = (
            "a: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 1.\n"
            "b: del[phil].* <= phil.isa -> empl."
        )
        session = service.begin()
        session.stage(RAISE_BOB).stage(bad)
        with pytest.raises(VersionLinearityError):
            session.commit(tag="doomed")
        assert len(service.store) == 1
        assert service.query("bob.sal -> S") == [{"S": 4200}]


class TestFIFOLock:
    def test_strict_arrival_order(self):
        lock = _FIFOLock()
        order = []

        def worker(name):
            with lock:
                order.append(name)

        def queued() -> int:
            with lock._condition:
                return len(lock._tickets)

        # Hold the lock, then line up three waiters one at a time — each is
        # provably enqueued before the next starts — and release: they must
        # acquire in arrival order, which a bare threading.Lock does not
        # promise.
        threads = []
        with lock:
            for position, name in enumerate(("first", "second", "third")):
                thread = threading.Thread(target=worker, args=(name,))
                thread.start()
                threads.append(thread)
                deadline = time.time() + 5.0
                while queued() < position + 1:
                    assert time.time() < deadline, "waiter never queued"
                    time.sleep(0.001)
        for thread in threads:
            thread.join()
        assert order == ["first", "second", "third"]

    def test_concurrent_service_commits_serialize(self, service):
        errors = []

        def committer(program, tag):
            try:
                service.apply(program, tag=tag)
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        threads = [
            threading.Thread(target=committer, args=(RAISE_PHIL, f"p{i}"))
            for i in range(4)
        ] + [
            threading.Thread(target=committer, args=(RAISE_BOB, f"b{i}"))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(service.store) == 9
        assert service.query("phil.sal -> S") == [{"S": 4400}]
        assert service.query("bob.sal -> S") == [{"S": 4600}]


class TestDurability:
    def test_create_commit_reopen(self, tmp_path):
        directory = tmp_path / "journal"
        service = StoreService.create(
            paper_example_base(), directory, tag="initial"
        )
        service.apply(RAISE_PHIL, tag="raise")
        session = service.begin()
        session.stage(ADD_BOSS)
        session.commit(tag="boss")

        reopened = StoreService.open(directory)
        assert len(reopened.store) == 3
        assert [r.tag for r in reopened.store.revisions()] == [
            "initial", "raise", "boss",
        ]
        assert reopened.query("phil.sal -> S") == [{"S": 4100}]
        assert reopened.query("joe.boss -> B") == [{"B": "phil"}]

    def test_journal_is_replay_equivalent(self, tmp_path):
        """Commits through the service leave the same journal bytes as the
        same programs applied sequentially to a plain store."""
        served_dir = tmp_path / "served"
        plain_dir = tmp_path / "plain"
        service = StoreService.create(
            paper_example_base(), served_dir, tag="initial"
        )
        service.apply(RAISE_PHIL, tag="t1")
        service.apply(RAISE_BOB, tag="t2")

        from repro.storage.serialize import append_revision, save_store

        plain = VersionedStore(paper_example_base(), tag="initial")
        save_store(plain, plain_dir)
        for text, tag in ((RAISE_PHIL, "t1"), (RAISE_BOB, "t2")):
            plain.apply(parse_program(text), tag=tag)
            append_revision(plain, plain_dir)

        served_bytes = (served_dir / JOURNAL_FILE).read_bytes()
        plain_bytes = (plain_dir / JOURNAL_FILE).read_bytes()
        assert served_bytes == plain_bytes
        assert set(load_store(served_dir).current) == set(
            load_store(plain_dir).current
        )

    def test_stats_shape(self, service):
        service.apply(RAISE_PHIL)
        stats = service.stats()
        assert stats["revisions"] == 2
        assert stats["commits"] == 1
        assert stats["conflicts"] == 0
        assert stats["journal"] is None
        assert "subscriptions" in stats and "prepared" in stats
