"""The JSON-lines protocol through the in-process transport.

``connect_local`` runs the same :class:`Dispatcher` as the asyncio server,
so these tests cover the protocol semantics for both transports; the
socket-level behaviour is covered by ``test_server_asyncio.py``.
"""

import pytest

from repro.core.errors import ReproError
from repro.server import ConflictError, ServerError, StoreService, connect_local
from repro.server.protocol import PROTOCOL_VERSION, ClientState, Dispatcher, decode, encode
from repro.storage import VersionedStore
from repro.workloads import paper_example_base

RAISE_PHIL = "r: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100."
ADD_BOSS = "b: ins[joe].boss -> phil <= phil.isa -> empl."


@pytest.fixture()
def service():
    return StoreService(VersionedStore(paper_example_base(), tag="initial"))


@pytest.fixture()
def client(service):
    return connect_local(service)


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"id": 7, "cmd": "query", "body": "E.sal -> S"}
        assert decode(encode(message)) == message
        assert encode(message).endswith(b"\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ReproError):
            decode(b"{not json\n")
        with pytest.raises(ReproError):
            decode(b'"a bare string"\n')


class TestCommands:
    def test_ping(self, client):
        response = client.call("ping")
        assert response["pong"] is True
        assert response["protocol"] == PROTOCOL_VERSION

    def test_unknown_command(self, client):
        response = client.request("warp")
        assert response["ok"] is False
        assert "unknown command" in response["error"]

    def test_missing_field(self, client):
        response = client.request("query")
        assert response["ok"] is False
        assert "'body'" in response["error"]

    def test_type_malformed_requests_get_error_responses(self, client):
        # valid JSON, wrong types: must answer ok:false, never raise out
        # of the dispatcher (which would kill a wire connection)
        for request in (
            {"cmd": "apply", "program": 123},
            {"cmd": "query", "body": ["not", "text"]},
            {"cmd": ["unhashable"]},
            {"cmd": "tx-query", "session": {"weird": 1}, "body": "E.sal -> S"},
            {"cmd": "as-of", "revision": {"t": 1}},
        ):
            response = client._dispatcher.handle(
                dict(request, id=1), client._state
            )
            assert response["ok"] is False, request
        assert client.call("ping")["pong"] is True  # connection state intact

    def test_apply_and_query(self, client):
        applied = client.call("apply", program=RAISE_PHIL, tag="raise")
        assert applied["revision"] == 1
        assert applied["tag"] == "raise"
        assert applied["added"] == 1 and applied["removed"] == 1
        assert client.query("phil.sal -> S") == [{"S": 4100}]

    def test_log_and_as_of(self, client):
        client.apply(RAISE_PHIL, tag="raise")
        log = client.log()
        assert [entry["tag"] for entry in log] == ["initial", "raise"]
        assert log[0]["snapshot"] is True
        assert "phil.sal -> 4000." in client.as_of("initial")
        assert "phil.sal -> 4100." in client.as_of(1)
        with pytest.raises(ServerError):
            client.as_of("nope")

    def test_prepare_and_stats(self, client):
        prepared = client.prepare("E.sal -> S", name="sals")
        assert prepared["name"] == "sals"
        stats = client.stats()
        assert stats["revisions"] == 1
        assert "sals" in stats["prepared"]

    def test_id_echo(self, client):
        response = client.request("ping")
        assert response["id"] == 1
        assert client.request("ping")["id"] == 2


class TestTransactions:
    def test_full_lifecycle(self, client):
        session = client.begin()
        assert client.tx_query(session, "phil.sal -> S") == [{"S": 4000}]
        staged = client.stage(session, RAISE_PHIL)
        assert staged["staged"] == 1
        committed = client.commit(session, tag="mine")
        assert committed["revision"] == 1
        [revision] = committed["revisions"]
        assert revision["index"] == 1 and revision["tag"] == "mine"
        assert revision["added"] == 1 and revision["removed"] == 1
        assert revision["snapshot"] is False
        # the session is gone from the connection after commit
        response = client.request("tx-commit", session=session)
        assert response["ok"] is False and "unknown session" in response["error"]

    def test_conflict_response_carries_metadata(self, service):
        reader = connect_local(service)
        writer = connect_local(service)
        session = reader.begin()
        reader.tx_query(session, "phil.sal -> S")
        writer.apply(RAISE_PHIL, tag="sneaky")
        reader.stage(session, ADD_BOSS)
        response = reader.request("tx-commit", session=session, tag="mine")
        assert response["ok"] is False
        assert response["conflict"] is True
        assert response["pinned"] == 0
        assert response["conflicting_index"] == 1
        assert response["conflicting_tag"] == "sneaky"
        # the typed exception comes back through call()
        retry = reader.begin()
        reader.tx_query(retry, "phil.sal -> S")
        writer.apply(RAISE_PHIL, tag="again")
        reader.stage(retry, ADD_BOSS)
        with pytest.raises(ConflictError) as excinfo:
            reader.commit(retry)
        assert excinfo.value.conflicting_tag == "again"

    def test_abort(self, client):
        session = client.begin()
        client.stage(session, RAISE_PHIL)
        assert client.abort(session)["aborted"] is True
        assert client.log()[-1]["index"] == 0  # nothing committed

    def test_sessions_are_per_connection(self, service):
        one = connect_local(service)
        two = connect_local(service)
        session = one.begin()
        response = two.request("tx-query", session=session, body="E.sal -> S")
        assert response["ok"] is False
        assert "unknown session" in response["error"]


class TestPushesAndTeardown:
    def test_pushes_reach_only_the_subscribed_connection(self, service):
        subscribed = connect_local(service)
        other = connect_local(service)
        subscribed.subscribe("E.sal -> S")
        other.apply(RAISE_PHIL, tag="raise")
        pushes = subscribed.pushes()
        assert len(pushes) == 1 and pushes[0]["tag"] == "raise"
        assert other.pushes() == []

    def test_unsubscribe_via_protocol(self, client):
        sid = client.subscribe("E.sal -> S")["sid"]
        assert client.unsubscribe(sid)["removed"] is True
        client.apply(RAISE_PHIL)
        assert client.pushes() == []

    def test_unsubscribe_cannot_touch_other_connections(self, service):
        subscribed = connect_local(service)
        intruder = connect_local(service)
        sid = subscribed.subscribe("E.sal -> S")["sid"]
        assert intruder.unsubscribe(sid)["removed"] is False
        intruder.apply(RAISE_PHIL, tag="still-pushed")
        assert [p["tag"] for p in subscribed.pushes()] == ["still-pushed"]

    def test_close_aborts_sessions_and_unsubscribes(self, service):
        client = connect_local(service)
        client.begin()
        client.subscribe("E.sal -> S")
        assert len(service.subscriptions) == 1
        client.close()
        assert len(service.subscriptions) == 0
        with pytest.raises(ServerError):
            client.call("ping")

    def test_connect_local_accepts_store_and_journal(self, tmp_path):
        store_client = connect_local(VersionedStore(paper_example_base()))
        assert store_client.query("phil.sal -> S") == [{"S": 4000}]
        directory = tmp_path / "journal"
        StoreService.create(paper_example_base(), directory)
        journal_client = connect_local(directory)
        journal_client.apply(RAISE_PHIL, tag="durable")
        assert journal_client.service.journal_dir == directory
        with pytest.raises(TypeError):
            connect_local(42)


class TestDispatcherDirect:
    def test_error_payloads_do_not_leak_exceptions(self, service):
        dispatcher = Dispatcher(service)
        state = ClientState(lambda message: None)
        response = dispatcher.handle({"cmd": "apply", "program": "not a program"}, state)
        assert response["ok"] is False
        assert response["id"] is None
