"""The fault harness itself: byte-exact injections, seam restoration."""

import errno

import pytest

from repro.lang.parser import parse_program
from repro.storage import DurabilityOptions, VersionedStore, load_store, save_store
from repro.storage import serialize
from repro.storage.serialize import JOURNAL_FILE, append_revision
from repro.testing import FaultSpec, InjectedCrash, inject_faults
from repro.workloads import paper_example_base


def _store():
    return VersionedStore(paper_example_base(), tag="initial")


def _raise(step: int) -> str:
    return (
        f"s{step}: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 1."
    )


def test_unknown_action_and_op_are_rejected():
    with pytest.raises(Exception):
        FaultSpec("append", "explode")
    with pytest.raises(Exception):
        FaultSpec("mmap")


def test_seam_is_restored_even_when_the_block_raises(tmp_path):
    default = serialize._fs
    with pytest.raises(InjectedCrash):
        with inject_faults(FaultSpec("write", "crash_before")):
            save_store(_store(), tmp_path)
    assert serialize._fs is default


def test_torn_append_leaves_exactly_keep_bytes(tmp_path):
    store = _store()
    save_store(store, tmp_path)
    journal = tmp_path / JOURNAL_FILE
    before = journal.read_bytes()
    store.apply(parse_program(_raise(0)), tag="t0")
    with inject_faults(FaultSpec("append", "torn", keep_bytes=7)):
        with pytest.raises(InjectedCrash):
            append_revision(store, tmp_path)
    after = journal.read_bytes()
    assert after[: len(before)] == before
    assert len(after) == len(before) + 7


def test_crash_before_write_leaves_target_untouched(tmp_path):
    store = _store()
    save_store(store, tmp_path)
    journal = tmp_path / JOURNAL_FILE
    before = journal.read_bytes()
    with inject_faults(FaultSpec("write", "crash_before", path_glob=JOURNAL_FILE)):
        with pytest.raises(InjectedCrash):
            save_store(store, tmp_path)
    assert journal.read_bytes() == before


def test_enospc_is_an_oserror_not_a_crash(tmp_path):
    store = _store()
    save_store(store, tmp_path)
    store.apply(parse_program(_raise(0)), tag="t0")
    with inject_faults(FaultSpec("append", "enospc")) as fs:
        with pytest.raises(OSError) as caught:
            append_revision(store, tmp_path)
    assert caught.value.errno == errno.ENOSPC
    assert fs.fired


def test_duplicate_append_is_recovered_and_repaired(tmp_path):
    store = _store()
    save_store(store, tmp_path)
    store.apply(parse_program(_raise(0)), tag="t0")
    with inject_faults(FaultSpec("append", "duplicate")):
        with pytest.raises(InjectedCrash):
            append_revision(store, tmp_path)
    journal = tmp_path / JOURNAL_FILE
    lines = journal.read_text(encoding="utf-8").splitlines()
    assert lines[-1] == lines[-2]  # the echo is on disk
    loaded = load_store(tmp_path, repair=True)
    assert [r.tag for r in loaded.revisions()] == ["initial", "t0"]
    repaired = journal.read_text(encoding="utf-8").splitlines()
    assert len(repaired) == len(lines) - 1
    # and the journal accepts appends again
    loaded.apply(parse_program(_raise(1)), tag="t1")
    append_revision(loaded, tmp_path)
    assert [r.tag for r in load_store(tmp_path).revisions()] == [
        "initial", "t0", "t1",
    ]


def test_specs_fire_once_at_the_requested_call(tmp_path):
    store = _store()
    save_store(store, tmp_path)
    spec = FaultSpec("append", "crash_before", at=1)
    with inject_faults(spec) as fs:
        store.apply(parse_program(_raise(0)), tag="t0")
        append_revision(store, tmp_path)  # at=0: passes through
        store.apply(parse_program(_raise(1)), tag="t1")
        with pytest.raises(InjectedCrash):
            append_revision(store, tmp_path)  # at=1: fires
    assert fs.fired == [spec]
    assert [op for op, _ in fs.ops if op == "append"] == ["append", "append"]
    assert [r.tag for r in load_store(tmp_path).revisions()] == ["initial", "t0"]


def test_fsync_durability_mode_is_exercised_through_the_seam(tmp_path):
    store = _store()
    durability = DurabilityOptions(mode="fsync")
    save_store(store, tmp_path, durability=durability)
    store.apply(parse_program(_raise(0)), tag="t0")
    append_revision(store, tmp_path, durability=durability)
    assert [r.tag for r in load_store(tmp_path).revisions()] == ["initial", "t0"]
