"""Tests for ext."""
