"""Tests for derived methods (Section 6 "derived objects", E14)."""

import pytest

from repro import parse_object_base, parse_program, query
from repro.core.errors import ProgramError, StratificationError
from repro.ext.derived import (
    DerivedProgram,
    DerivedUpdateEngine,
    materialize,
    parse_derived_program,
)

# `?W.senior` makes the view *version-transparent*: it derives on every
# existing version, not just the base objects — the two Section 6
# extensions (derived methods + VID quantification) composing.
VIEWS = """
    senior: ?W.senior -> yes <= ?W.sal -> S, S > 4000.
    chain:  X.chainboss -> B <= X.boss -> B.
    chain2: X.chainboss -> C <= X.chainboss -> B, B.boss -> C.
"""

BASE = """
    phil.isa -> empl.  phil.sal -> 4000.
    bob.isa -> empl.   bob.sal -> 4200.  bob.boss -> phil.
    amy.isa -> empl.   amy.sal -> 3000.  amy.boss -> bob.
"""


@pytest.fixture()
def views():
    return parse_derived_program(VIEWS)


@pytest.fixture()
def base():
    return parse_object_base(BASE)


class TestMaterialize:
    def test_plain_view(self, views, base):
        enriched = materialize(base, views)
        assert {a["X"] for a in query(enriched, "X.senior -> yes")} == {"bob"}

    def test_recursive_view(self, views, base):
        enriched = materialize(base, views)
        bosses = {a["B"] for a in query(enriched, "amy.chainboss -> B")}
        assert bosses == {"bob", "phil"}

    def test_input_untouched(self, views, base):
        snapshot = base.copy()
        materialize(base, views)
        assert base == snapshot

    def test_views_on_version_hosts(self, views, base):
        # after a raise, the view re-derives on the mod(e) versions too
        from repro import UpdateEngine

        program = parse_program(
            "up: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 600."
        )
        result = UpdateEngine().evaluate(program, base)
        enriched = materialize(result.result_base, views)
        seniors = {a["X"] for a in query(enriched, "mod(X).senior -> yes")}
        assert seniors == {"phil", "bob"}  # 4600 and 4800; amy at 3600 is not

    def test_stored_derived_method_rejected(self, views):
        poisoned = parse_object_base("a.senior -> yes.")
        with pytest.raises(ProgramError):
            materialize(poisoned, views)

    def test_negation_between_views(self, base):
        views = parse_derived_program(
            """
            senior: X.senior -> yes <= X.sal -> S, S > 4000.
            junior: X.junior -> yes <= X.sal -> S, not X.senior -> yes.
            """
        )
        enriched = materialize(base, views)
        juniors = {a["X"] for a in query(enriched, "X.junior -> yes")}
        assert juniors == {"phil", "amy"}

    def test_negative_self_recursion_rejected(self):
        with pytest.raises(StratificationError):
            parse_derived_program(
                "odd: X.odd -> yes <= X.n -> V, not X.odd -> yes."
            )

    def test_unsafe_head_rejected(self):
        with pytest.raises(ProgramError):
            parse_derived_program("bad: X.v -> Y <= X.m -> Z.")

    def test_exists_cannot_be_derived(self):
        with pytest.raises(ProgramError):
            parse_derived_program("bad: X.exists -> X <= X.m -> V.")


class TestDerivedUpdateEngine:
    def test_update_rules_read_views(self, views, base):
        program = parse_program(
            "cut: mod[E].sal -> (S, S2) <= E.senior -> yes, E.sal -> S, "
            "S2 = S - 500."
        )
        engine = DerivedUpdateEngine(views)
        result = engine.apply(program, base)
        salaries = {a["E"]: a["S"] for a in query(result.new_base, "E.sal -> S")}
        assert salaries == {"phil": 4000, "bob": 3700, "amy": 3000}

    def test_views_never_stored(self, views, base):
        program = parse_program(
            "cut: mod[E].sal -> (S, S2) <= E.senior -> yes, E.sal -> S, "
            "S2 = S - 500."
        )
        engine = DerivedUpdateEngine(views)
        result = engine.apply(program, base)
        assert query(result.new_base, "X.senior -> V") == []
        assert query(result.result_base, "X.senior -> V") == []

    def test_view_recomputed_between_strata(self, views, base):
        """A second-stratum rule must see the view over the *updated*
        state: after the cut nobody is senior, so no bonus fires."""
        program = parse_program(
            """
            cut:   mod[E].sal -> (S, S2) <= E.senior -> yes, E.sal -> S,
                   S2 = S - 500.
            bonus: ins[mod(E)].bonus -> yes <= mod(E).senior -> yes.
            """
        )
        engine = DerivedUpdateEngine(views)
        result = engine.apply(program, base)
        assert query(result.new_base, "E.bonus -> yes") == []

    def test_view_sees_new_values_between_strata(self, views, base):
        """Symmetric case: a raise makes new seniors the view must see."""
        program = parse_program(
            """
            up:    mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S,
                   S2 = S + 1500.
            badge: ins[mod(E)].badge -> gold <= mod(E).senior -> yes.
            """
        )
        engine = DerivedUpdateEngine(views)
        result = engine.apply(program, base)
        badged = {a["E"] for a in query(result.new_base, "E.badge -> gold")}
        assert badged == {"phil", "bob", "amy"}  # all above 4000 now

    def test_updating_a_view_rejected(self, views, base):
        program = parse_program("bad: ins[E].senior -> yes <= E.sal -> S.")
        with pytest.raises(ProgramError):
            DerivedUpdateEngine(views).apply(program, base)

    def test_view_helper_on_new_base(self, views, base):
        program = parse_program(
            "up: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 600."
        )
        engine = DerivedUpdateEngine(views)
        result = engine.apply(program, base)
        seniors = {
            a["X"] for a in query(engine.view(result.new_base), "X.senior -> yes")
        }
        assert seniors == {"phil", "bob"}

    def test_agrees_with_plain_engine_when_views_unused(self, views, base):
        from repro import UpdateEngine
        from repro.workloads import salary_raise_program

        program = salary_raise_program()
        plain = UpdateEngine().apply(program, base)
        derived = DerivedUpdateEngine(views).apply(program, base)
        assert plain.new_base == derived.new_base


class TestDerivedProgramStructure:
    def test_auto_naming_and_duplicates(self):
        program = parse_derived_program("X.a -> yes <= X.m -> V.\nX.b -> yes <= X.m -> V.")
        assert [rule.name for rule in program] == ["view1", "view2"]
        with pytest.raises(ProgramError):
            DerivedProgram(list(program) + [list(program)[0]])

    def test_derived_methods_set(self):
        program = parse_derived_program(VIEWS)
        assert program.derived_methods == {"senior", "chainboss"}
