"""Tests for the Section 6 extension: quantification over VIDs (E13)."""

import pytest

from repro import (
    UpdateEngine,
    parse_object_base,
    parse_program,
    parse_rule,
    query,
)
from repro.core.errors import ProgramError
from repro.core.terms import VersionVar
from repro.ext import audit_history_program, uses_version_vars
from repro.ext.vidvars import specialised_audit_program


def staged_base(levels: int = 2):
    """A base with a mod-chain of the given depth on object joe."""
    base = parse_object_base("joe.sal -> 100.")
    base.add_object("ledger")
    rules = ["m1: mod[E].sal -> (S, S2) <= E.sal -> S, S2 = S + 10, E.exists -> E."]
    prefix = "mod(E)"
    for level in range(2, levels + 1):
        rules.append(
            f"m{level}: mod[{prefix}].sal -> (S, S2) <= "
            f"{prefix}.sal -> S, S2 = S + 10, E.sal -> SX."
        )
        prefix = f"mod({prefix})"
    outcome = UpdateEngine().evaluate(parse_program("\n".join(rules)), base)
    return outcome.result_base


class TestDetection:
    def test_uses_version_vars(self):
        with_var = parse_program("a: ins[ledger].h@X -> S <= ?W.sal -> S, ?W.exists -> X.")
        without = parse_program("a: ins[ledger].h@X -> S <= X.sal -> S.")
        assert uses_version_vars(with_var)
        assert not uses_version_vars(without)

    def test_head_occurrence_rejected_with_clear_message(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program("r: mod[?W].m -> (V, V2) <= ?W.m -> V, V2 = V + 1.")
        with pytest.raises(ProgramError) as excinfo:
            UpdateEngine().evaluate(program, base)
        assert "condition (a)" in str(excinfo.value)

    def test_version_var_not_allowed_in_result_position(self):
        from repro.core.errors import TermError

        with pytest.raises((TermError, Exception)):
            parse_rule("r: ins[X].m -> ?W <= X.m -> V.")


class TestGenericAudit:
    def test_audit_collects_full_history(self):
        base = staged_base(levels=3)
        audited = UpdateEngine().evaluate(audit_history_program("sal"), base)
        history = sorted(
            a["S"] for a in query(audited.result_base, "ins(ledger).hist@joe -> S")
        )
        assert history == [100, 110, 120, 130]

    def test_generic_equals_specialised(self):
        base = staged_base(levels=2)
        generic = UpdateEngine().evaluate(audit_history_program("sal"), base)
        special = UpdateEngine().evaluate(specialised_audit_program("sal", 2), base)
        q = "ins(ledger).hist@joe -> S"
        assert sorted(a["S"] for a in query(generic.result_base, q)) == sorted(
            a["S"] for a in query(special.result_base, q)
        )

    def test_generic_rule_covers_unforeseen_depth(self):
        # the specialised program stops at its max_depth; the generic rule
        # does not care — the expressiveness gap of E13
        base = staged_base(levels=4)
        generic = UpdateEngine().evaluate(audit_history_program("sal"), base)
        shallow = UpdateEngine().evaluate(specialised_audit_program("sal", 2), base)
        q = "ins(ledger).hist@joe -> S"
        assert len(query(generic.result_base, q)) == 5
        assert len(query(shallow.result_base, q)) == 3

    def test_termination_preserved(self):
        # body-only version variables bind existing versions only
        base = staged_base(levels=2)
        outcome = UpdateEngine().evaluate(audit_history_program("sal"), base)
        assert outcome.iterations < 10


class TestMatcherIntegration:
    def test_version_var_matches_every_version(self):
        base = staged_base(levels=2)
        answers = query(base, "?W.sal -> S, ?W.exists -> X")
        assert len(answers) == 3  # joe, mod(joe), mod(mod(joe))

    def test_version_var_in_negation(self):
        base = staged_base(levels=1)
        # versions whose salary is not 100: only mod(joe)
        answers = query(base, "?W.sal -> S, not ?W.sal -> 100")
        assert {a["S"] for a in answers} == {110}
