"""Tests for the schema-evolution bookkeeping (Section 2.4 / [SZ87])."""

from repro import UpdateEngine, parse_object_base
from repro.core.terms import Oid
from repro.ext.schema import SchemaDelta, class_signatures, schema_delta
from repro.workloads import paper_example_base, paper_example_program

O = Oid


class TestClassSignatures:
    def test_mandatory_vs_optional(self):
        base = parse_object_base(
            """
            a.isa -> empl. a.sal -> 1. a.car -> vw.
            b.isa -> empl. b.sal -> 2.
            """
        )
        signature = class_signatures(base)[O("empl")]
        assert signature.members == {O("a"), O("b")}
        assert signature.mandatory == {("sal", 0)}
        assert signature.optional == {("sal", 0), ("car", 0)}

    def test_bookkeeping_excluded(self):
        base = parse_object_base("a.isa -> empl. a.sal -> 1.")
        signature = class_signatures(base)[O("empl")]
        for name, _arity in signature.optional:
            assert name not in ("exists", "isa")

    def test_multi_class_membership(self):
        base = parse_object_base("a.isa -> empl. a.isa -> hpe. a.sal -> 1.")
        signatures = class_signatures(base)
        assert signatures[O("empl")].members == {O("a")}
        assert signatures[O("hpe")].members == {O("a")}

    def test_method_arity_distinguished(self):
        base = parse_object_base("a.isa -> g. a.dist@x -> 1. b.isa -> g. b.dist@x,y -> 2.")
        signature = class_signatures(base)[O("g")]
        assert signature.optional == {("dist", 1), ("dist", 2)}
        assert signature.mandatory == frozenset()

    def test_render(self):
        base = parse_object_base("a.isa -> empl. a.sal -> 1.")
        text = str(class_signatures(base)[O("empl")])
        assert "class empl" in text and "sal/0" in text


class TestSchemaDelta:
    def test_figure2_evolution(self):
        """The paper's own remark instantiated: after the Figure 2 update
        the class hpe exists and bob's membership is gone."""
        base = paper_example_base()
        result = UpdateEngine().apply(paper_example_program(), base)
        delta = schema_delta(base, result.new_base)

        assert O("hpe") in delta.classes_added
        assert delta.membership_lost[O("empl")] == {O("bob")}
        text = delta.render()
        assert "+ class hpe" in text
        assert "- empl: member bob" in text

    def test_method_becomes_defined(self):
        old = parse_object_base("a.isa -> c. a.m -> 1.")
        new = parse_object_base("a.isa -> c. a.m -> 1. a.extra -> 2.")
        delta = schema_delta(old, new)
        assert delta.methods_defined[O("c")] == {("extra", 0)}

    def test_method_becomes_undefined(self):
        old = parse_object_base("a.isa -> c. a.m -> 1. a.extra -> 2.")
        new = parse_object_base("a.isa -> c. a.m -> 1.")
        delta = schema_delta(old, new)
        assert delta.methods_undefined[O("c")] == {("extra", 0)}

    def test_class_removed_when_last_member_vanishes(self):
        old = parse_object_base("a.isa -> c. a.m -> 1.")
        new = parse_object_base("b.isa -> d. b.m -> 1.")
        delta = schema_delta(old, new)
        assert delta.classes_removed == {O("c")}
        assert delta.classes_added == {O("d")}

    def test_empty_delta(self):
        base = parse_object_base("a.isa -> c. a.m -> 1.")
        delta = schema_delta(base, base)
        assert delta.is_empty()
        assert delta.render() == "(no schema changes)"

    def test_custom_class_method(self):
        old = parse_object_base("a.kind -> widget. a.m -> 1.")
        new = parse_object_base("a.kind -> widget. a.m -> 1. a.n -> 2.")
        delta = schema_delta(old, new, class_method="kind")
        assert delta.methods_defined[O("widget")] == {("n", 0)}
