"""Tests for the workload generators (shape invariants, determinism)."""

import pytest

from repro import query
from repro.core.terms import Oid, depth
from repro.workloads import (
    enterprise_base,
    genealogy_base,
    true_ancestors,
)
from repro.workloads.enterprise import EnterpriseConfig
from repro.workloads.synthetic import (
    random_datalog_chain_program,
    random_edge_database,
    random_insert_program,
    random_object_base,
    version_chain_program,
)


class TestEnterprise:
    def test_deterministic(self):
        assert enterprise_base(n_employees=30, seed=5) == enterprise_base(
            n_employees=30, seed=5
        )
        assert enterprise_base(n_employees=30, seed=5) != enterprise_base(
            n_employees=30, seed=6
        )

    def test_shape(self):
        base = enterprise_base(n_employees=40, manager_ratio=0.25, seed=1)
        employees = query(base, "E.isa -> empl")
        assert len(employees) == 40
        managers = query(base, "E.pos -> mgr")
        assert len(managers) == 10
        # every non-root has a manager boss
        for answer in query(base, "E.boss -> B"):
            assert query(base, f"{answer['B']}.pos -> mgr") == [{}]

    def test_salaries_in_range(self):
        base = enterprise_base(
            n_employees=30, salary_range=(1000, 2000), overpaid_ratio=0.0, seed=2
        )
        for answer in query(base, "E.sal -> S"):
            assert 1000 <= answer["S"] <= 2000

    def test_overpaid_bait_exists(self):
        base = enterprise_base(n_employees=60, overpaid_ratio=0.5, seed=3)
        overpaid = query(base, "E.boss -> B, E.sal -> SE, B.sal -> SB, SE > SB")
        assert overpaid  # rule 3 has victims

    def test_config_and_overrides_exclusive(self):
        with pytest.raises(TypeError):
            enterprise_base(EnterpriseConfig(), n_employees=5)


class TestGenealogy:
    def test_layered_dag(self):
        base = genealogy_base(generations=3, per_generation=4, seed=1)
        people = query(base, "P.isa -> person")
        assert len(people) == 12
        # parents always come from the elder generation: acyclic by layers
        truth = true_ancestors(base)
        for person, ancestors in truth.items():
            assert person not in ancestors

    def test_true_ancestors_transitive(self):
        base = genealogy_base(generations=4, per_generation=3, seed=2)
        truth = true_ancestors(base)
        parents = {
            (a["X"], a["P"]) for a in query(base, "X.parents -> P")
        }
        for child, parent in parents:
            assert parent in truth[str(child)]
            assert truth[str(parent)] <= truth[str(child)]


class TestSynthetic:
    def test_random_base_shape(self):
        base = random_object_base(n_objects=10, facts_per_object=2, seed=4)
        assert len(base.objects()) == 10

    def test_insert_program_is_runnable(self):
        from repro import UpdateEngine

        base = random_object_base(n_objects=5, seed=5)
        program = random_insert_program(n_rules=3, seed=5)
        result = UpdateEngine().apply(program, base)
        assert result.new_base is not None

    @pytest.mark.parametrize("k", [1, 3, 5, 9, 10, 15])
    def test_version_chain_reaches_depth_k(self, k):
        from repro import UpdateEngine

        base = random_object_base(n_objects=2, seed=6)
        result = UpdateEngine().apply(version_chain_program(k), base)
        depths = {depth(v) for v in result.final_versions.values()}
        assert depths == {k}

    def test_chain_strata_count(self):
        from repro import stratify

        program = version_chain_program(8)
        assert len(stratify(program)) == 8

    def test_edge_database(self):
        db = random_edge_database(n_nodes=5, n_edges=10, seed=7)
        assert len(db.rows("edge", 2)) <= 10

    def test_datalog_chain_program_runs(self):
        from repro.datalog import DatalogEngine

        program = random_datalog_chain_program(n_idb=2, negated_tail=True, seed=8)
        db = random_edge_database(n_nodes=8, n_edges=12, seed=8)
        result = DatalogEngine().run(program, db)
        assert result.rows("p0", 2)
