"""Tests for workloads."""
