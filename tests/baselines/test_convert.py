"""Tests for the object-base <-> relational conversion."""

import pytest

from repro.baselines import database_to_object_base, object_base_to_database
from repro.core.errors import TermError
from repro.core.facts import EXISTS, Fact, exists_fact
from repro.core.terms import Oid, UpdateKind, wrap
from repro.datalog import Database
from repro.lang.parser import parse_object_base
from repro.workloads import paper_example_base

O = Oid


def test_methods_become_predicates():
    db = object_base_to_database(paper_example_base())
    assert ("sal", (O("phil"), O(4000))) in db
    assert ("boss", (O("bob"), O("phil"))) in db


def test_exists_skipped_by_default():
    db = object_base_to_database(paper_example_base())
    assert db.rows(EXISTS, 1) == set()
    db_with = object_base_to_database(paper_example_base(), include_exists=True)
    assert len(db_with.rows(EXISTS, 2)) == 2


def test_arguments_in_the_middle():
    base = parse_object_base("g.dist@a,b -> 7.")
    db = object_base_to_database(base)
    assert ("dist", (O("g"), O("a"), O("b"), O(7))) in db


def test_round_trip():
    base = paper_example_base()
    rebuilt = database_to_object_base(object_base_to_database(base))
    assert rebuilt == base


def test_version_hosts_rejected():
    base = paper_example_base()
    version = wrap(UpdateKind.MODIFY, O("phil"))
    base.add(exists_fact(version))
    base.add(Fact(version, "sal", (), O(1)))
    with pytest.raises(TermError):
        object_base_to_database(base)


def test_narrow_relations_rejected():
    db = Database.from_tuples([("flag", "a")])
    with pytest.raises(TermError):
        database_to_object_base(db)
