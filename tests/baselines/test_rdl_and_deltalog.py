"""Tests for the RDL1-style control networks and [AV91] deltalog."""

import pytest

from repro.baselines import (
    DeltalogProgram,
    NonTerminationError,
    Once,
    RdlProgram,
    Saturate,
    Seq,
    While,
)
from repro.baselines.logres import LogresRule, enterprise_modules
from repro.core.atoms import BuiltinAtom
from repro.core.errors import EvaluationLimitError, ProgramError
from repro.core.terms import Oid, Var
from repro.datalog import Database, DatalogEngine
from repro.datalog.ast import DatalogLiteral as L

A = DatalogEngine.atom


def plus(head, *body, name=""):
    return LogresRule(head, tuple(body), True, name)


def minus(head, *body, name=""):
    return LogresRule(head, tuple(body), False, name)


class TestControlExpressions:
    def test_once_applies_one_round(self):
        # chain growth: one round adds exactly one hop
        grow = plus(A("reach", "Y"), L(A("reach", "X")), L(A("edge", "X", "Y")))
        edb = Database.from_tuples(
            [("reach", "a"), ("edge", "a", "b"), ("edge", "b", "c")]
        )
        result = RdlProgram(Once((grow,))).run(edb)
        assert DatalogEngine.query(result, "reach", (None,)) == [("a",), ("b",)]

    def test_saturate_reaches_fixpoint(self):
        grow = plus(A("reach", "Y"), L(A("reach", "X")), L(A("edge", "X", "Y")))
        edb = Database.from_tuples(
            [("reach", "a"), ("edge", "a", "b"), ("edge", "b", "c")]
        )
        result = RdlProgram(Saturate((grow,))).run(edb)
        assert len(result.rows("reach", 1)) == 3

    def test_seq_orders_steps(self):
        mark = plus(A("marked", "X"), L(A("item", "X")))
        clear = minus(A("item", "X"), L(A("marked", "X")), L(A("item", "X")))
        edb = Database.from_tuples([("item", "a"), ("item", "b")])
        result = RdlProgram(Seq((Once((mark,)), Once((clear,))))).run(edb)
        assert result.rows("item", 1) == set()
        assert len(result.rows("marked", 1)) == 2

    def test_while_consumes_tokens(self):
        # pop one token per round: move a 'todo' row to 'done'
        do = plus(A("done", "X"), L(A("todo", "X")))
        pop = minus(A("todo", "X"), L(A("todo", "X")))
        edb = Database.from_tuples([("todo", "a"), ("todo", "b")])
        program = RdlProgram(While(("todo", 1), Once((do, pop))))
        result = program.run(edb)
        assert result.rows("todo", 1) == set()
        assert len(result.rows("done", 1)) == 2

    def test_while_guard_raises_when_tokens_survive(self):
        spin = plus(A("noise", "X"), L(A("todo", "X")))
        program = RdlProgram(While(("todo", 1), Once((spin,)), max_rounds=5))
        with pytest.raises(EvaluationLimitError):
            program.run(Database.from_tuples([("todo", "a")]))

    def test_saturate_guard(self):
        # +p / -p forever: saturate oscillates into the iteration cap
        flip = minus(A("p", "X"), L(A("p", "X")))
        flop = plus(A("p", "X"), L(A("q", "X")), L(A("p", "X"), False))
        program = RdlProgram(Saturate((flip, flop)), max_iterations=10)
        with pytest.raises(EvaluationLimitError):
            program.run(Database.from_tuples([("q", "a"), ("p", "a")]))

    def test_validation(self):
        with pytest.raises(ProgramError):
            RdlProgram(Seq(()))
        with pytest.raises(ProgramError):
            RdlProgram(Once(()))

    def test_input_untouched(self):
        grow = plus(A("reach", "Y"), L(A("reach", "X")), L(A("edge", "X", "Y")))
        edb = Database.from_tuples([("reach", "a"), ("edge", "a", "b")])
        before = edb.copy()
        RdlProgram(Saturate((grow,))).run(edb)
        assert edb == before


class TestEnterpriseAsNetwork:
    """E15's correctness anchor: the §2.3 update as an explicit network."""

    def _network(self, order):
        modules = {m.name: m.rules for m in enterprise_modules().modules}
        return RdlProgram(Seq(tuple(Saturate(modules[name]) for name in order)))

    def test_intended_network(self):
        from repro.baselines import object_base_to_database
        from repro.workloads import paper_example_base

        db = object_base_to_database(paper_example_base(bob_salary=4100))
        result = self._network(["raise", "fire", "hpe"]).run(db)
        salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
        assert salaries["bob"] == pytest.approx(4510.0)
        hpe = {r[0] for r in DatalogEngine.query(result, "isa", (None, "hpe"))}
        assert hpe == {"phil", "bob"}

    def test_miswired_network(self):
        from repro.baselines import object_base_to_database
        from repro.workloads import paper_example_base

        db = object_base_to_database(paper_example_base(bob_salary=4100))
        result = self._network(["fire", "raise", "hpe"]).run(db)
        salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
        assert "bob" not in salaries  # wrong wiring, wrong base


class TestDeltalog:
    def test_fixpoint_program(self):
        program = DeltalogProgram(
            [
                plus(A("reach", "Y"), L(A("reach", "X")), L(A("edge", "X", "Y"))),
            ]
        )
        edb = Database.from_tuples(
            [("reach", "a"), ("edge", "a", "b"), ("edge", "b", "c")]
        )
        result = program.run(edb)
        assert len(result.rows("reach", 1)) == 3

    def test_deletion_fixpoint(self):
        program = DeltalogProgram(
            [minus(A("p", "X"), L(A("p", "X")), L(A("kill", "X")))]
        )
        edb = Database.from_tuples([("p", "a"), ("p", "b"), ("kill", "a")])
        result = program.run(edb)
        assert DatalogEngine.query(result, "p", (None,)) == [("b",)]

    def test_two_line_oscillator_detected(self):
        """The termination contrast of E15: p flips on and off forever."""
        program = DeltalogProgram(
            [
                plus(A("p", "X"), L(A("q", "X")), L(A("p", "X"), False), name="on"),
                minus(A("p", "X"), L(A("p", "X")), name="off"),
            ]
        )
        edb = Database.from_tuples([("q", "a")])
        with pytest.raises(NonTerminationError) as excinfo:
            program.run(edb)
        assert excinfo.value.cycle_length == 2

    def test_versioned_language_terminates_on_the_analogue(self):
        """The same on/off intent written with versions terminates: the
        delete targets the version, not a mutable flag."""
        from repro import UpdateEngine, parse_object_base, parse_program

        base = parse_object_base("a.q -> yes.")
        program = parse_program(
            """
            on:  ins[X].p -> yes <= X.q -> yes.
            off: del[ins(X)].p -> yes <= ins(X).p -> yes.
            """
        )
        outcome = UpdateEngine().evaluate(program, base)
        assert outcome.iterations <= 5  # strata: {on} < {off}; both converge

    def test_unsafe_rules_rejected(self):
        with pytest.raises(Exception):
            DeltalogProgram([plus(A("p", "X"))])
