"""Tests for the Logres-style module baseline (experiment E11)."""

import pytest

from repro.baselines import (
    LogresModule,
    LogresProgram,
    LogresRule,
    object_base_to_database,
)
from repro.baselines.logres import enterprise_modules
from repro.core.atoms import BuiltinAtom
from repro.core.errors import ProgramError
from repro.core.terms import Oid, Var
from repro.datalog import Database, DatalogEngine
from repro.datalog.ast import DatalogLiteral as L
from repro.workloads import paper_example_base

A = DatalogEngine.atom


class TestModuleSemantics:
    def test_insert_and_delete_in_one_step(self):
        module = LogresModule("swap", (
            LogresRule(A("state", "X", "new"), (L(A("state", "X", "old")),), True, "add"),
            LogresRule(A("state", "X", "old"), (L(A("state", "X", "old")),), False, "del"),
        ), "inflationary")
        program = LogresProgram([module])
        edb = Database.from_tuples([("state", "a", "old")])
        result = program.run(edb)
        assert DatalogEngine.query(result, "state", (None, None)) == [("a", "new")]

    def test_deletions_win_over_insertions(self):
        module = LogresModule("clash", (
            LogresRule(A("p", "X"), (L(A("seed", "X")),), True, "add"),
            LogresRule(A("p", "X"), (L(A("seed", "X")),), False, "del"),
        ), "inflationary")
        edb = Database.from_tuples([("seed", "a"), ("p", "a")])
        result = LogresProgram([module]).run(edb)
        assert DatalogEngine.query(result, "p", (None,)) == []

    def test_stratified_module_orders_rules(self):
        module = LogresModule("m", (
            LogresRule(A("mark", "X"), (L(A("seed", "X")),), True, "mark"),
            LogresRule(
                A("unmarked", "X"),
                (L(A("node", "X")), L(A("mark", "X"), False)),
                True,
                "rest",
            ),
        ), "stratified")
        edb = Database.from_tuples([("seed", "a"), ("node", "a"), ("node", "b")])
        result = LogresProgram([module]).run(edb)
        assert DatalogEngine.query(result, "unmarked", (None,)) == [("b",)]

    def test_bad_semantics_rejected(self):
        with pytest.raises(ProgramError):
            LogresModule("m", (), "eager")

    def test_duplicate_module_names_rejected(self):
        module = LogresModule("m", (), "inflationary")
        with pytest.raises(ProgramError):
            LogresProgram([module, module])

    def test_input_database_untouched(self):
        edb = Database.from_tuples([("state", "a", "old")])
        before = edb.copy()
        module = LogresModule("noop_del", (
            LogresRule(A("state", "X", "old"), (L(A("state", "X", "old")),), False, "d"),
        ), "inflationary")
        LogresProgram([module]).run(edb)
        assert edb == before


class TestManualControlExperiment:
    """E11: the right module order matches the versioned engine; the wrong
    order produces the unintended base."""

    def _run(self, order):
        base = paper_example_base(bob_salary=4100)
        program = enterprise_modules().reordered(order)
        return program.run(object_base_to_database(base))

    def test_intended_order(self):
        result = self._run(["raise", "fire", "hpe"])
        salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
        assert salaries["phil"] == pytest.approx(4600.0)
        assert salaries["bob"] == pytest.approx(4510.0)
        hpe = {row[0] for row in DatalogEngine.query(result, "isa", (None, "hpe"))}
        assert hpe == {"phil", "bob"}

    def test_wrong_order_fires_bob(self):
        result = self._run(["fire", "raise", "hpe"])
        salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
        assert "bob" not in salaries
        hpe = {row[0] for row in DatalogEngine.query(result, "isa", (None, "hpe"))}
        assert hpe == {"phil"}

    def test_reorder_validates_names(self):
        with pytest.raises(ProgramError):
            enterprise_modules().reordered(["raise", "fire"])

    def test_intended_order_matches_versioned_engine(self):
        from repro import UpdateEngine, query
        from repro.workloads import paper_example_program

        base = paper_example_base(bob_salary=4100)
        versioned = UpdateEngine().apply(paper_example_program(), base)
        logres = self._run(["raise", "fire", "hpe"])

        versioned_salaries = {
            a["E"]: a["S"] for a in query(versioned.new_base, "E.sal -> S")
        }
        logres_salaries = dict(DatalogEngine.query(logres, "sal", (None, None)))
        assert versioned_salaries == pytest.approx(logres_salaries)
