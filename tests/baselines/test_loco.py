"""Tests for the LOCO baseline (ordered logic, update-by-instance)."""

import pytest

from repro.baselines.loco import LocoHierarchy, LocoObject
from repro.baselines.logres import LogresRule
from repro.core.errors import ProgramError
from repro.datalog import Database, DatalogEngine

A = DatalogEngine.atom


def plus(head, *body, name=""):
    from repro.datalog.ast import DatalogLiteral

    return LogresRule(head, tuple(DatalogLiteral(b) for b in body), True, name)


def minus(head, *body, name=""):
    from repro.datalog.ast import DatalogLiteral

    return LogresRule(head, tuple(DatalogLiteral(b) for b in body), False, name)


@pytest.fixture()
def hierarchy():
    h = LocoHierarchy()
    h.add(LocoObject("employee", (), (
        plus(A("status", "active")),
        plus(A("sal", 1000)),
    )))
    h.add(LocoObject("manager", ("employee",), (
        plus(A("sal", 2000)),       # overrides the inherited default
        plus(A("bonus", "car")),
    )))
    return h


class TestInheritance:
    def test_plain_inheritance(self, hierarchy):
        state = hierarchy.state_of("employee")
        assert DatalogEngine.query(state, "sal", (None,)) == [(1000,)]
        assert DatalogEngine.query(state, "status", (None,)) == [("active",)]

    def test_overriding(self, hierarchy):
        state = hierarchy.state_of("manager")
        # the specific sal conclusion shadows the inherited default
        assert DatalogEngine.query(state, "sal", (None,)) == [(2000,)]
        # non-conflicting methods are inherited
        assert DatalogEngine.query(state, "status", (None,)) == [("active",)]
        assert DatalogEngine.query(state, "bonus", (None,)) == [("car",)]

    def test_levels(self, hierarchy):
        hierarchy.add(LocoObject("ceo", ("manager",)))
        names = [[o.name for o in level] for level in hierarchy.levels("ceo")]
        assert names == [["ceo"], ["manager"], ["employee"]]

    def test_unknown_parent_rejected(self):
        h = LocoHierarchy()
        with pytest.raises(ProgramError):
            h.add(LocoObject("x", ("ghost",)))

    def test_duplicate_rejected(self, hierarchy):
        with pytest.raises(ProgramError):
            hierarchy.add(LocoObject("employee"))

    def test_negative_heads_within_level(self):
        h = LocoHierarchy()
        h.add(LocoObject("node", (), (
            plus(A("p", "a")),
            minus(A("p", "a"), A("kill", "a")),
        )))
        quiet = h.state_of("node")
        assert DatalogEngine.query(quiet, "p", (None,)) == [("a",)]
        killed = h.state_of("node", Database.from_tuples([("kill", "a")]))
        assert DatalogEngine.query(killed, "p", (None,)) == []


class TestUpdateByInstance:
    def test_salary_update_as_instance(self, hierarchy):
        """LOCO's update move: a new instance carrying the 'update rules'."""
        henry = hierarchy.add(LocoObject("henry", ("employee",)))
        raised = hierarchy.update_instance(
            "henry", (plus(A("sal", 1100)),), name="henry_raised"
        )
        # the instance is the updated object ...
        state = hierarchy.state_of(raised.name)
        assert DatalogEngine.query(state, "sal", (None,)) == [(1100,)]
        # ... and the original is untouched
        assert DatalogEngine.query(
            hierarchy.state_of("henry"), "sal", (None,)
        ) == [(1000,)]

    def test_manual_control_critique(self, hierarchy):
        """§2.4: LOCO updates "cannot be defined by rules" — each employee
        needs its own hand-made instance, where the paper's language uses
        one rule for all employees."""
        staff = [f"e{i}" for i in range(5)]
        for name in staff:
            hierarchy.add(LocoObject(name, ("employee",)))
        instances = [
            hierarchy.update_instance(name, (plus(A("sal", 1100)),))
            for name in staff
        ]
        assert len(instances) == len(staff)  # one instance per object: O(n) by hand
        for instance in instances:
            state = hierarchy.state_of(instance.name)
            assert DatalogEngine.query(state, "sal", (None,)) == [(1100,)]

    def test_versioned_language_needs_one_rule(self):
        """The same intent in the paper's language: a single rule."""
        from repro import UpdateEngine, parse_object_base, parse_program, query

        base = parse_object_base(
            "\n".join(f"e{i}.isa -> empl. e{i}.sal -> 1000." for i in range(5))
        )
        program = parse_program(
            "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, "
            "S2 = S + 100."
        )
        result = UpdateEngine().apply(program, base)
        salaries = {a["S"] for a in query(result.new_base, "E.sal -> S")}
        assert salaries == {1100}
