"""Tests for the naive single-time-step baseline (experiment E6)."""

from repro import UpdateEngine, query
from repro.baselines import naive_one_step_update
from repro.baselines.naive import flatten_program, flatten_term
from repro.core.terms import Oid, UpdateKind, Var, wrap
from repro.lang.parser import parse_object_base, parse_program
from repro.workloads import paper_example_base, paper_example_program

O = Oid


class TestFlattening:
    def test_flatten_term(self):
        nested = wrap(UpdateKind.INSERT, wrap(UpdateKind.MODIFY, Var("E")))
        assert flatten_term(nested) == Var("E")
        assert flatten_term(O("a")) == O("a")

    def test_flatten_program_strips_versions(self):
        flat = flatten_program(paper_example_program())
        for rule in flat:
            assert rule.head.target in (Var("E"),)


class TestSectionTwoFourAnomaly:
    """bob at $4100: versions keep him; one-step fires him."""

    def test_versioned_keeps_bob(self):
        base = paper_example_base(bob_salary=4100)
        result = UpdateEngine().apply(paper_example_program(), base)
        employees = {a["E"] for a in query(result.new_base, "E.isa -> empl")}
        assert employees == {"phil", "bob"}
        hpe = {a["E"] for a in query(result.new_base, "E.isa -> hpe")}
        assert hpe == {"phil", "bob"}

    def test_naive_fires_bob(self):
        base = paper_example_base(bob_salary=4100)
        result = naive_one_step_update(paper_example_program(), base)
        employees = {a["E"] for a in query(result.new_base, "E.isa -> empl")}
        assert employees == {"phil"}
        # and the hpe classification is missed entirely (original salaries)
        assert query(result.new_base, "E.isa -> hpe") == []

    def test_results_differ(self):
        base = paper_example_base(bob_salary=4100)
        versioned = UpdateEngine().apply(paper_example_program(), base).new_base
        naive = naive_one_step_update(paper_example_program(), base).new_base
        assert versioned != naive


class TestOneStepSemantics:
    def test_modify_applied(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.")
        result = naive_one_step_update(program, base)
        assert query(result.new_base, "a.m -> V") == [{"V": 2}]

    def test_modify_reads_original_state_only(self):
        # both rules fire against the original value: no chaining
        base = parse_object_base("a.m -> 1.")
        program = parse_program(
            """
            r1: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.
            r2: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 10.
            """
        )
        result = naive_one_step_update(program, base)
        values = sorted(a["V"] for a in query(result.new_base, "a.m -> V"))
        assert values == [2, 11]  # both from 1; never 12

    def test_delete_wins_over_modify(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program(
            """
            d: del[X].m -> 1 <= X.m -> 1.
            m: mod[X].m -> (1, 9) <= X.m -> 1.
            """
        )
        result = naive_one_step_update(program, base)
        assert query(result.new_base, "a.m -> V") == []

    def test_pending_tests_in_bodies(self):
        base = parse_object_base("a.m -> 1. b.m -> 2.")
        program = parse_program(
            """
            d: del[X].m -> 1 <= X.m -> 1.
            i: ins[X].survivor -> yes <= X.m -> V, not del[X].m -> V.
            """
        )
        result = naive_one_step_update(program, base)
        survivors = {a["X"] for a in query(result.new_base, "X.survivor -> yes")}
        assert survivors == {"b"}

    def test_object_vanishes_when_everything_deleted(self):
        base = parse_object_base("a.m -> 1.")
        program = parse_program("d: del[X].* <= X.m -> 1.")
        result = naive_one_step_update(program, base)
        assert O("a") not in result.new_base.objects()

    def test_pending_counts(self):
        base = paper_example_base(bob_salary=4100)
        result = naive_one_step_update(paper_example_program(), base)
        assert result.pending.size() > 0
        assert result.iterations >= 2  # fixpoint detection round included
