"""Tests for baselines."""
