"""Shared fixtures: the paper's example bases and programs."""

from __future__ import annotations

import pytest

from repro import UpdateEngine
from repro.workloads import (
    ancestors_program,
    hypothetical_base,
    hypothetical_program,
    paper_example_base,
    paper_example_program,
    salary_raise_program,
)
from repro.workloads.genealogy import paper_family_base


@pytest.fixture()
def engine() -> UpdateEngine:
    return UpdateEngine()

@pytest.fixture()
def tracing_engine() -> UpdateEngine:
    return UpdateEngine(collect_trace=True, collect_snapshots=True)


@pytest.fixture()
def paper_base():
    return paper_example_base()


@pytest.fixture()
def paper_base_4100():
    return paper_example_base(bob_salary=4100)


@pytest.fixture()
def paper_program():
    return paper_example_program()


@pytest.fixture()
def raise_program():
    return salary_raise_program()


@pytest.fixture()
def whatif_base():
    return hypothetical_base()


@pytest.fixture()
def whatif_program():
    return hypothetical_program()


@pytest.fixture()
def family_base():
    return paper_family_base()


@pytest.fixture()
def family_program():
    return ancestors_program()
