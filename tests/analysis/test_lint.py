"""Tests for the static diagnostics (repro.analysis.lint)."""

from repro import parse_program
from repro.analysis import Severity, lint_program
from repro.workloads import (
    ancestors_program,
    hypothetical_program,
    paper_example_program,
)


def codes(program):
    return [f.code for f in lint_program(program)]


class TestCleanPrograms:
    def test_paper_program_is_clean(self):
        # notably: no L005, because rule4 carries the paper's own
        # mutual-exclusion guard (not del[mod(E)].isa -> empl)
        assert codes(paper_example_program()) == []

    def test_hypothetical_program_single_benign_finding(self):
        # the paper's rule 3 uses E exactly once ("some employee's raised
        # salary beats peter's") — a true singleton the typo heuristic
        # correctly flags as benign noise
        findings = lint_program(hypothetical_program())
        assert [(f.code, f.rule) for f in findings] == [("L003", "rule3")]

    def test_ancestors_program_is_clean(self):
        assert codes(ancestors_program()) == []


class TestL001UnsatisfiableVersionRead:
    def test_reading_unproduced_version(self):
        program = parse_program(
            "r: ins[X].t -> 1 <= mod(X).sal -> S."  # nobody performs a mod
        )
        findings = lint_program(program)
        assert [f.code for f in findings] == ["L001", "L002"][:1] or "L001" in codes(program)

    def test_satisfiable_when_produced(self):
        program = parse_program(
            """
            a: mod[X].sal -> (S, S2) <= X.sal -> S, S2 = S + 1.
            b: ins[mod(X)].t -> 1 <= mod(X).sal -> S.
            """
        )
        assert "L001" not in codes(program)

    def test_version_var_reads_exempt(self):
        program = parse_program(
            "r: ins[ledger].h@X -> S <= ?W.sal -> S, ?W.exists -> X."
        )
        assert "L001" not in codes(program)


class TestL002UpdateNeverPerformed:
    def test_unperformed_update_test(self):
        program = parse_program(
            "r: ins[X].t -> 1 <= X.m -> V, not del[X].m -> V."
        )
        assert "L002" in codes(program)

    def test_performed_update_ok(self):
        program = parse_program(
            """
            d: del[X].m -> V <= X.m -> V, X.kill -> yes.
            r: ins[del(X)].t -> 1 <= X.m -> V, del[X].m -> V.
            """
        )
        assert "L002" not in codes(program)


class TestL003SingletonVariables:
    def test_singleton_flagged(self):
        program = parse_program("r: ins[X].t -> 1 <= X.m -> Lonely.")
        findings = [f for f in lint_program(program) if f.code == "L003"]
        assert len(findings) == 1
        assert "Lonely" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_underscore_convention_exempt(self):
        program = parse_program("r: ins[X].t -> 1 <= X.m -> _ignored.")
        assert "L003" not in codes(program)

    def test_repeated_variable_ok(self):
        program = parse_program("r: ins[X].t -> V <= X.m -> V.")
        assert "L003" not in codes(program)


class TestL004NoopModify:
    def test_same_variable_twice(self):
        program = parse_program("r: mod[X].m -> (V, V) <= X.m -> V.")
        assert "L004" in codes(program)

    def test_same_constant_twice(self):
        program = parse_program("r: mod[X].m -> (1, 1) <= X.m -> 1.")
        assert "L004" in codes(program)

    def test_proper_modify_ok(self):
        program = parse_program("r: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.")
        assert "L004" not in codes(program)


class TestL005LinearityRisk:
    def test_section5_example_flagged(self):
        program = parse_program(
            """
            m: mod[o].m -> (a, b) <= o.t -> yes.
            d: del[o].m -> a <= o.t -> yes.
            """
        )
        findings = [f for f in lint_program(program) if f.code == "L005"]
        assert len(findings) == 1
        assert "linearity" in findings[0].message

    def test_guard_idiom_suppresses(self):
        program = parse_program(
            """
            d: del[mod(E)].* <= mod(E).kill -> yes.
            i: ins[mod(E)].t -> 1 <= mod(E).m -> V,
               not del[mod(E)].m -> V.
            """
        )
        assert "L005" not in codes(program)

    def test_same_kind_not_flagged(self):
        program = parse_program(
            """
            a: mod[X].m -> (V, V2) <= X.m -> V, V2 = V + 1.
            b: mod[X].n -> (V, V2) <= X.n -> V, V2 = V + 2.
            """
        )
        assert "L005" not in codes(program)

    def test_disjoint_targets_not_flagged(self):
        program = parse_program(
            """
            a: mod[x].m -> (1, 2) <= x.m -> 1.
            b: del[y].m -> 1 <= y.m -> 1.
            """
        )
        assert "L005" not in codes(program)


class TestCliIntegration:
    def test_check_lint_flag(self, tmp_path, capsys):
        from repro.cli import main

        program_file = tmp_path / "p.upd"
        program_file.write_text(
            "r: ins[X].t -> 1 <= X.m -> Lonely.", encoding="utf-8"
        )
        assert main(["check", "--program", str(program_file), "--lint"]) == 0
        out = capsys.readouterr().out
        assert "L003" in out

    def test_clean_report(self, tmp_path, capsys):
        from repro.cli import main
        from repro.lang.pretty import format_program
        from repro.workloads import paper_example_program

        program_file = tmp_path / "p.upd"
        program_file.write_text(
            format_program(paper_example_program()), encoding="utf-8"
        )
        main(["check", "--program", str(program_file), "--lint"])
        assert "lint: clean" in capsys.readouterr().out
