"""Tests for the provenance module (explanations over traces)."""

import pytest

from repro import Oid, UpdateEngine
from repro.analysis import explain_fact, explain_version
from repro.core.facts import Fact
from repro.core.terms import UpdateKind, wrap
from repro.workloads import paper_example_base, paper_example_program

O = Oid
INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


@pytest.fixture(scope="module")
def figure2():
    base = paper_example_base()
    engine = UpdateEngine(collect_trace=True)
    outcome = engine.evaluate(paper_example_program(), base)
    return base, outcome


class TestExplainFact:
    def test_base_fact(self, figure2):
        base, outcome = figure2
        explanation = explain_fact(
            outcome.trace, base, Fact(O("phil"), "sal", (), O(4000))
        )
        assert explanation.kind == "base"

    def test_inserted_fact(self, figure2):
        base, outcome = figure2
        fact = Fact(wrap(INS, wrap(MOD, O("phil"))), "isa", (), O("hpe"))
        explanation = explain_fact(outcome.trace, base, fact)
        assert explanation.kind == "inserted"
        assert explanation.rule == "rule4"
        assert explanation.stratum == 2
        assert ("E", O("phil")) in explanation.binding

    def test_modified_fact(self, figure2):
        base, outcome = figure2
        fact = Fact(wrap(MOD, O("phil")), "sal", (), O(4600.0))
        explanation = explain_fact(outcome.trace, base, fact)
        assert explanation.kind == "modified"
        assert explanation.rule == "rule1"

    def test_copied_fact_recurses_to_base(self, figure2):
        base, outcome = figure2
        fact = Fact(wrap(INS, wrap(MOD, O("phil"))), "pos", (), O("mgr"))
        explanation = explain_fact(outcome.trace, base, fact)
        assert explanation.kind == "copied"
        assert explanation.predecessor.kind == "copied"
        assert explanation.predecessor.predecessor.kind == "base"

    def test_copied_fact_stops_at_modification(self, figure2):
        base, outcome = figure2
        fact = Fact(wrap(INS, wrap(MOD, O("phil"))), "sal", (), O(4600.0))
        explanation = explain_fact(outcome.trace, base, fact)
        assert explanation.kind == "copied"
        assert explanation.predecessor.kind == "modified"

    def test_unknown_fact_rejected(self, figure2):
        base, outcome = figure2
        with pytest.raises(LookupError):
            explain_fact(outcome.trace, base, Fact(O("ghost"), "m", (), O(1)))

    def test_render(self, figure2):
        base, outcome = figure2
        fact = Fact(wrap(INS, wrap(MOD, O("phil"))), "isa", (), O("hpe"))
        text = explain_fact(outcome.trace, base, fact).render()
        assert "rule4" in text and "stratum 2" in text


class TestExplainVersion:
    def test_final_phil(self, figure2):
        base, outcome = figure2
        version = wrap(INS, wrap(MOD, O("phil")))
        explanations = explain_version(
            outcome.trace, base, outcome.result_base, version
        )
        kinds = {(e.fact.method, str(e.fact.result)): e.kind for e in explanations}
        assert kinds == {
            ("isa", "empl"): "copied",
            ("isa", "hpe"): "inserted",
            ("pos", "mgr"): "copied",
            ("sal", "4600.0"): "copied",  # modified on mod(phil), copied here
        }

    def test_exists_excluded_by_default(self, figure2):
        base, outcome = figure2
        version = wrap(MOD, O("phil"))
        explanations = explain_version(
            outcome.trace, base, outcome.result_base, version
        )
        assert all(e.fact.method != "exists" for e in explanations)

    def test_deleted_version_keeps_no_applications(self, figure2):
        base, outcome = figure2
        version = wrap(DEL, wrap(MOD, O("bob")))
        explanations = explain_version(
            outcome.trace, base, outcome.result_base, version
        )
        assert explanations == []
