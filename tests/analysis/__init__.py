"""Tests for repro.analysis."""
