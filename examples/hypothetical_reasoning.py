#!/usr/bin/env python3
"""What-if analysis with versions (Section 2.3, second example).

"Would peter be the richest employee after a (non-linear) salary raise?"
The program *performs* the raise on version ``mod(e)``, *reverts* it right
away on ``mod(mod(e))``, and judges richness on the intermediate raised
version — classic hypothetical reasoning, expressible because every stage
of the update-process remains addressable through its VID.

The script runs the paper's program on several scenarios and shows that
the final base always carries the *original* salaries plus the verdict.
Run::

    python examples/hypothetical_reasoning.py
"""

from repro import UpdateEngine, parse_object_base, query
from repro.workloads import hypothetical_program

SCENARIOS = {
    "paper shape (peter wins on factor)": """
        peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3.
        anna.isa -> empl.   anna.sal -> 120.   anna.factor -> 2.
    """,
    "anna outgrows peter": """
        peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 2.
        anna.isa -> empl.   anna.sal -> 120.   anna.factor -> 4.
    """,
    "tie goes to peter (strict >)": """
        peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3.
        anna.isa -> empl.   anna.sal -> 150.   anna.factor -> 2.
    """,
}


def main() -> None:
    program = hypothetical_program()
    print("program (note the mod(mod(e)) revert and footnote 3's strata):")
    for rule in program:
        print(f"  {rule}")
    print()

    engine = UpdateEngine()
    for title, base_text in SCENARIOS.items():
        base = parse_object_base(base_text)
        result = engine.apply(program, base)

        verdict = query(result.new_base, "peter.richest -> V")
        salaries = query(result.new_base, "E.isa -> empl, E.sal -> S")
        raised = query(result.result_base, "mod(E).sal -> S")

        print(f"scenario: {title}")
        print(f"  stratification: {result.stratification.names()}")
        print(f"  hypothetical salaries: "
              + ", ".join(f"{a['E']}={a['S']}" for a in raised))
        print(f"  verdict: peter richest -> {verdict[0]['V']}")
        print(f"  salaries in ob' (unchanged): "
              + ", ".join(f"{a['E']}={a['S']}" for a in salaries))
        print()


if __name__ == "__main__":
    main()
