#!/usr/bin/env python3
"""The observability layer end to end: metrics, slowlog, dashboard.

One server, metrics switched on programmatically (the CLI equivalents
are ``repro serve --metrics`` or ``REPRO_OBS=1``).  A writer commits a
few rule programs and a watcher holds a live subscription; then the
operator surfaces are read back three ways:

* ``conn.stats()`` — the uniform stats document every backend shares,
  now carrying ``metrics`` (registry snapshot) and ``slowlog`` sections;
* the ``metrics`` wire command — Prometheus text exposition, the same
  thing ``repro client metrics`` prints;
* :func:`repro.obs.render_dashboard` — the pure renderer behind
  ``repro top``.

A deliberately slowed commit threshold shows the slowlog catching an
"expensive" commit with its tag attached.

Run::

    PYTHONPATH=src python examples/observability.py
"""

import tempfile

import repro
from repro.api import BackgroundServer
from repro.obs import enable_metrics, render_dashboard
from repro.obs.slowlog import slowlog
from repro.storage import VersionedStore

BASE = """
    ada.isa -> empl.    ada.sal -> 4000.   ada.pos -> mgr.
    ben.isa -> empl.    ben.sal -> 3200.   ben.boss -> ada.
    cho.isa -> empl.    cho.sal -> 3500.   cho.boss -> ada.
"""

RAISE = """
    raise: mod[E].sal -> (S, S2) <= E.boss -> ada, E.sal -> S, S2 = S * 1.05.
"""

HIRE = """
    hire_isa:  ins[dee].isa -> empl <= ada.isa -> empl.
    hire_sal:  ins[dee].sal -> 3000 <= ada.isa -> empl.
    hire_boss: ins[dee].boss -> ada <= ada.isa -> empl.
"""


def main() -> None:
    enable_metrics(True)                      # what `serve --metrics` does
    slowlog().set_threshold("commit", 0.0)    # catch every commit for demo
    try:
        run()
    finally:
        slowlog().clear()
        slowlog().set_threshold("commit", None)
        enable_metrics(None)


def run() -> None:
    store = VersionedStore(repro.parse_object_base(BASE), tag="day0")
    with tempfile.TemporaryDirectory() as scratch:
        path = f"{scratch}/obs.sock"
        with BackgroundServer(store, path=path) as server:
            conn = repro.connect(server.target)
            conn.subscribe("E.isa -> empl, E.sal -> S")
            conn.apply(RAISE, tag="team-raise")
            conn.apply(HIRE, tag="hire-dee")
            conn.query("E.boss -> B")

            # 1. every backend's stats() carries the same sections
            stats = conn.stats()
            fired = stats["metrics"]["registry"]["engine_rule_fired"]
            print("per-rule fired counters:")
            for labels, count in sorted(fired["series"].items()):
                print(f"  {labels:18s} {count:g}")
            phases = stats["metrics"]["registry"]["commit_phase_seconds"]
            print("commit phases (count / p50 ms):")
            for labels, snap in sorted(phases["series"].items()):
                print(f"  {labels:18s} {snap['count']:3d}  "
                      f"{snap['p50'] * 1000:8.3f}")

            # 2. Prometheus text, as `repro client metrics` prints it
            text = conn.call("metrics")["text"]
            print("\nprometheus exposition (excerpt):")
            for line in text.splitlines():
                if "engine_rule_fired" in line or "server_commits" in line:
                    print(f"  {line}")

            # 3. the slowlog caught the commits (threshold 0 for the demo)
            print("\nslowlog entries:")
            for entry in stats["slowlog"]["entries"]:
                print(f"  {entry['kind']:7s} {entry['seconds'] * 1000:8.3f} ms"
                      f"  tag={entry.get('tag', '-')}")

            # 4. the `repro top` dashboard is a pure function over stats()
            print("\n" + "\n".join(render_dashboard(stats, server.address)))
            conn.close()


if __name__ == "__main__":
    main()
