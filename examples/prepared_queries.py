#!/usr/bin/env python3
"""Prepared queries: compile once, serve many, pay only for real changes.

Walkthrough of the read-optimized serving layer:

1. put a base under a :class:`repro.storage.VersionedStore`,
2. ``store.prepare`` a few conjunctive queries — each body is compiled
   once into a join plan (literal order + secondary-index columns) and a
   dependency signature,
3. ``store.query`` serves them memoized per revision,
4. commit updates and watch the store *carry* the memos the delta provably
   cannot affect, while invalidating only the queries that actually read a
   changed fact.

Run::

    PYTHONPATH=src python examples/prepared_queries.py
"""

from repro import parse_object_base, parse_program
from repro.storage import VersionedStore

BASE = """
    % a four-person shop: two engineers under one manager, one accountant
    ada.isa -> empl.    ada.sal -> 4000.   ada.pos -> mgr.
    ben.isa -> empl.    ben.sal -> 3200.   ben.boss -> ada.
    cho.isa -> empl.    cho.sal -> 3500.   cho.boss -> ada.
    dee.isa -> empl.    dee.sal -> 2800.   dee.dept -> accounting.
"""

RAISE = """
    % a 5% raise for ben only: the commit delta is two sal facts
    raise: mod[ben].sal -> (S, S2) <= ben.sal -> S, S2 = S * 1.05.
"""


def show(store: VersionedStore, label: str) -> None:
    print(f"-- {label}")
    for name, stats in sorted(store.prepared_stats().items()):
        print(
            f"   {name:<10} hits={stats['hits']} misses={stats['misses']} "
            f"carried={stats['carried']} invalidated={stats['invalidated']}"
        )


def main() -> None:
    store = VersionedStore(parse_object_base(BASE))

    # Compile once.  `salaries` reads sal facts; `org` reads only boss
    # facts, which the raise program never touches.
    salaries = store.prepare("E.isa -> empl, E.sal -> S", name="salaries")
    org = store.prepare("E.boss -> B", name="org")

    print("salaries:", store.query(salaries))
    print("org     :", store.query(org))
    store.query(salaries)  # a repeat at the same revision: dictionary hit
    show(store, "after first reads (1 miss each, then hits)")

    # Commit a revision.  The exact (added, removed) delta is folded
    # against each registered query's signature: `salaries` is invalidated
    # (it reads sal), `org` is carried forward without re-execution.
    store.apply(parse_program(RAISE), tag="raise-ben")
    print("\nafter raise:")
    print("salaries:", store.query(salaries))  # recomputed: ben at 3360.0
    print("org     :", store.query(org))       # served from the carried memo
    show(store, "after the commit")

    # The prepared path works against any base, store or not — and the
    # compiled plan picks secondary indexes: `E.boss -> ada` probes the
    # O(1) bucket of boss-facts with result `ada` instead of scanning.
    reports = store.prepare("E.boss -> ada, E.sal -> S", name="reports")
    print("\nada's reports:", store.query(reports))


if __name__ == "__main__":
    main()
