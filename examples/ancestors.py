#!/usr/bin/env python3
"""Recursive updates: computing ancestors (Section 2.3, third example).

Two ``ins`` rules — "parents are ancestors" and "parents of ancestors are
ancestors" — form a single recursive stratum; methods ``parents`` and
``anc`` are *set-valued* (several method-applications with the same host
and method simply coexist, Section 2.1's built-in set concept).

The script runs the paper's two-rule program on a generated family DAG and
verifies the result against a plain graph traversal.  Run::

    python examples/ancestors.py
"""

from repro import UpdateEngine, query
from repro.workloads import ancestors_program, genealogy_base, true_ancestors
from repro.workloads.genealogy import paper_family_base


def show(base, engine, program, title):
    result = engine.apply(program, base)
    print(f"{title}")
    print(f"  stratification: {result.stratification.names()} (single recursive stratum)")
    answers = query(result.new_base, "X.anc -> P")
    by_person: dict[str, list[str]] = {}
    for answer in answers:
        by_person.setdefault(str(answer["X"]), []).append(str(answer["P"]))
    for person in sorted(by_person):
        print(f"  {person}.anc = {{{', '.join(sorted(by_person[person]))}}}")
    return result


def main() -> None:
    engine = UpdateEngine()
    program = ancestors_program()

    print("program:")
    for rule in program:
        print(f"  {rule}")
    print()

    show(paper_family_base(), engine, program, "hand-written family:")
    print()

    generated = genealogy_base(generations=4, per_generation=4, seed=7)
    result = show(generated, engine, program, "generated 4-generation DAG:")
    print()

    # cross-check against an independent graph traversal
    expected = true_ancestors(generated)
    for person, ancestors in expected.items():
        got = {str(a["P"]) for a in query(result.new_base, f"{person}.anc -> P")}
        assert got == ancestors, f"{person}: {got} != {ancestors}"
    print("verified against graph-traversal ground truth ✓")


if __name__ == "__main__":
    main()
