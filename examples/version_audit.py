#!/usr/bin/env python3
"""Version histories: auditing updates and long-term store revisions.

Two complementary kinds of versioning from the paper:

* **within one update-process** — every stage of an object's update remains
  addressable by its VID; with the Section 6 extension (version variables,
  ``?W``) one generic rule audits *all* stages regardless of depth;
* **across update-processes** — :class:`repro.storage.VersionedStore` keeps
  one revision per applied program ("several [single updates] may give rise
  to introduce a new version in the usual sense", Section 1), with as-of
  queries and diffs.

Run::

    python examples/version_audit.py
"""

from repro import UpdateEngine, parse_object_base, parse_program, query
from repro.ext import audit_history_program
from repro.storage import VersionedStore
from repro.workloads import salary_raise_program

BASE = """
    joe.isa -> empl.    joe.sal -> 1000.
    ada.isa -> empl.    ada.sal -> 2000.
"""

TWO_STAGE_UPDATE = """
    % stage 1: a raise;  stage 2: a correction on the raised version
    m1: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, S2 = S + 100.
    m2: mod[mod(E)].sal -> (S, S2) <=
        mod(E).sal -> S, E.isa -> empl, S2 = S + 25.
"""


def within_process_audit() -> None:
    print("-- audit within one update-process (Section 6 extension) --")
    base = parse_object_base(BASE)
    base.add_object("ledger")

    engine = UpdateEngine()
    staged = engine.evaluate(parse_program(TWO_STAGE_UPDATE), base)

    # one generic rule, thanks to the version variable ?W:
    audit = audit_history_program("sal")
    print(f"  audit rule: {audit[0]}")
    audited = engine.evaluate(audit, staged.result_base)

    for person in ("joe", "ada"):
        history = sorted(
            answer["S"]
            for answer in query(
                audited.result_base, f"ins(ledger).hist@{person} -> S"
            )
        )
        print(f"  {person} salary history: {history}")
    print()


def across_process_history() -> None:
    print("-- history across update-processes (VersionedStore) --")
    store = VersionedStore(parse_object_base(BASE), tag="opening")
    store.apply(salary_raise_program(percent=10), tag="raise-q1")
    store.apply(salary_raise_program(percent=5), tag="raise-q2")

    for revision in store.revisions():
        salaries = query(revision.base, "E.isa -> empl, E.sal -> S")
        rendered = ", ".join(f"{a['E']}={a['S']:.2f}" for a in salaries)
        print(f"  revision {revision.index} [{revision.tag}]: {rendered}")

    added, removed = store.diff("opening", "raise-q2")
    print(f"  diff opening -> raise-q2: +{len(added)} facts, -{len(removed)} facts")
    joe_then = query(store.as_of("opening"), "joe.sal -> S")[0]["S"]
    joe_now = query(store.current, "joe.sal -> S")[0]["S"]
    print(f"  joe: {joe_then} then, {joe_now:.2f} now")


def main() -> None:
    within_process_audit()
    across_process_history()


if __name__ == "__main__":
    main()
