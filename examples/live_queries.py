#!/usr/bin/env python3
"""Live queries through the unified connection API, over a real server.

A *watcher* connection subscribes to two conjunctive queries; a *writer*
connection commits update transactions — one optimistic MVCC transaction
and one autocommit.  The server pushes only *answer diffs*, and only for
the queries each commit can actually affect (the commit's exact fact delta
is folded through every subscription's dependency signature first):

* the salary raise reaches the ``salaries`` subscription as a two-row
  diff, while the ``org_chart`` subscription hears nothing — the delta
  provably cannot change it;
* the hire touches both.

Everything runs over the real asyncio JSON-lines server on a unix socket
(:class:`repro.api.BackgroundServer` hosts it in-process); both clients
are plain synchronous ``repro.connect("serve:…")`` connections, and the
same conversation works across processes via ``repro serve`` /
``repro client``.

Run::

    PYTHONPATH=src python examples/live_queries.py
"""

import json
import tempfile

import repro
from repro.api import BackgroundServer
from repro.storage import VersionedStore

BASE = """
    ada.isa -> empl.    ada.sal -> 4000.   ada.pos -> mgr.
    ben.isa -> empl.    ben.sal -> 3200.   ben.boss -> ada.
    cho.isa -> empl.    cho.sal -> 3500.   cho.boss -> ada.
"""

RAISE = """
    raise: mod[E].sal -> (S, S2) <= E.boss -> ada, E.sal -> S, S2 = S * 1.05.
"""

HIRE = """
    hire_isa:  ins[dee].isa -> empl <= ada.isa -> empl.
    hire_sal:  ins[dee].sal -> 3000 <= ada.isa -> empl.
    hire_boss: ins[dee].boss -> ada <= ada.isa -> empl.
"""


def show(label: str, message: dict) -> None:
    print(f"  {label}: {json.dumps(message, sort_keys=True)}")


def writer_turn(path: str) -> None:
    writer = repro.connect(f"serve:{path}")

    # An optimistic MVCC transaction: read at a pinned revision, stage,
    # commit (a conflicting interim commit would raise the retryable
    # ConflictError; transaction(attempts=N) would replay automatically).
    with writer.transaction(tag="team-raise") as tx:
        before = tx.query("E.sal -> S")
        print(f"writer: tx pinned at revision {tx.pinned}, "
              f"sees {len(before)} salaries")
        tx.stage(RAISE)
    committed = tx.result.revision
    print(f"writer: committed revision {committed.index} [{committed.tag}]")

    # An autocommit hire: no session, serialized behind the writer queue.
    applied = writer.apply(HIRE, tag="hire-dee")
    print(f"writer: committed revision {applied.index} [{applied.tag}] "
          f"(+{applied.added} facts)")
    writer.close()


def main() -> None:
    store = VersionedStore(repro.parse_object_base(BASE), tag="day0")
    with tempfile.TemporaryDirectory() as scratch:
        path = f"{scratch}/live.sock"
        with BackgroundServer(store, path=path) as server:
            print(f"server: {server.address}\n")
            watcher = repro.connect(server.target)
            salaries = watcher.subscribe("E.isa -> empl, E.sal -> S")
            org = watcher.subscribe("E.boss -> B")
            print(f"watcher: initial salaries = {salaries.answers}")
            print(f"watcher: initial org chart = {org.answers}")

            writer_turn(path)

            # three diffs: team-raise -> salaries only (org chart provably
            # unaffected, no push); hire-dee -> salaries and org chart
            for stream in (salaries, salaries, org):
                delta = stream.next(timeout=10.0)
                show(
                    f"watcher got a diff for {delta.query!r} "
                    f"(revision {delta.revision} [{delta.tag}])",
                    {"added": list(delta.added), "removed": list(delta.removed)},
                )
            accounting = watcher.stats()["subscriptions"]
            watcher.close()

    print("\nsubscription accounting (skipped = commits proven irrelevant):")
    for sid, stats in accounting["by_id"].items():
        print(f"  {sid}: {stats}")


if __name__ == "__main__":
    main()
