#!/usr/bin/env python3
"""Live queries: two concurrent clients over the serving subsystem.

A *watcher* client subscribes to two conjunctive queries; a *writer*
client commits update transactions — one optimistic MVCC transaction and
one autocommit.  The server pushes only *answer diffs*, and only for the
queries each commit can actually affect (the commit's exact fact delta is
folded through every subscription's dependency signature first):

* the salary raise reaches the ``salaries`` subscription as a two-row
  diff, while the ``org_chart`` subscription hears nothing — the delta
  provably cannot change it;
* the hire touches both.

Everything runs over the real asyncio JSON-lines server on a unix socket;
the same conversation works across processes via ``repro serve`` /
``repro client``.

Run::

    PYTHONPATH=src python examples/live_queries.py
"""

import asyncio
import json
import tempfile

from repro import parse_object_base
from repro.server import AsyncClient, ReproServer, StoreService
from repro.storage import VersionedStore

BASE = """
    ada.isa -> empl.    ada.sal -> 4000.   ada.pos -> mgr.
    ben.isa -> empl.    ben.sal -> 3200.   ben.boss -> ada.
    cho.isa -> empl.    cho.sal -> 3500.   cho.boss -> ada.
"""

RAISE = """
    raise: mod[E].sal -> (S, S2) <= E.boss -> ada, E.sal -> S, S2 = S * 1.05.
"""

HIRE = """
    hire_isa:  ins[dee].isa -> empl <= ada.isa -> empl.
    hire_sal:  ins[dee].sal -> 3000 <= ada.isa -> empl.
    hire_boss: ins[dee].boss -> ada <= ada.isa -> empl.
"""


def show(label: str, message: dict) -> None:
    print(f"  {label}: {json.dumps(message, sort_keys=True)}")


async def watcher_task(path: str, diffs_expected: int) -> dict:
    watcher = await AsyncClient.connect(path=path)
    salaries = await watcher.call("subscribe", body="E.isa -> empl, E.sal -> S")
    org = await watcher.call("subscribe", body="E.boss -> B")
    print(f"watcher: initial salaries = {salaries['answers']}")
    print(f"watcher: initial org chart = {org['answers']}")
    for _ in range(diffs_expected):
        push = await watcher.next_push(timeout=10.0)
        show(
            f"watcher got a diff for {push['query']!r} "
            f"(revision {push['revision']} [{push['tag']}])",
            {"added": push["added"], "removed": push["removed"]},
        )
    accounting = (await watcher.call("stats"))["stats"]["subscriptions"]
    await watcher.close()
    return accounting


async def writer_task(path: str) -> None:
    writer = await AsyncClient.connect(path=path)
    await asyncio.sleep(0.05)  # let the watcher subscribe first

    # An optimistic MVCC transaction: read at a pinned revision, stage,
    # commit (a conflicting interim commit would come back as a
    # retry-able ``conflict: true`` response).
    begun = await writer.call("tx-begin")
    session = begun["session"]
    before = await writer.call(
        "tx-query", session=session, body="E.sal -> S"
    )
    print(f"writer: tx pinned at revision {begun['revision']}, "
          f"sees {len(before['answers'])} salaries")
    await writer.call("tx-stage", session=session, program=RAISE)
    committed = await writer.call("tx-commit", session=session, tag="team-raise")
    print(f"writer: committed revision {committed['revision']} [team-raise]")

    # An autocommit hire: no session, serialized behind the writer queue.
    applied = await writer.call("apply", program=HIRE, tag="hire-dee")
    print(f"writer: committed revision {applied['revision']} [hire-dee] "
          f"(+{applied['added']} facts)")
    await writer.close()


async def main() -> None:
    service = StoreService(VersionedStore(parse_object_base(BASE), tag="day0"))
    with tempfile.TemporaryDirectory() as scratch:
        path = f"{scratch}/live.sock"
        server = await ReproServer(service, path=path).start()
        print(f"server: {server.address}\n")
        # three diffs: team-raise -> salaries only (org chart provably
        # unaffected, no push); hire-dee -> salaries and org chart
        accounting, _ = await asyncio.gather(
            watcher_task(path, 3), writer_task(path)
        )
        await server.close()

    print("\nsubscription accounting (skipped = commits proven irrelevant):")
    for sid, stats in accounting["by_id"].items():
        print(f"  {sid}: {stats}")


if __name__ == "__main__":
    asyncio.run(main())
