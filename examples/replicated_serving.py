#!/usr/bin/env python3
"""Replicated serving: followers, failover, and epoch fencing, end to end.

One primary serves a journalled store over a unix socket; two
:class:`repro.replication.Follower` replicas bootstrap from it, tail its
committed journal lines (appended **byte-identically**, CRC-checked),
and serve reads locally.  A ``replset:`` client connection rides the
whole lifecycle:

* reads go to whichever member answers first, no promotion needed;
* a write token (``min_revision``) gives read-your-writes against a
  lagging replica;
* when the primary dies, the freshest follower is promoted at a bumped
  **fencing epoch** — the replica-set client rediscovers it and
  mutations resume, while the promoted journal provably contains every
  acknowledged commit as a byte-identical prefix.

Everything runs in one process via :class:`repro.api.BackgroundServer`;
the same conversation works across machines via ``repro serve``,
``repro replica serve`` and ``repro replica promote``.

Run::

    PYTHONPATH=src python examples/replicated_serving.py
"""

import tempfile
import time
from pathlib import Path

import repro
from repro.api import BackgroundServer, StaleEpochError
from repro.replication import Follower
from repro.server.service import StoreService

BASE = """
    ada.isa -> empl.    ada.sal -> 4000.   ada.pos -> mgr.
    ben.isa -> empl.    ben.sal -> 3200.   ben.boss -> ada.
    cho.isa -> empl.    cho.sal -> 3500.   cho.boss -> ada.
"""

RAISE = """
    raise: mod[E].sal -> (S, S2) <= E.boss -> ada, E.sal -> S, S2 = S * 1.05.
"""


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("replica never caught up")
        time.sleep(0.02)


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        service = StoreService.create(
            repro.parse_object_base(BASE), scratch / "primary", tag="day0"
        )
        with BackgroundServer(service, path=str(scratch / "p.sock")) as server:
            print(f"primary:  {server.address}")
            replicas = [
                Follower(
                    scratch / f"replica{i}", server.address,
                    heartbeat_interval=0.2,
                ).start()
                for i in (1, 2)
            ]
            for replica in replicas:
                print(f"replica:  {replica.directory.name} following "
                      f"{replica.primary} (from revision "
                      f"{replica.last_sync_from})")

            conn = repro.connect(server.target)
            revision = conn.apply(RAISE, tag="q1-raise")
            print(f"writer:   committed revision {revision.index} "
                  f"[{revision.tag}]")

            # read-your-writes on a replica: pin the read to the commit
            replica_conn = repro.connect(replicas[0].service)
            rows = replica_conn.query(
                "E.sal -> S", min_revision=revision.index
            )
            print(f"replica read (min_revision={revision.index}): "
                  f"{sorted(rows, key=str)}")
            lag = replica_conn.stats()["replication"]
            print(f"replica stats: role={lag['role']} lag={lag['lag']} "
                  f"last_index={lag['last_index']}")

            # journals are byte-identical prefixes — the whole invariant
            wait_until(lambda: all(
                len(r.service.store) == len(service.store) for r in replicas
            ))
            primary_text = (scratch / "primary" / "journal.jsonl").read_text()
            for replica in replicas:
                text = (replica.directory / "journal.jsonl").read_text()
                assert primary_text == text, "replica diverged!"
            print("journals: byte-identical on every member")

            acked = primary_text
            conn.close()

        # --- the primary just died (context manager closed it abruptly)
        survivor = max(replicas, key=lambda r: len(r.service.store))
        epoch = survivor.promote()
        print(f"\nfailover: promoted {survivor.directory.name} "
              f"at fencing epoch {epoch}")

        promoted = repro.connect(survivor.service)
        revision = promoted.apply(RAISE, tag="post-failover")
        print(f"writer:   committed revision {revision.index} "
              f"[{revision.tag}] on the new primary")

        promoted_text = (survivor.directory / "journal.jsonl").read_text()
        assert promoted_text.startswith(acked), "acked history lost!"
        print("history:  every acknowledged byte survives as a prefix")

        # a write demanding a newer epoch than this node's is fenced off —
        # how a zombie primary is stopped from forking history
        try:
            survivor.service.check_epoch(epoch + 1)
        except StaleEpochError as error:
            print(f"fencing:  stale-epoch write rejected "
                  f"(retryable={error.retryable})")

        replica_conn.close()
        promoted.close()
        for replica in replicas:
            replica.close()


if __name__ == "__main__":
    main()
