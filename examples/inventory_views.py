#!/usr/bin/env python3
"""Inventory rebalancing: arguments, derived methods, schema evolution.

A warehouse object base where ``stock@Item -> Qty`` is a *parameterised*
method (the paper's ``m@a1,...,ak`` form).  The scenario combines the two
Section 6 extensions and the Section 2.4 schema remark:

1. a derived method (view) classifies items as scarce per warehouse;
2. an update-program rebalances: scarce stock is topped up from the
   reserve, then warehouses left without reserve are tagged;
3. the implied schema evolution is reported ([SZ87] remark): the class
   ``depleted`` appears, methods become defined.

Run::

    python examples/inventory_views.py
"""

from repro import parse_object_base, parse_program, query
from repro.ext.derived import DerivedUpdateEngine, parse_derived_program
from repro.ext.schema import schema_delta

BASE = """
    north.isa -> warehouse.
    north.stock@bolts -> 20.    north.stock@nuts -> 500.
    north.reserve -> 100.

    south.isa -> warehouse.
    south.stock@bolts -> 300.   south.stock@nuts -> 30.
    south.reserve -> 40.
"""

# a version-transparent view: scarce whenever the *current* version's
# stock of an item is below 50
VIEWS = """
    scarce: ?W.scarce -> I <= ?W.stock@I -> Q, Q < 50.
"""

PROGRAM = """
    % top up every scarce item from the warehouse reserve
    topup: mod[H].stock@I -> (Q, Q2) <=
        H.isa -> warehouse, H.scarce -> I, H.stock@I -> Q,
        H.reserve -> R, Q2 = Q + R.

    % the reserve was spent if anything was topped up
    spend: mod[H].reserve -> (R, 0) <=
        H.isa -> warehouse, H.scarce -> I, H.reserve -> R.

    % warehouses whose post-topup reserve is empty get classified
    tag: ins[mod(H)].isa -> depleted <=
        mod(H).isa -> warehouse, mod(H).reserve -> 0.
"""


def main() -> None:
    base = parse_object_base(BASE)
    views = parse_derived_program(VIEWS)
    program = parse_program(PROGRAM)

    engine = DerivedUpdateEngine(views)
    result = engine.apply(program, base)

    print("stratification:", result.stratification.names())
    print()

    print("stock after rebalancing:")
    for answer in query(result.new_base, "H.stock@I -> Q"):
        print(f"  {answer['H']}: {answer['I']} = {answer['Q']}")
    print()

    print("scarce items now (view over ob'):")
    still_scarce = query(engine.view(result.new_base), "H.scarce -> I")
    for answer in still_scarce:
        print(f"  {answer['H']}: {answer['I']}")
    if not still_scarce:
        print("  (none)")
    print()

    print("implied schema evolution ([SZ87] remark, Section 2.4):")
    delta = schema_delta(base, result.new_base)
    print("  " + delta.render().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
