#!/usr/bin/env python3
"""Sharded cluster serving: hash-partitioned stores behind one router.

Three independent served stores each own a slice of the fact space —
every fact (and every version) of one object lives on exactly one shard,
chosen by a process-stable hash of the object's identity.  A single
``cluster:`` connection makes the fleet feel like one store:

* a commit whose rule hosts are ground routes to one shard and takes the
  ordinary single-server fast path — the other shards never hear of it;
* a read over a host variable (``E.isa -> empl, E.sal -> S``) scatters:
  each shard answers completely for its own objects, the router merges;
* a read that joins *across* hosts gathers per-shard snapshots pinned by
  the revision vector and evaluates centrally;
* every commit advances one component of the cluster's **revision
  vector** — the composed index works everywhere a single store's
  revision number does (``as_of``, ``diff``, ``min_revision``
  read-your-writes tokens, subscription deltas).

Everything runs in one process via :class:`repro.cluster.LocalCluster`;
across machines the same conversation is ``repro cluster init``,
``repro cluster launch`` and ``repro.connect("cluster:a,b,c")``.

Run::

    PYTHONPATH=src python examples/sharded_cluster.py
"""

import repro
from repro.cluster import LocalCluster, shard_for
from repro.core.terms import Oid

BASE = """
    ada.isa -> empl.    ada.sal -> 4000.   ada.pos -> mgr.
    ben.isa -> empl.    ben.sal -> 3200.   ben.boss -> ada.
    cho.isa -> empl.    cho.sal -> 3500.   cho.boss -> ada.
    dee.isa -> empl.    dee.sal -> 3100.   dee.boss -> ada.
"""

PEOPLE = ("ada", "ben", "cho", "dee")


def main() -> None:
    with LocalCluster(BASE, shards=3) as cluster:
        print(f"cluster target: {cluster.target}\n")
        for person in PEOPLE:
            print(f"  {person} lives on shard {shard_for(Oid(person), 3)}")

        with repro.connect(cluster.target) as conn:
            # -- scatter read: each shard answers for its own people ----
            print("\nsalaries (scatter-merged across all shards):")
            for row in conn.query("E.isa -> empl, E.sal -> S"):
                print(f"  {row['E']}: {row['S']}")

            # -- single-shard commits: ground hosts route to one shard --
            for person in ("ben", "cho"):
                revision = conn.apply(
                    f"raise_{person}: mod[{person}].sal -> (S, S2) <= "
                    f"{person}.sal -> S, S2 = S + 300.",
                    tag=f"raise-{person}",
                )
                print(
                    f"\ncommitted {revision.tag!r} as cluster revision "
                    f"{revision.index} (one shard did the work)"
                )

            # -- the revision vector composes per-shard histories -------
            stats = conn.stats()["cluster"]["router"]
            print(
                f"\ncluster at revision {stats['revision']} "
                f"(vector {stats['vector']})"
            )
            print("history:", [record.tag for record in conn.log()])

            # -- time travel works on composed indexes ------------------
            then = conn.as_of(0)
            print(
                f"ben's salary at revision 0: "
                f"{repro.method_results(then, Oid('ben'), 'sal')}"
            )

            # -- cross-shard join: the gather fallback ------------------
            print("\nwho out-earns their boss (cross-host join):")
            rows = conn.query(
                "E.isa -> empl, E.boss -> B, E.sal -> SE, B.sal -> SB, "
                "SE > SB"
            )
            print(f"  {rows or 'nobody yet'}")

            # -- read-your-writes across connections --------------------
            token = conn.apply(
                "raise_dee: mod[dee].sal -> (S, S2) <= dee.sal -> S, "
                "S2 = S + 900.",
                tag="raise-dee",
            ).index
            with repro.connect(cluster.target) as other:
                answer = other.query("dee.sal -> S", min_revision=token)
                print(
                    f"\nanother connection, holding token {token}, sees "
                    f"dee at {answer[0]['S']}"
                )

            # -- live queries merge per-shard subscription streams ------
            stream = conn.subscribe("E.isa -> empl, E.sal -> S")
            conn.apply(
                "raise_ada: mod[ada].sal -> (S, S2) <= ada.sal -> S, "
                "S2 = S + 100.",
                tag="raise-ada",
            )
            delta = stream.next(timeout=10.0)
            print(
                f"\nlive delta at cluster revision {delta.revision} "
                f"[{delta.tag}]: +{list(delta.added)} -{list(delta.removed)}"
            )
            stream.close()


if __name__ == "__main__":
    main()
