#!/usr/bin/env python3
"""update = logic + control (Section 2.4): three ways to get the control.

The same intended update — raise, then fire over-earners, then classify —
run under:

1. the paper's **version identities** (control derived automatically from
   the VID structure of the rules);
2. **naive one-time-step** semantics (no control: every rule reads the
   original base) — fires bob even though after the raise he earns less
   than his boss;
3. **Logres-style modules** (manual control: the user orders the modules)
   — correct in the right order, wrong in the wrong order.

Scenario: bob earns $4100 under phil ($4000 + manager bonus).  Intended
outcome: nobody is fired, both end up high-paid.  Run::

    python examples/control_comparison.py
"""

from repro import UpdateEngine, format_object_base, query
from repro.baselines import naive_one_step_update, object_base_to_database
from repro.baselines.logres import enterprise_modules
from repro.datalog import DatalogEngine
from repro.workloads import paper_example_base, paper_example_program


def describe(db) -> str:
    employees = DatalogEngine.query(db, "sal", (None, None))
    hpe = [row[0] for row in DatalogEngine.query(db, "isa", (None, "hpe"))]
    staff = ", ".join(f"{name}=${sal:.0f}" for name, sal in employees)
    return f"{staff}; hpe = {{{', '.join(hpe)}}}"


def main() -> None:
    base = paper_example_base(bob_salary=4100)   # the Section 2.4 variant
    program = paper_example_program()

    print("1. version identities (automatic control):")
    versioned = UpdateEngine().apply(program, base)
    print(format_object_base(versioned.new_base).replace("\n", "\n   "))
    survivors = {str(a["E"]) for a in query(versioned.new_base, "E.isa -> empl")}
    print(f"   -> employees: {sorted(survivors)} (nobody fired) \n")

    print("2. naive one-time-step (no control):")
    naive = naive_one_step_update(program, base)
    print(format_object_base(naive.new_base).replace("\n", "\n   "))
    survivors = {str(a["E"]) for a in query(naive.new_base, "E.isa -> empl")}
    print(f"   -> employees: {sorted(survivors)} (bob wrongly fired, hpe missed)\n")

    modules = enterprise_modules()
    db = object_base_to_database(base)

    print("3. Logres modules, user order raise -> fire -> hpe (correct):")
    print(f"   {describe(modules.run(db))}")
    print("   Logres modules, user order fire -> raise -> hpe (wrong):")
    wrong = modules.reordered(["fire", "raise", "hpe"])
    print(f"   {describe(wrong.run(db))}")
    print("   -> same rules, different manual order, different base: the")
    print("      control the paper derives automatically from VIDs.")


if __name__ == "__main__":
    main()
