#!/usr/bin/env python3
"""Quickstart: the Section 2.1 salary raise, start to finish.

Demonstrates the core loop of the library:

1. load an object base (ground version-terms),
2. write an update-program in the concrete syntax,
3. apply it with :class:`repro.UpdateEngine`,
4. inspect the new base ``ob'`` and the version structure of ``result(P)``.

The paper's point with this example: the rule is *intuitively* a one-shot
raise, and versioning makes that literal — a variable only binds OIDs, so
the rule sees the original ``henry``, never the raised ``mod(henry)``, and
every employee is raised exactly once.  Run::

    python examples/quickstart.py
"""

from repro import UpdateEngine, format_object_base, parse_object_base, parse_program, query

BASE = """
    % three employees, salaries as stored base methods
    henry.isa -> empl.   henry.sal -> 250.
    mary.isa -> empl.    mary.sal -> 300.
    lea.isa -> empl.     lea.sal -> 410.
"""

PROGRAM = """
    % Section 2.1: every employee gets a 10% raise -- exactly once,
    % because E binds objects (OIDs), never versions.
    raise: mod[E].sal -> (S, S2) <=
        E.isa -> empl,
        E.sal -> S,
        S2 = S * 1.1.
"""


def main() -> None:
    base = parse_object_base(BASE)
    program = parse_program(PROGRAM)

    engine = UpdateEngine()
    result = engine.apply(program, base)

    print("new object base (ob'):")
    print(format_object_base(result.new_base))
    print()

    print("salaries after the update:")
    for answer in query(result.new_base, "E.isa -> empl, E.sal -> S"):
        print(f"  {answer['E']}: {answer['S']:.0f}")
    print()

    print("final version per object (the update history in the VID):")
    for obj, version in sorted(result.final_versions.items(), key=lambda kv: str(kv[0])):
        print(f"  {obj} -> {version}")
    print()

    # result(P) still contains the pre-raise states: versions are queryable.
    print("henry before vs after (read from result(P)):")
    before = query(result.result_base, "henry.sal -> S")[0]["S"]
    after = query(result.result_base, "mod(henry).sal -> S")[0]["S"]
    print(f"  henry.sal -> {before},  mod(henry).sal -> {after}")


if __name__ == "__main__":
    main()
