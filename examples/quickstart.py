#!/usr/bin/env python3
"""Quickstart: the Section 2.1 salary raise, start to finish.

Demonstrates the two layers of the library:

1. the **unified connection API** — ``repro.connect("memory:")`` gives the
   same typed surface (query / apply / transactions / live queries) you
   would get over a durable journal directory or a served socket;
2. the **engine layer** underneath — :class:`repro.UpdateEngine` exposes
   ``result(P)`` and the version structure the paper is about.

The paper's point with this example: the rule is *intuitively* a one-shot
raise, and versioning makes that literal — a variable only binds OIDs, so
the rule sees the original ``henry``, never the raised ``mod(henry)``, and
every employee is raised exactly once.  Run::

    python examples/quickstart.py
"""

import repro

BASE = """
    % three employees, salaries as stored base methods
    henry.isa -> empl.   henry.sal -> 250.
    mary.isa -> empl.    mary.sal -> 300.
    lea.isa -> empl.     lea.sal -> 410.
"""

PROGRAM = """
    % Section 2.1: every employee gets a 10% raise -- exactly once,
    % because E binds objects (OIDs), never versions.
    raise: mod[E].sal -> (S, S2) <=
        E.isa -> empl,
        E.sal -> S,
        S2 = S * 1.1.
"""


def main() -> None:
    # One connection, any backend: swap "memory:" for a journal directory
    # (durable) or "serve:/tmp/repro.sock" (a running `repro serve`) and
    # every call below stays the same.
    conn = repro.connect("memory:", base=BASE, tag="day0")

    revision = conn.apply(PROGRAM, tag="raise")
    print(f"committed revision {revision.index} [{revision.tag}]: "
          f"+{revision.added} -{revision.removed} facts")
    print()

    print("salaries after the update:")
    for answer in conn.query("E.isa -> empl, E.sal -> S"):
        print(f"  {answer['E']}: {answer['S']:.0f}")
    print()

    print("what changed (delta between the two revisions):")
    added, removed = conn.diff("day0", "raise")
    for fact in added:
        print(f"  + {fact}")
    for fact in removed:
        print(f"  - {fact}")
    print()

    # The engine layer underneath: result(P) keeps every version, so the
    # pre-raise state stays queryable through the VIDs.
    result = repro.UpdateEngine().apply(
        repro.parse_program(PROGRAM), repro.parse_object_base(BASE)
    )
    print("final version per object (the update history in the VID):")
    for obj, version in sorted(
        result.final_versions.items(), key=lambda kv: str(kv[0])
    ):
        print(f"  {obj} -> {version}")
    print()

    print("henry before vs after (read from result(P)):")
    before = repro.query(result.result_base, "henry.sal -> S")[0]["S"]
    after = repro.query(result.result_base, "mod(henry).sal -> S")[0]["S"]
    print(f"  henry.sal -> {before},  mod(henry).sal -> {after}")


if __name__ == "__main__":
    main()
