#!/usr/bin/env python3
"""The paper's running example (Section 2.3, Figure 2) with a full trace.

"Each employee gets a 10% salary-raise and those in a managerial position
an extra $200.  Afterwards all those employees are fired, who make more
than any of their superiors, and finally those of the remaining ones, who
make more than $4500, are grouped into a class called hpe."

The script prints the stratification (the paper's ``{rule1, rule2} <
{rule3} < {rule4}``), the Figure-2-style version states of phil and bob per
evaluation step, and the final base in which phil is a high-paid employee
at $4600 while bob — who out-earned his boss after the raise — is gone.
Run::

    python examples/enterprise_hr.py
"""

from repro import Oid, UpdateEngine, format_object_base
from repro.workloads import paper_example_base, paper_example_program


def main() -> None:
    base = paper_example_base()            # phil $4000 (mgr), bob $4200 under phil
    program = paper_example_program()      # rules 1-4 of Section 2.3

    print("update program:")
    for rule in program:
        print(f"  {rule}")
    print()

    engine = UpdateEngine(collect_trace=True, collect_snapshots=True)
    result = engine.apply(program, base)

    print("stratification (Section 4, conditions (a)-(d)):")
    for index, names in enumerate(result.stratification.names()):
        print(f"  stratum {index}: {{{', '.join(names)}}}")
    print()

    print("evaluation trace (compare with Figure 2 of the paper):")
    print(result.trace.render(objects=(Oid("phil"), Oid("bob"))))
    print()

    print("final versions:")
    for obj, version in sorted(result.final_versions.items(), key=lambda kv: str(kv[0])):
        print(f"  {obj} -> {version}")
    print()

    print("new object base (ob'):")
    print(format_object_base(result.new_base))
    print()
    print("phil ends in hpe at $4600; bob was fired (no trace of him in ob').")


if __name__ == "__main__":
    main()
