"""Setuptools shim: keeps `pip install -e .` working on toolchains that
predate PEP 660 editable wheels (no `wheel` package available)."""

from setuptools import setup

setup()
