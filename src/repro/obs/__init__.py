"""repro.obs — the end-to-end observability layer.

One process-wide metrics registry (:mod:`repro.obs.metrics`: counters,
gauges, histograms with bounded reservoirs, lightweight tracing spans),
a ring-buffered slow-query/slow-commit log (:mod:`repro.obs.slowlog`),
and the ``repro top`` dashboard renderer (:mod:`repro.obs.dashboard`).

Recording is off by default — the guarded helpers are near-zero-cost
no-ops — and switched on with ``REPRO_OBS=1`` or
``repro serve --metrics`` (:func:`enable_metrics`).  The registry is
exposed three ways: the ``metrics`` wire command (Prometheus-style text
plus a JSON snapshot), the ``metrics``/``slowlog`` sections of
:meth:`Connection.stats` (parity-pinned across the memory, journal and
served backends), and the ``repro top`` dashboard.
"""

from repro.obs.dashboard import render_dashboard
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enable_metrics,
    inc,
    metrics_enabled,
    observe,
    registry,
    render_prometheus,
    set_gauge,
    snapshot,
    span,
)
# NB: only the class and the record helper are lifted here — re-exporting
# the ``slowlog()`` accessor would shadow the ``repro.obs.slowlog``
# submodule on the package, breaking ``from repro.obs import slowlog``.
from repro.obs.slowlog import SlowLog, maybe_record

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowLog",
    "enable_metrics",
    "inc",
    "maybe_record",
    "metrics_enabled",
    "observe",
    "registry",
    "render_dashboard",
    "render_prometheus",
    "set_gauge",
    "snapshot",
    "span",
]
