"""Ring-buffered slow-query / slow-commit log.

Always on: the per-operation cost is a single float compare, and an
entry is only materialised when an operation crosses its threshold, so
the log is useful even on servers started without ``--metrics``.
Thresholds are configurable per kind through the environment
(``REPRO_SLOW_COMMIT_MS``, ``REPRO_SLOW_QUERY_MS`` — milliseconds) or
programmatically with :func:`set_threshold`; the buffer is bounded
(oldest-out) so an overloaded server cannot grow it without limit.
Dump it with ``repro client slowlog`` or read it from the ``slowlog``
section of :meth:`Connection.stats`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

__all__ = [
    "SlowLog",
    "DEFAULT_THRESHOLDS_S",
    "maybe_record",
    "slowlog",
]

#: Default thresholds in seconds per operation kind.
DEFAULT_THRESHOLDS_S = {"commit": 0.250, "query": 0.100, "command": 0.250}

_ENV_VARS = {
    "commit": "REPRO_SLOW_COMMIT_MS",
    "query": "REPRO_SLOW_QUERY_MS",
    "command": "REPRO_SLOW_COMMIT_MS",
}

#: Ring capacity (entries, oldest-out).
CAPACITY = 128


class SlowLog:
    """A bounded, thread-safe ring of slow-operation records."""

    def __init__(self, capacity: int = CAPACITY) -> None:
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._overrides: dict[str, float] = {}
        self._dropped = 0
        self._seq = 0

    def threshold_s(self, kind: str) -> float:
        """The active threshold for *kind* in seconds: programmatic
        override, then environment (milliseconds), then the default."""
        override = self._overrides.get(kind)
        if override is not None:
            return override
        env = os.environ.get(_ENV_VARS.get(kind, ""), "")
        if env:
            try:
                return float(env) / 1000.0
            except ValueError:
                pass
        return DEFAULT_THRESHOLDS_S.get(kind, 0.250)

    def set_threshold(self, kind: str, seconds: float | None) -> None:
        """Override one kind's threshold; ``None`` clears the override
        (falling back to the environment, then the defaults)."""
        if seconds is None:
            self._overrides.pop(kind, None)
        else:
            self._overrides[kind] = seconds

    def maybe_record(self, kind: str, seconds: float, **detail) -> bool:
        """Record one entry iff *seconds* crosses the kind's threshold.
        Returns whether an entry was recorded."""
        threshold = self.threshold_s(kind)
        if seconds < threshold:
            return False
        with self._lock:
            self._seq += 1
            if len(self._entries) == self._entries.maxlen:
                self._dropped += 1
            self._entries.append(
                {
                    "seq": self._seq,
                    "kind": kind,
                    "seconds": seconds,
                    "threshold_s": threshold,
                    "wall_time": time.time(),
                    **detail,
                }
            )
        return True

    def entries(self) -> list[dict]:
        """Newest-last copies of every buffered entry."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def stats(self) -> dict:
        """The stats-section shape shared by every backend."""
        with self._lock:
            entries = [dict(entry) for entry in self._entries]
            dropped = self._dropped
        return {
            "entries": entries,
            "dropped": dropped,
            "capacity": self._entries.maxlen,
            "thresholds_ms": {
                kind: self.threshold_s(kind) * 1000.0
                for kind in DEFAULT_THRESHOLDS_S
            },
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dropped = 0


_SLOWLOG = SlowLog()


def slowlog() -> SlowLog:
    """The process-wide slow log."""
    return _SLOWLOG


def maybe_record(kind: str, seconds: float, **detail) -> bool:
    return _SLOWLOG.maybe_record(kind, seconds, **detail)
