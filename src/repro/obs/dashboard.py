"""Rendering for ``repro top`` — a curses-free, periodically refreshed
text dashboard over the metrics endpoint.

The renderer is a pure function from a stats document (the
:meth:`Connection.stats` shape, whose ``metrics`` section carries the
registry snapshot) to a list of lines, so tests can assert on output
without a terminal; the CLI loop adds the ANSI clear and the sleep.
"""

from __future__ import annotations

__all__ = ["render_dashboard"]


def _series_total(snapshot: dict, name: str) -> float:
    entry = snapshot.get(name)
    if not entry:
        return 0.0
    total = 0.0
    for value in entry["series"].values():
        total += value["sum"] if isinstance(value, dict) else value
    return total


def _histogram_rows(snapshot: dict, name: str) -> list[tuple[str, dict]]:
    entry = snapshot.get(name)
    if not entry or entry["kind"] != "histogram":
        return []
    return sorted(entry["series"].items())


def _gauge_rows(snapshot: dict, name: str) -> list[tuple[str, float]]:
    entry = snapshot.get(name)
    if not entry:
        return []
    return sorted(entry["series"].items())


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def render_dashboard(stats: dict, target: str = "") -> list[str]:
    """Render one refresh of the dashboard from a stats document."""
    metrics = stats.get("metrics") or {}
    snapshot = metrics.get("registry") or {}
    slowlog = stats.get("slowlog") or {}
    lines: list[str] = []
    title = "repro top"
    if target:
        title += f" — {target}"
    lines.append(title)
    lines.append("=" * max(24, len(title)))

    lines.append(
        f"revisions {stats.get('revisions', 0):>6}   "
        f"head {stats.get('head_tag', '-') or '-'}   "
        f"commits {stats.get('commits', 0)}   "
        f"conflicts {stats.get('conflicts', 0)}   "
        f"sessions {stats.get('sessions_begun', 0)}"
    )
    subscriptions = stats.get("subscriptions") or {}
    lines.append(
        f"subscriptions {subscriptions.get('active', 0):>3}   "
        f"metrics {'on' if metrics.get('enabled') else 'off'}   "
        f"slowlog {len(slowlog.get('entries', []))} entries"
    )

    cluster = stats.get("cluster") or {}
    if cluster:
        router = cluster.get("router") or {}
        lines.append(
            f"cluster: {router.get('shards', 0)} shards   "
            f"revision {router.get('revision', 0)} "
            f"({router.get('vector', '')})   "
            f"reads single/scatter/gather "
            f"{router.get('single_reads', 0)}/"
            f"{router.get('scatter_reads', 0)}/"
            f"{router.get('gather_reads', 0)}   "
            f"failovers {router.get('failovers', 0)}"
        )
        lines.append(
            "  shard  role      revs  commits  confl  lag  subs"
        )
        for entry in cluster.get("shards", ()):
            lines.append(
                f"  {entry.get('shard', 0):>5}  "
                f"{str(entry.get('role') or '-'):<8}  "
                f"{entry.get('revisions', 0):>4}  "
                f"{entry.get('commits', 0):>7}  "
                f"{entry.get('conflicts', 0):>5}  "
                f"{entry.get('lag', 0):>3}  "
                f"{entry.get('subscriptions', 0):>4}"
            )

    replication = stats.get("replication") or {}
    if replication and not cluster:
        # the service reports a follower *count*; older documents (and
        # follower _info) may carry a list of addresses instead
        followers = replication.get("followers") or 0
        if not isinstance(followers, (int, float)):
            followers = len(followers)
        lines.append(
            f"replication: role {replication.get('role', '-')}   "
            f"epoch {replication.get('epoch', 0)}   "
            f"lag {replication.get('lag', 0)} rev   "
            f"followers {followers}   "
            f"streamed {replication.get('streamed_lines', 0)} lines"
        )

    phases = _histogram_rows(snapshot, "commit_phase_seconds")
    if phases:
        lines.append("")
        lines.append("commit phases            count      p50        p99")
        for labelstr, value in phases:
            phase = labelstr.split("=", 1)[-1] or "total"
            lines.append(
                f"  {phase:<20} {value['count']:>7}  "
                f"{_ms(value.get('p50', 0.0))}  {_ms(value.get('p99', 0.0))}"
            )

    commands = _histogram_rows(snapshot, "server_command_seconds")
    if commands:
        lines.append("")
        lines.append("wire commands            count      p50        p99")
        for labelstr, value in commands[:10]:
            cmd = labelstr.split("=", 1)[-1]
            lines.append(
                f"  {cmd:<20} {value['count']:>7}  "
                f"{_ms(value.get('p50', 0.0))}  {_ms(value.get('p99', 0.0))}"
            )

    fired = snapshot.get("engine_rule_fired")
    if fired:
        rows = sorted(
            fired["series"].items(), key=lambda kv: -kv[1]
        )[:10]
        lines.append("")
        lines.append("hot rules (fired)")
        for labelstr, value in rows:
            rule = labelstr.split("=", 1)[-1]
            lines.append(f"  {rule:<28} {int(value):>9}")

    outbox = _gauge_rows(snapshot, "server_outbox_depth")
    if outbox:
        depth = max(value for _, value in outbox)
        lines.append("")
        lines.append(
            f"outbox depth {int(depth)}   "
            f"shed {int(_series_total(snapshot, 'server_outbox_shed'))}   "
            f"lagged {int(_series_total(snapshot, 'server_lagged_resyncs'))}"
        )

    entries = slowlog.get("entries") or []
    if entries:
        lines.append("")
        lines.append("slowlog (newest last)")
        for entry in entries[-5:]:
            lines.append(
                f"  {entry['kind']:<8} {_ms(entry['seconds'])}  "
                f"{entry.get('detail', entry.get('tag', ''))}"
            )
    return lines
