"""Process-wide metrics registry: counters, gauges, histograms.

The registry is always importable and always writable — benchmarks record
headline numbers through it unconditionally — but the *instrumentation
call sites* spread through the engine, store, server and replication
layers all go through the guarded module-level helpers (:func:`inc`,
:func:`observe`, :func:`set_gauge`, :func:`span`), which are no-ops
unless observability is switched on.  That keeps the disabled path to a
single module-global read plus a falsy check per instrumentation point:
the acceptance bound is < 5 % overhead on the hot benchmarks with
``REPRO_OBS`` unset, enforced by ``benchmarks/check_regression.py``.

Switching on:

* environment — ``REPRO_OBS=1`` (anything but ``""``/``"0"``), read per
  call exactly like ``REPRO_NO_CODEGEN`` so tests can monkeypatch it;
* programmatic — :func:`enable_metrics` (``repro serve --metrics``),
  which overrides the environment until cleared with
  ``enable_metrics(None)``.

Histograms keep ``count``/``sum``/``min``/``max`` exactly and a bounded
reservoir (default 512 samples, oldest-out) from which snapshot-time
quantiles (p50/p95/p99) are computed — memory stays O(series), never
O(observations).

Tracing spans are deliberately lightweight: :func:`span` is a context
manager that times its block and feeds one histogram observation
(``<name>_seconds``), so a span costs nothing when metrics are off and
one ``perf_counter`` pair when on.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enable_metrics",
    "inc",
    "metrics_enabled",
    "observe",
    "registry",
    "render_prometheus",
    "set_gauge",
    "snapshot",
    "span",
]

#: Bounded reservoir size per histogram series (oldest-out).
RESERVOIR_SIZE = 512

#: Programmatic override: ``True``/``False`` force the state, ``None``
#: defers to the ``REPRO_OBS`` environment variable.
_FORCED: bool | None = None


def metrics_enabled() -> bool:
    """Is metric recording switched on for this process?

    Mirrors :func:`repro.core.codegen.codegen_enabled`: the environment
    is consulted per call (cheap — one dict lookup) so tests can flip
    ``REPRO_OBS`` without reimporting, and :func:`enable_metrics` wins
    over the environment when it has been called.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_OBS", "0") not in ("", "0")


def enable_metrics(on: bool | None = True) -> None:
    """Force metrics on (``True``), off (``False``), or back to the
    environment default (``None``).  Used by ``repro serve --metrics``
    and by tests."""
    global _FORCED
    _FORCED = on


class Counter:
    """A monotonically increasing float total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A point-in-time float value (set, not accumulated)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Exact count/sum/min/max plus a bounded quantile reservoir."""

    __slots__ = ("count", "total", "vmin", "vmax", "reservoir")
    kind = "histogram"

    def __init__(self, reservoir_size: int = RESERVOIR_SIZE) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.reservoir: deque[float] = deque(maxlen=reservoir_size)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.reservoir.append(value)

    def quantile(self, q: float) -> float:
        if not self.reservoir:
            return 0.0
        ordered = sorted(self.reservoir)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        ordered = sorted(self.reservoir)

        def at(q: float) -> float:
            return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]

        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.total / self.count,
            "p50": at(0.50),
            "p95": at(0.95),
            "p99": at(0.99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe name+labels → metric map with JSON and Prometheus
    exposition.  One process-wide instance lives behind :func:`registry`;
    tests may construct their own."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get(self, kind: str, name: str, labels: dict[str, str]):
        key = (name, _label_key(labels))
        metric = self._series.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind}"
                )
            return metric
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                known = self._kinds.setdefault(name, kind)
                if known != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {known}, "
                        f"not {kind}"
                    )
                metric = _KINDS[kind]()
                self._series[key] = metric
        return metric

    # -- recording -----------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self._get("counter", name, labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self._get("gauge", name, labels).set(value)

    def inc_gauge(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self._get("gauge", name, labels).inc(amount)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self._get("histogram", name, labels).observe(value)

    # -- exposition ----------------------------------------------------

    def snapshot(self, prefix: str = "") -> dict:
        """A JSON-ready snapshot: ``{name: {kind, series: {labelstr:
        value-or-histogram-dict}}}``, optionally filtered by name
        prefix.  Series maps are rebuilt fresh — the result shares no
        mutable state with the registry."""
        with self._lock:
            items = list(self._series.items())
            kinds = dict(self._kinds)
        out: dict[str, dict] = {}
        for (name, labelkey), metric in sorted(items, key=lambda kv: kv[0]):
            if prefix and not name.startswith(prefix):
                continue
            entry = out.setdefault(
                name, {"kind": kinds[name], "series": {}}
            )
            labelstr = ",".join(f"{k}={v}" for k, v in labelkey)
            entry["series"][labelstr] = metric.snapshot()
        return out

    def render_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition (HTTP-free — served over the JSON
        wire protocol and printed by ``repro client metrics``)."""
        lines: list[str] = []
        for name, entry in self.snapshot().items():
            kind = entry["kind"]
            metric_name = f"{namespace}_{name}"
            if kind == "counter":
                metric_name += "_total"
            lines.append(f"# TYPE {metric_name} {kind}")
            for labelstr, value in entry["series"].items():
                rendered = _render_labels(labelstr)
                if kind == "histogram":
                    lines.append(
                        f"{metric_name}_count{rendered} {value['count']}"
                    )
                    lines.append(
                        f"{metric_name}_sum{rendered} {_fmt(value['sum'])}"
                    )
                    for q in ("p50", "p95", "p99"):
                        if q in value:
                            quantile = _render_labels(
                                labelstr, extra=("quantile", f"0.{q[1:]}")
                            )
                            lines.append(
                                f"{metric_name}{quantile} {_fmt(value[q])}"
                            )
                else:
                    lines.append(f"{metric_name}{rendered} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self._kinds.clear()


def _fmt(value: float) -> str:
    return repr(round(float(value), 9))


def _render_labels(
    labelstr: str, extra: tuple[str, str] | None = None
) -> str:
    pairs = []
    if labelstr:
        for item in labelstr.split(","):
            k, _, v = item.partition("=")
            pairs.append((k, v))
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry.  Always writable — the enabled check
    lives in the guarded helpers below, not here."""
    return _REGISTRY


# ----------------------------------------------------------------------
# guarded instrumentation helpers — the only functions hot paths call
# ----------------------------------------------------------------------


def inc(name: str, amount: float = 1.0, **labels: str) -> None:
    if metrics_enabled():
        _REGISTRY.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    if metrics_enabled():
        _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    if metrics_enabled():
        _REGISTRY.observe(name, value, **labels)


class _Span:
    """Times its block and observes ``<name>_seconds`` on exit."""

    __slots__ = ("name", "labels", "start", "seconds")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self.start
        if metrics_enabled():
            _REGISTRY.observe(
                f"{self.name}_seconds", self.seconds, **self.labels
            )


class _NoopSpan:
    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def span(name: str, **labels: str):
    """A lightweight tracing span: ``with span("commit.append"): ...``
    observes one duration into the ``commit.append_seconds`` histogram.
    Returns a shared no-op object when metrics are off."""
    if not metrics_enabled():
        return _NOOP_SPAN
    return _Span(name, labels)


def snapshot() -> dict:
    """The stats-section shape shared by every backend: enabled flag
    plus the full registry snapshot (empty dict when nothing recorded)."""
    return {"enabled": metrics_enabled(), "registry": _REGISTRY.snapshot()}


def render_prometheus() -> str:
    return _REGISTRY.render_prometheus()
