"""Provenance: explain how a version's state came to be.

Deductive databases owe their users a *why*: given a fact
``ins(mod(phil)).isa -> hpe`` in ``result(P)``, which rule instance put it
there — and which facts were copied along by the frame rule rather than
derived?  This module reconstructs that story from an evaluation trace
(``collect_trace=True``):

* an **update event**: the fired rule instance whose ground head produced
  (inserted / deleted / modified-to) the application on this version;
* a **frame copy**: no event targets the application at this version — it
  was carried over from the predecessor ``v*``; the explanation recurses
  into the predecessor until it bottoms out at the initial base.

The result is an :class:`Explanation` tree, rendered as indented text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.consequence import FiredInstance
from repro.core.facts import EXISTS, Fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Term, UpdateKind, VersionId, subterms
from repro.core.trace import EvaluationTrace

__all__ = ["Explanation", "explain_fact", "explain_version"]


@dataclass(frozen=True)
class Explanation:
    """One step of a fact's history, possibly with a predecessor step."""

    fact: Fact
    kind: str  # "base" | "inserted" | "modified" | "copied"
    rule: str = ""
    stratum: int = -1
    iteration: int = -1
    binding: tuple[tuple[str, Oid], ...] = ()
    predecessor: "Explanation | None" = None

    def render(self, indent: str = "") -> str:
        if self.kind == "base":
            line = f"{indent}{self.fact}  — in the initial object base"
        elif self.kind == "copied":
            line = (
                f"{indent}{self.fact}  — copied by the frame rule from "
                f"{self.predecessor.fact.host if self.predecessor else '?'}"
            )
        else:
            bound = ", ".join(f"{n}={v}" for n, v in self.binding)
            line = (
                f"{indent}{self.fact}  — {self.kind} by {self.rule}[{bound}] "
                f"(stratum {self.stratum}, iteration {self.iteration})"
            )
        if self.predecessor is not None and self.kind == "copied":
            return line + "\n" + self.predecessor.render(indent + "  ")
        return line


def _events(trace: EvaluationTrace):
    """All fired instances with their stratum/iteration coordinates."""
    for stratum in trace.strata:
        for iteration in stratum.iterations:
            for fired in iteration.fired:
                yield stratum.index, iteration.index, fired


def _produces(fired: FiredInstance, fact: Fact) -> bool:
    """Did this ground head put ``fact`` into its new version's state?"""
    head = fired.head
    if head.new_version() != fact.host:
        return False
    if head.delete_all or head.method != fact.method:
        return False
    if tuple(head.args) != fact.args:
        return False
    if head.kind is UpdateKind.MODIFY:
        return head.result2 == fact.result
    if head.kind is UpdateKind.INSERT:
        return head.result == fact.result
    return False  # deletes remove; they never produce


def explain_fact(
    trace: EvaluationTrace,
    original_base: ObjectBase,
    fact: Fact,
) -> Explanation:
    """Explain one fact of ``result(P)``.

    Requires the trace of the evaluation (``collect_trace=True``) and the
    original (pre-update) base for the recursion's floor.  Raises
    ``LookupError`` if the fact cannot be accounted for (e.g. it is not a
    fact of this evaluation at all).
    """
    host = fact.host

    # directly produced by an update event?
    best: Explanation | None = None
    for stratum_index, iteration_index, fired in _events(trace):
        if _produces(fired, fact):
            kind = (
                "modified"
                if fired.head.kind is UpdateKind.MODIFY
                else "inserted"
            )
            best = Explanation(
                fact, kind, fired.rule_name, stratum_index, iteration_index,
                fired.binding,
            )
            break
    if best is not None:
        return best

    # in the original base?
    if fact in original_base:
        return Explanation(fact, "base")

    # otherwise: a frame copy from the predecessor version
    if isinstance(host, VersionId):
        for predecessor in list(subterms(host))[1:]:
            predecessor_fact = Fact(predecessor, fact.method, fact.args, fact.result)
            try:
                inner = explain_fact(trace, original_base, predecessor_fact)
            except LookupError:
                continue
            return Explanation(fact, "copied", predecessor=inner)
    raise LookupError(f"no provenance found for {fact}")


def explain_version(
    trace: EvaluationTrace,
    original_base: ObjectBase,
    result_base: ObjectBase,
    version: Term,
    *,
    include_exists: bool = False,
) -> list[Explanation]:
    """Explanations for every method-application of ``version``."""
    explanations = []
    for fact in sorted(result_base.state_of(version), key=str):
        if fact.method == EXISTS and not include_exists:
            continue
        explanations.append(explain_fact(trace, original_base, fact))
    return explanations
