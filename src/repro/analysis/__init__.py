"""Analysis tooling over the core: static lint and run-time provenance."""

from repro.analysis.lint import Finding, Severity, lint_program
from repro.analysis.provenance import Explanation, explain_fact, explain_version

__all__ = [
    "Finding",
    "Severity",
    "lint_program",
    "Explanation",
    "explain_fact",
    "explain_version",
]
