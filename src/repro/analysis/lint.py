"""Lint: static diagnostics for update-programs.

Checks (each with a stable code, used by tests and the CLI):

* ``L001 unsatisfiable-version-read`` — a positive body literal mentions a
  version shape (depth > 0) that no rule head can produce; unless the
  initial base already stores version-hosted facts (unusual), the literal
  can never hold and the rule never fires.
* ``L002 update-never-performed`` — a body update-term tests a transition
  (``del[mod(E)].m -> r``) that no rule head with a unifying target and the
  same kind ever performs; positively it never holds, negatively it always
  holds.
* ``L003 singleton-variable`` — a variable occurring exactly once (the
  classic typo catcher; bind it or name it ``_``-style deliberately).
* ``L004 noop-modify`` — a modify head with syntactically identical old and
  new result: the state never changes, though the ``mod(v)`` version is
  still created (the body-side ``(r, r)`` test is meaningful; the head-side
  one is usually a mistake).
* ``L005 linearity-risk`` — two rules perform updates of *different* kinds
  on unifiable targets: if both fire for the same object the Section 5
  run-time check will reject the result (the paper's own
  ``mod[o].m -> (a,b)`` / ``del[o].m -> a`` example).

Lint never changes semantics; it is advisory (severity WARNING) except for
L001/L002 which are strong hints (severity ERROR-adjacent ``SUSPICIOUS``).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.core.atoms import BuiltinAtom, UpdateAtom, VersionAtom
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import (
    Term,
    UpdateKind,
    Var,
    VersionVar,
    depth,
    subterms,
)
from repro.core.stratification import _rename_apart  # shared renaming helper
from repro.unify.unification import unifiable

__all__ = ["Severity", "Finding", "lint_program"]


class Severity(enum.Enum):
    WARNING = "warning"
    SUSPICIOUS = "suspicious"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic."""

    code: str
    rule: str
    severity: Severity
    message: str

    def __str__(self) -> str:
        return f"{self.code} [{self.severity.value}] {self.rule}: {self.message}"


def _unifies(left: Term, right: Term) -> bool:
    return unifiable(_rename_apart(left, "L"), _rename_apart(right, "R"))


def lint_program(program: UpdateProgram) -> list[Finding]:
    """Run all checks; findings in rule order, stable within a rule."""
    findings: list[Finding] = []
    head_versions = [(rule, rule.head_version_id_term()) for rule in program]

    for rule in program:
        findings.extend(_check_version_reads(rule, head_versions))
        findings.extend(_check_update_terms(rule, program))
        findings.extend(_check_singleton_variables(rule))
        findings.extend(_check_noop_modify(rule))
    findings.extend(_check_linearity_risk(program))
    return findings


def _producible(body_term: Term, head_versions) -> bool:
    """Can any rule head create a version unifying with ``body_term``?"""
    return any(_unifies(head, body_term) for _rule, head in head_versions)


def _check_version_reads(rule: UpdateRule, head_versions) -> list[Finding]:
    findings = []
    for literal in rule.body:
        atom = literal.atom
        if not isinstance(atom, VersionAtom) or not literal.positive:
            continue
        host = atom.host
        if depth(host) == 0:
            continue  # reads the initial object: always satisfiable
        if any(isinstance(s, VersionVar) for s in subterms(host)):
            continue  # version variables read whatever exists
        if not _producible(host, head_versions):
            findings.append(
                Finding(
                    "L001",
                    rule.name,
                    Severity.SUSPICIOUS,
                    f"body reads version {host} but no rule head can create "
                    f"a unifying version; the literal can only match "
                    f"pre-existing version facts",
                )
            )
    return findings


def _check_update_terms(rule: UpdateRule, program: UpdateProgram) -> list[Finding]:
    findings = []
    for literal in rule.body:
        atom = literal.atom
        if not isinstance(atom, UpdateAtom):
            continue
        performed = any(
            other.head.kind is atom.kind
            and _unifies(other.head.target, atom.target)
            for other in program
        )
        if not performed:
            polarity = "can never hold" if literal.positive else "always holds"
            findings.append(
                Finding(
                    "L002",
                    rule.name,
                    Severity.SUSPICIOUS,
                    f"body tests {atom.kind.value}[{atom.target}] but no rule "
                    f"performs a {atom.kind.value}-update on a unifying "
                    f"target; the literal {polarity}",
                )
            )
    return findings


def _check_singleton_variables(rule: UpdateRule) -> list[Finding]:
    counts: Counter[Var] = Counter()

    def walk_term(term: Term) -> None:
        for sub in subterms(term):
            if isinstance(sub, Var):
                counts[sub] += 1

    def walk_expr(expr) -> None:
        from repro.core.exprs import BinOp, Neg

        if isinstance(expr, Var):
            counts[expr] += 1
        elif isinstance(expr, BinOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, Neg):
            walk_expr(expr.operand)

    atoms = [rule.head] + [lit.atom for lit in rule.body]
    for atom in atoms:
        if isinstance(atom, VersionAtom):
            walk_term(atom.host)
            for arg in atom.args:
                walk_term(arg)
            walk_term(atom.result)
        elif isinstance(atom, UpdateAtom):
            walk_term(atom.target)
            for arg in atom.args:
                walk_term(arg)
            if atom.result is not None:
                walk_term(atom.result)
            if atom.result2 is not None:
                walk_term(atom.result2)
        elif isinstance(atom, BuiltinAtom):
            walk_expr(atom.left)
            walk_expr(atom.right)

    return [
        Finding(
            "L003",
            rule.name,
            Severity.WARNING,
            f"variable {var} occurs only once (typo?)",
        )
        for var, count in sorted(counts.items(), key=lambda kv: kv[0].name)
        if count == 1 and not var.name.startswith("_")
    ]


def _check_noop_modify(rule: UpdateRule) -> list[Finding]:
    head = rule.head
    if head.kind is UpdateKind.MODIFY and head.result == head.result2:
        return [
            Finding(
                "L004",
                rule.name,
                Severity.WARNING,
                f"modify head {head} keeps the value unchanged; the mod(v) "
                f"version is still created but its state equals the copy",
            )
        ]
    return []


def _check_linearity_risk(program: UpdateProgram) -> list[Finding]:
    findings = []
    rules = list(program)
    for i, first in enumerate(rules):
        for second in rules[i + 1 :]:
            if first.head.kind is second.head.kind:
                continue
            if not _unifies(first.head.target, second.head.target):
                continue
            if _guarded_against(first, second) or _guarded_against(second, first):
                # the paper's own idiom: rule 4 inserts on mod(E) only
                # under "not del[mod(E)].isa -> empl" — the guard makes the
                # two updates mutually exclusive per object
                continue
            findings.append(
                Finding(
                    "L005",
                    first.name,
                    Severity.WARNING,
                    f"performs a {first.head.kind.value}-update while "
                    f"{second.name} performs a "
                    f"{second.head.kind.value}-update on a unifiable "
                    f"target {second.head.target}; if both fire for one "
                    f"object the Section 5 linearity check will reject "
                    f"the result",
                )
            )
    return findings


def _guarded_against(guarded: UpdateRule, other: UpdateRule) -> bool:
    """True when ``guarded``'s body negates an update-term of ``other``'s
    kind on a target unifying ``other``'s — the mutual-exclusion guard."""
    for literal in guarded.body:
        atom = literal.atom
        if (
            not literal.positive
            and isinstance(atom, UpdateAtom)
            and atom.kind is other.head.kind
            and _unifies(atom.target, other.head.target)
        ):
            return True
    return False
