"""An in-process N-shard cluster for tests, examples and benchmarks.

:class:`LocalCluster` partitions a seed base with
:func:`~repro.cluster.partition.split_base`, stands up one
:class:`~repro.api.hosting.BackgroundServer` per shard (real servers,
real sockets — the exact transport the router speaks in production) and
exposes the composed ``cluster:`` target:

>>> import repro                                        # doctest: +SKIP
>>> from repro.cluster import LocalCluster              # doctest: +SKIP
>>> with LocalCluster(BASE, shards=3) as cluster:       # doctest: +SKIP
...     conn = repro.connect(cluster.target)            # doctest: +SKIP
...     conn.query("E.sal -> S")                        # doctest: +SKIP

Production deployments run one ``repro serve`` process per shard instead
(``repro cluster init`` / ``repro cluster launch``).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.api.hosting import BackgroundServer
from repro.cluster.partition import split_base
from repro.core.errors import ReproError
from repro.server.service import StoreService
from repro.storage.history import StoreOptions, VersionedStore

__all__ = ["LocalCluster"]


class LocalCluster:
    """``shards`` background servers over a hash-partitioned ``base``.

    ``base`` is an :class:`~repro.core.objectbase.ObjectBase` or
    concrete-syntax text; each shard serves its partition over a unix
    socket in a private scratch directory (removed on :meth:`close`).
    When ``directory`` is given, each shard journals durably under
    ``<directory>/shard-<i>`` instead of running in memory.
    """

    def __init__(
        self,
        base,
        *,
        shards: int,
        tag: str = "initial",
        options: StoreOptions | None = None,
        directory: str | Path | None = None,
    ) -> None:
        if shards < 1:
            raise ReproError("a cluster needs at least one shard")
        if isinstance(base, str):
            from repro.lang.parser import parse_object_base

            base = parse_object_base(base)
        self.count = shards
        self._scratch = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
        self.servers: list[BackgroundServer] = []
        self.services: list[StoreService] = []
        try:
            for shard, piece in enumerate(split_base(base, shards)):
                if directory is None:
                    store = VersionedStore(
                        piece.copy(), tag=tag, options=options
                    )
                    service = StoreService(
                        store, shard_id=shard, shard_count=shards
                    )
                else:
                    service = StoreService.create(
                        piece.copy(), Path(directory) / f"shard-{shard}",
                        tag=tag, options=options,
                        shard_id=shard, shard_count=shards,
                    )
                self.services.append(service)
                self.servers.append(BackgroundServer(
                    service, path=str(self._scratch / f"shard-{shard}.sock")
                ))
        except Exception:
            self.close()
            raise
        self._closed = False

    @property
    def members(self) -> list[str]:
        """Per-shard connect targets, in shard order."""
        return [server.address for server in self.servers]

    @property
    def target(self) -> str:
        """The ``cluster:`` target for :func:`repro.connect`."""
        return "cluster:" + ",".join(self.members)

    def close(self) -> None:
        """Stop every shard server and remove the socket scratch dir."""
        self._closed = True
        for server in self.servers:
            try:
                server.close()
            except Exception:
                pass
        shutil.rmtree(self._scratch, ignore_errors=True)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
