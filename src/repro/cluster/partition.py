"""The partitioning rule and the routing analysis built on it.

Every fact of the paper's object model is anchored to a *host* — a
version-id-term whose innermost object identity names the object the fact
belongs to.  The cluster partitions the fact space by that innermost OID:

    ``shard_for(object_of(fact.host), n)``

All facts (and all versions) of one object therefore live on one shard,
which is what keeps the common case local:

* a program whose rule hosts are all ground and hash to one shard commits
  on that shard alone, through the existing single-server fast path;
* a query whose literals share one host variable (``E.isa -> empl,
  E.sal -> S``) evaluates shard-locally and the router merely merges the
  per-shard answers — each binding of the host variable draws only on
  facts of that one host, which are colocated by construction;
* only queries that *join across hosts* (two distinct host roots) need
  the gather fallback, where the router unions per-shard snapshots and
  evaluates centrally.

The hash is CRC-32 over a type-tagged rendering of the OID payload —
stable across processes and Python versions, unlike the builtin ``hash``
which is salted per process.
"""

from __future__ import annotations

import zlib

from repro.core.atoms import BuiltinAtom, Literal, VersionAtom
from repro.core.errors import TermError
from repro.core.facts import Fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Term, VersionId

__all__ = [
    "shard_for",
    "shard_of_fact",
    "split_base",
    "program_hosts",
    "program_shards",
    "query_scope",
]


def shard_for(oid: Oid, count: int) -> int:
    """The shard (``0 <= shard < count``) object ``oid`` lives on.

    Deterministic across processes: every router and every ``repro
    cluster init`` must agree on placement forever, so the builtin
    (per-process salted) ``hash`` is out.  The payload is type-tagged
    because ``Oid(1)`` and ``Oid("1")`` are distinct objects.
    """
    key = f"{type(oid.value).__name__}:{oid.value!r}".encode()
    return zlib.crc32(key) % count


def _host_root(term: Term) -> Term:
    """The innermost term of a host (an :class:`Oid` or a variable)."""
    while isinstance(term, VersionId):
        term = term.base
    return term


def shard_of_fact(fact: Fact, count: int) -> int:
    """The shard ``fact`` lives on — its host's innermost object's shard."""
    root = _host_root(fact.host)
    if not isinstance(root, Oid):
        raise TermError(f"fact host {fact.host} has no ground object identity")
    return shard_for(root, count)


def split_base(base: ObjectBase, count: int) -> list[ObjectBase]:
    """Partition ``base`` into ``count`` per-shard object bases.

    Facts (existence facts included — they carry the same host) are
    bucketed by :func:`shard_of_fact`; the union of the pieces is exactly
    ``base`` and the pieces are pairwise host-disjoint.
    """
    buckets: list[set[Fact]] = [set() for _ in range(count)]
    for fact in base:
        buckets[shard_of_fact(fact, count)].add(fact)
    return [ObjectBase.from_fact_set(bucket).freeze() for bucket in buckets]


def program_hosts(program) -> frozenset[Oid] | None:
    """The ground host objects a program touches, or ``None`` when any
    host (head target or body version-atom host) has a variable innermost
    — such a program cannot be routed to one shard."""
    hosts: set[Oid] = set()
    for rule in program:
        terms = [rule.head.target]
        for literal in rule.body:
            atom = literal.atom
            if isinstance(atom, BuiltinAtom):
                continue
            terms.append(atom.host)
        for term in terms:
            root = _host_root(term)
            if not isinstance(root, Oid):
                return None
            hosts.add(root)
    return frozenset(hosts)


def program_shards(program, count: int) -> frozenset[int] | None:
    """The shards a program's hosts hash to (``None`` for variable hosts)."""
    hosts = program_hosts(program)
    if hosts is None:
        return None
    return frozenset(shard_for(host, count) for host in hosts)


def query_scope(
    literals: tuple[Literal, ...], count: int
) -> tuple[str, int | None]:
    """Classify a query body for routing.

    Returns one of

    * ``("single", shard)`` — every host is ground and hashes to one
      shard (or the body has no version literal at all): answer from that
      shard alone;
    * ``("scatter", None)`` — the version literals share exactly one host
      variable and name no ground host: per-shard evaluation is complete
      (each binding's facts are colocated), so evaluate everywhere and
      merge;
    * ``("gather", None)`` — the body joins across distinct host roots:
      union per-shard snapshots and evaluate centrally.
    """
    ground: set[Oid] = set()
    variables: set[Term] = set()
    saw_version_literal = False
    for literal in literals:
        atom = literal.atom
        if not isinstance(atom, VersionAtom):
            continue
        saw_version_literal = True
        root = _host_root(atom.host)
        if isinstance(root, Oid):
            ground.add(root)
        else:
            variables.add(root)
    if not saw_version_literal:
        return ("single", 0)
    if not variables:
        shards = {shard_for(oid, count) for oid in ground}
        if len(shards) == 1:
            return ("single", next(iter(shards)))
        return ("gather", None)
    if len(variables) == 1 and not ground:
        return ("scatter", None)
    return ("gather", None)
