"""``repro.connect("cluster:a,b,...")`` — the shard-routing client.

A :class:`ClusterConnection` holds one connection per shard — a
:class:`~repro.api.wire.WireConnection` for a single-member spec, a
:class:`~repro.replication.replset.ReplicaSetConnection` for a
``|``-separated member group (so each shard inherits the full failover
behaviour of PR 8) — and routes by the partitioning rule of
:mod:`repro.cluster.partition`:

* **commits** (apply/transactions) whose hosts are ground and hash to one
  shard go to that shard alone, through the existing single-server fast
  path, untouched;
* **reads** with a single host variable *scatter*: every shard answers
  over its own facts and the router merges the per-shard rows under the
  one canonical answer order (:func:`~repro.core.query.answer_sort_key`),
  which reproduces the single-store ordering exactly;
* **cross-host joins** fall back to *gather*: the router unions
  consistent per-shard snapshots and evaluates the join centrally.

Consistency is carried by a **revision vector** — one revision index per
shard.  The router exposes the *sum* of the vector as the cluster's
revision index (every commit advances exactly one component by at least
one, so the sum is a strictly monotonic commit counter, and a
single-router cluster numbers its revisions 1, 2, 3, … exactly like a
single store).  Each cluster index maps back to the full vector in the
router's history, so ``as_of``/``diff``/``min_revision`` tokens compose
per-shard history exactly; reads additionally ride a per-shard
*watermark* (the highest component this router has observed), giving
monotonic reads across failovers — a lagging replica sheds a read below
the watermark rather than answer from the past.

Limitations, by design: a program whose rule hosts contain variables
cannot be routed (it could touch any shard) and is rejected with a typed
error — rewrite it as per-host programs.  A transaction stages programs
on one shard per transaction, and conflict validation covers the staged
shard's footprint (cross-shard read footprints are not validated).
Cross-host *join* subscriptions are not supported.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.api.connection import Connection, SubscriptionStream, Transaction
from repro.api.model import CommitResult, Diff, RetryPolicy, Revision
from repro.api.wire import WireConnection, _body_text
from repro.cluster.partition import program_shards, query_scope
from repro.core.errors import ReproError
from repro.core.objectbase import ObjectBase
from repro.core.query import (
    Answer,
    answer_sort_key,
    decode_answers,
    prepare_query,
)
from repro.replication.replset import ReplicaSetConnection, _member_endpoint
from repro.server.errors import ServerBusyError
from repro.server.service import StoreService
from repro.storage.history import resolve_revision_ref

__all__ = ["ClusterConnection", "RevisionVector"]

#: How long a read carrying an unknown (another router's) consistency
#: token waits for the aggregate head to catch up before shedding.
_TOKEN_WAIT = 10.0


@dataclasses.dataclass(frozen=True)
class RevisionVector:
    """One consistent cross-shard cut: a revision index per shard.

    The cluster-wide revision *index* is :attr:`total` — the sum of the
    components.  ``str()`` gives the portable token form ``rv:3,0,5``;
    :meth:`parse` reads it back.
    """

    components: tuple[int, ...]

    @classmethod
    def zero(cls, count: int) -> "RevisionVector":
        return cls((0,) * count)

    @classmethod
    def parse(cls, text: str) -> "RevisionVector":
        if not isinstance(text, str) or not text.startswith("rv:"):
            raise ReproError(f"not a revision-vector token: {text!r}")
        try:
            parts = tuple(int(part) for part in text[3:].split(","))
        except ValueError:
            raise ReproError(f"not a revision-vector token: {text!r}") from None
        return cls(parts)

    @property
    def total(self) -> int:
        return sum(self.components)

    def merge(self, other: "RevisionVector") -> "RevisionVector":
        """Componentwise max — the smallest cut at least as new as both."""
        return RevisionVector(tuple(
            max(a, b) for a, b in zip(self.components, other.components)
        ))

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, index: int) -> int:
        return self.components[index]

    def __str__(self) -> str:
        return "rv:" + ",".join(str(part) for part in self.components)


class ClusterConnection(Connection):
    """One connection over N hash-partitioned shards (see module doc)."""

    def __init__(
        self,
        shards: Sequence,
        *,
        call_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__()
        groups: list[tuple[str, ...]] = []
        for spec in shards:
            if isinstance(spec, str):
                groups.append((spec,))
            else:
                groups.append(tuple(str(member) for member in spec))
        if not groups:
            raise ReproError(
                "cluster: target needs at least one shard endpoint after "
                "the colon"
            )
        self.shards = tuple(groups)
        self.count = len(self.shards)
        self.target = "cluster:" + ",".join(
            "|".join(group) for group in self.shards
        )
        self.call_timeout = call_timeout
        self.retry = retry or RetryPolicy()
        self._conns: dict[int, Connection] = {}
        self._lock = threading.RLock()
        self._executor: ThreadPoolExecutor | None = None
        self._ready = False
        #: Highest revision index observed per shard (monotonic reads).
        self._watermark: list[int] = [0] * self.count
        #: cluster index -> revision vector, for every addressable cut.
        self._history: dict[int, tuple[int, ...]] = {0: (0,) * self.count}
        #: commit tag -> cluster index (tags minted through this router).
        self._tags: dict[str, int] = {}
        #: Re-indexed commit records, oldest first (the cluster log tail).
        self._records: list[Revision] = []
        self._initial: Revision | None = None
        self.single_reads = 0
        self.scatter_reads = 0
        self.gather_reads = 0
        self.commits = 0

    # -- shard plumbing ----------------------------------------------------
    def _conn(self, shard: int) -> Connection:
        with self._lock:
            conn = self._conns.get(shard)
            if conn is not None and not conn.closed:
                return conn
            group = self.shards[shard]
            if len(group) == 1:
                conn = WireConnection(
                    call_timeout=self.call_timeout,
                    retry=self.retry,
                    **_member_endpoint(group[0]),
                )
            else:
                conn = ReplicaSetConnection(
                    list(group),
                    call_timeout=self.call_timeout,
                    retry=self.retry,
                )
            self._conns[shard] = conn
            return conn

    def _scatter(self, op: Callable[[int, Connection], object]) -> list:
        """Run ``op(shard, conn)`` against every shard; results in shard
        order.  One shard's failure fails the whole operation (per-member
        failover already happened below, inside the shard's connection)."""
        conns = [self._conn(shard) for shard in range(self.count)]
        if self.count == 1:
            return [op(0, conns[0])]
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.count,
                    thread_name_prefix="repro-cluster",
                )
            executor = self._executor
        futures = [
            executor.submit(op, shard, conns[shard])
            for shard in range(self.count)
        ]
        return [future.result() for future in futures]

    @staticmethod
    def _shard_head(conn: Connection) -> int:
        """The shard's current head index, cheaply where possible."""
        call = getattr(conn, "call", None)
        if call is not None:
            return call("ping").get("revision", 0)
        return conn.head.index

    def _bootstrap(self) -> None:
        """First contact: learn each shard's head (the watermark floor)
        and verify declared shard identity where the servers report one."""
        if self._ready:
            return
        def probe(shard: int, conn: Connection) -> int:
            call = getattr(conn, "call", None)
            if call is None:
                return conn.head.index
            pong = call("ping")
            identity = pong.get("shard") or {}
            declared_id = identity.get("id")
            declared_count = identity.get("count")
            if declared_count is not None and declared_count != self.count:
                raise ReproError(
                    f"shard {shard} ({self.shards[shard][0]}) was "
                    f"initialized for a {declared_count}-shard cluster, "
                    f"but this target names {self.count} shards — "
                    f"repartitioning requires repro cluster init"
                )
            if declared_id is not None and declared_id != shard:
                raise ReproError(
                    f"shard {shard} ({self.shards[shard][0]}) declares "
                    f"shard id {declared_id} — the cluster: member order "
                    f"must match the ids assigned at init"
                )
            return pong.get("revision", 0)
        heads = self._scatter(probe)
        with self._lock:
            if self._ready:
                return
            for shard, head in enumerate(heads):
                self._watermark[shard] = max(self._watermark[shard], head)
            self._history.setdefault(
                sum(self._watermark), tuple(self._watermark)
            )
            self._ready = True

    def _observe(self, shard: int, revision: int) -> None:
        with self._lock:
            if revision > self._watermark[shard]:
                self._watermark[shard] = revision

    def _record_commit(self, shard: int, revisions) -> list[Revision]:
        """Re-index shard-local commit records onto the cluster counter."""
        reindexed: list[Revision] = []
        with self._lock:
            for revision in revisions:
                if revision.index > self._watermark[shard]:
                    self._watermark[shard] = revision.index
                vector = tuple(self._watermark)
                index = sum(vector)
                self._history[index] = vector
                if revision.tag:
                    self._tags[revision.tag] = index
                record = dataclasses.replace(revision, index=index)
                self._records.append(record)
                reindexed.append(record)
            self.commits += len(reindexed)
        return reindexed

    # -- consistency tokens ------------------------------------------------
    def _components(self, min_revision) -> list[int | None]:
        """Resolve a read-your-writes token into per-shard floors."""
        if min_revision is None:
            return [None] * self.count
        if isinstance(min_revision, RevisionVector):
            return list(min_revision.components)
        if isinstance(min_revision, str):
            return list(RevisionVector.parse(min_revision).components)
        with self._lock:
            vector = self._history.get(min_revision)
        if vector is not None:
            return list(vector)
        # A token minted elsewhere (another router) addresses a cut this
        # router never recorded; wait for the aggregate head to reach it,
        # after which any shard's current head satisfies its share.
        self._await_total(min_revision)
        return [None] * self.count

    def _await_total(self, token: int) -> None:
        deadline = time.monotonic() + _TOKEN_WAIT
        delay = 0.02
        while True:
            heads = self._scatter(
                lambda shard, conn: self._shard_head(conn)
            )
            for shard, head in enumerate(heads):
                self._observe(shard, head)
            total = sum(heads)
            if total >= token:
                return
            if time.monotonic() >= deadline:
                raise ServerBusyError(
                    f"read-your-writes token not satisfied: the cluster is "
                    f"at revision {total}, the read demands {token} — "
                    f"retry shortly"
                )
            time.sleep(delay)
            delay = min(0.25, delay * 2)

    def _floor(self, shard: int, component: int | None) -> int | None:
        """The min_revision to send shard ``shard``: the caller's token
        component joined with the router's monotonic-read watermark."""
        with self._lock:
            watermark = self._watermark[shard]
        floor = max(watermark, component or 0)
        return floor or None

    def _resolve_vector(self, ref) -> tuple[int, ...]:
        """A revision reference (cluster index, digit string, tag, or
        revision-vector token) as a full per-shard vector."""
        self._bootstrap()
        if isinstance(ref, RevisionVector):
            return ref.components
        if isinstance(ref, str) and ref.startswith("rv:"):
            return RevisionVector.parse(ref).components
        resolved = resolve_revision_ref(ref)
        if isinstance(resolved, int):
            with self._lock:
                vector = self._history.get(resolved)
            if vector is None:
                raise ReproError(f"no revision {resolved}")
            return vector
        with self._lock:
            index = self._tags.get(resolved)
            vector = None if index is None else self._history.get(index)
        if vector is not None:
            return vector
        if resolved == self._initial_record().tag:
            return (0,) * self.count
        raise ReproError(f"no revision tagged {resolved!r}")

    # -- liveness ----------------------------------------------------------
    def ping(self) -> dict:
        self._check_open()
        results = self._scatter(lambda shard, conn: conn.ping())
        return {
            "pong": all(result.get("pong") for result in results),
            "protocol": results[0].get("protocol"),
            "shards": [
                dict(result, shard=shard)
                for shard, result in enumerate(results)
            ],
        }

    # -- reading -----------------------------------------------------------
    def query(self, body, *, min_revision=None) -> list[Answer]:
        self._check_open()
        self._bootstrap()
        prepared = prepare_query(body)
        scope, shard = query_scope(prepared.body, self.count)
        components = self._components(min_revision)
        if scope == "single":
            with self._lock:
                self.single_reads += 1
            answers, revision = self._conn(shard).query_with_revision(
                body, min_revision=self._floor(shard, components[shard])
            )
            self._observe(shard, revision)
            return answers
        if scope == "scatter":
            with self._lock:
                self.scatter_reads += 1
            def read(shard: int, conn: Connection):
                return conn.query_with_revision(
                    body, min_revision=self._floor(shard, components[shard])
                )
            results = self._scatter(read)
            merged: list[Answer] = []
            for shard, (answers, revision) in enumerate(results):
                self._observe(shard, revision)
                merged.extend(answers)
            merged.sort(key=answer_sort_key)
            return merged
        with self._lock:
            self.gather_reads += 1
        return decode_answers(prepared.run(self._gather(components)))

    def _gather(self, components: list[int | None]) -> ObjectBase:
        """A consistent cross-shard snapshot for centrally evaluated
        joins: each shard contributes its base as of a cut no older than
        the watermark (and the caller's token)."""
        def snapshot(shard: int, conn: Connection) -> ObjectBase:
            head = self._shard_head(conn)
            cut = max(head, self._floor(shard, components[shard]) or 0)
            self._observe(shard, cut)
            return conn.as_of(cut)
        facts: set = set()
        for base in self._scatter(snapshot):
            facts.update(base)
        return ObjectBase.from_fact_set(facts).freeze()

    def log(self) -> tuple[Revision, ...]:
        self._check_open()
        self._bootstrap()
        with self._lock:
            tail = tuple(self._records)
        return (self._initial_record(),) + tail

    def _initial_record(self) -> Revision:
        if self._initial is None:
            records = self._scatter(lambda shard, conn: conn.log()[0])
            self._initial = Revision(
                index=0,
                tag=records[0].tag,
                program=records[0].program,
                added=sum(record.added for record in records),
                removed=sum(record.removed for record in records),
                snapshot=all(record.snapshot for record in records),
            )
        return self._initial

    def as_of(self, revision) -> ObjectBase:
        self._check_open()
        vector = self._resolve_vector(revision)
        bases = self._scatter(
            lambda shard, conn: conn.as_of(vector[shard])
        )
        facts: set = set()
        for base in bases:
            facts.update(base)
        return ObjectBase.from_fact_set(facts).freeze()

    def diff(self, older, newer, *, include_exists: bool = False) -> Diff:
        self._check_open()
        older_vector = self._resolve_vector(older)
        newer_vector = self._resolve_vector(newer)
        pieces = self._scatter(
            lambda shard, conn: conn.diff(
                older_vector[shard], newer_vector[shard],
                include_exists=include_exists,
            )
        )
        added: list[str] = []
        removed: list[str] = []
        for piece in pieces:
            added.extend(piece.added)
            removed.extend(piece.removed)
        return Diff(tuple(sorted(added)), tuple(sorted(removed)))

    # -- writing -----------------------------------------------------------
    def _route_program(self, program) -> tuple[object, int]:
        """Coerce and place a program; typed errors for unroutable ones."""
        coerced = StoreService.coerce_program(program)
        shards = program_shards(coerced, self.count)
        if shards is None:
            raise ReproError(
                "a cluster commit needs ground rule hosts: a variable host "
                "could touch any shard — split the program into per-host "
                "programs and commit each to its shard"
            )
        if len(shards) > 1:
            raise ReproError(
                f"program touches hosts on {len(shards)} different shards "
                f"({', '.join(str(s) for s in sorted(shards))}); a cluster "
                f"commit must stay on one shard — split it by host"
            )
        shard = next(iter(shards)) if shards else 0
        return coerced, shard

    def apply(self, program, *, tag: str = "") -> Revision:
        self._check_open()
        self._bootstrap()
        coerced, shard = self._route_program(program)
        revision = self._conn(shard).apply(coerced, tag=tag)
        return self._record_commit(shard, [revision])[-1]

    def transaction(self, *, tag: str = "", attempts: int = 1) -> "Transaction":
        self._check_open()
        self._bootstrap()
        return _ClusterTransaction(self, tag=tag, attempts=attempts)

    # -- live queries ------------------------------------------------------
    def subscribe(
        self, body, *, name: str | None = None,
        min_revision=None,
    ) -> SubscriptionStream:
        self._check_open()
        self._bootstrap()
        body_text = _body_text(body)
        scope, shard = query_scope(prepare_query(body).body, self.count)
        if scope == "gather":
            raise ReproError(
                "cluster: subscriptions need a single host root (one host "
                "variable or hosts on one shard); a cross-host join cannot "
                "be streamed shard-locally"
            )
        components = self._components(min_revision)
        targets = [shard] if scope == "single" else list(range(self.count))
        inners: dict[int, SubscriptionStream] = {}
        try:
            for target in targets:
                inners[target] = self._conn(target).subscribe(
                    body_text, name=name,
                    min_revision=self._floor(target, components[target]),
                )
        except Exception:
            for inner in inners.values():
                inner.close()
            raise
        with self._lock:
            vector = list(self._watermark)
        answers: list[Answer] = []
        for target, inner in inners.items():
            vector[target] = max(vector[target], inner.revision)
            self._observe(target, inner.revision)
            answers.extend(inner.answers)
        answers.sort(key=answer_sort_key)
        pushes: "queue.Queue[dict]" = queue.Queue()
        stream = SubscriptionStream(
            sid="+".join(inners[target].sid for target in sorted(inners)),
            query=body_text,
            revision=sum(vector),
            answers=answers,
            pushes=pushes,
            closer=lambda: _close_inners(inners),
        )
        pump = threading.Thread(
            target=self._pump,
            args=(stream, inners, vector, pushes),
            daemon=True,
        )
        pump.start()
        return self._track(stream)

    def _pump(self, stream, inners, vector, pushes) -> None:
        """Merge per-shard streams into the consumer's: forward each shard
        delta re-stamped with the composed cluster revision; coalesce an
        inner resync into one lagged push carrying the merged answer set
        (the outer stream diffs it against its own folded state)."""
        while not stream.closed and not self._closed:
            for shard, inner in inners.items():
                if stream.closed or self._closed:
                    return
                if inner.closed:
                    # The shard connection gave up for good (retry
                    # exhausted); the merged stream cannot stay exact.
                    stream._mark_dead()
                    return
                delta = inner.next(timeout=0.05)
                if delta is None:
                    continue
                vector[shard] = max(vector[shard], delta.revision)
                self._observe(shard, delta.revision)
                revision = sum(vector)
                if delta.lagged:
                    merged: list[Answer] = []
                    for member in inners.values():
                        merged.extend(member.answers)
                    merged.sort(key=answer_sort_key)
                    pushes.put({
                        "push": "lagged",
                        "sid": stream.sid,
                        "query": stream.query,
                        "from_revision": stream.revision,
                        "to_revision": revision,
                        "revision": revision,
                        "tag": delta.tag,
                        "answers": [dict(row) for row in merged],
                    })
                else:
                    push = delta.as_push()
                    push["sid"] = stream.sid
                    push["revision"] = revision
                    pushes.put(push)

    # -- accounting --------------------------------------------------------
    def stats(self) -> dict:
        self._check_open()
        self._bootstrap()
        docs = self._scatter(lambda shard, conn: conn.stats())
        shards = []
        for shard, doc in enumerate(docs):
            replication = doc.get("replication") or {}
            shards.append({
                "shard": shard,
                "target": "|".join(self.shards[shard]),
                "revisions": doc.get("revisions", 0),
                "head_tag": doc.get("head_tag"),
                "commits": doc.get("commits", 0),
                "conflicts": doc.get("conflicts", 0),
                "sessions_begun": doc.get("sessions_begun", 0),
                "role": replication.get("role"),
                "epoch": replication.get("epoch", 0),
                "lag": replication.get("lag", 0),
                "subscriptions": (doc.get("subscriptions") or {}).get(
                    "active", 0
                ),
                "failovers": getattr(
                    self._conns.get(shard), "failovers", 0
                ),
            })
        with self._lock:
            watermark = list(self._watermark)
            router = {
                "shards": self.count,
                "watermark": watermark,
                "revision": sum(watermark),
                "vector": str(RevisionVector(tuple(watermark))),
                "single_reads": self.single_reads,
                "scatter_reads": self.scatter_reads,
                "gather_reads": self.gather_reads,
                "commits": self.commits,
                "failovers": sum(entry["failovers"] for entry in shards),
            }
            head_tag = (
                self._records[-1].tag if self._records
                else self._initial_record().tag
            )
        return {
            "revisions": sum(watermark) + 1,
            "head_tag": head_tag,
            "commits": sum(doc.get("commits", 0) for doc in docs),
            "conflicts": sum(doc.get("conflicts", 0) for doc in docs),
            "sessions_begun": sum(
                doc.get("sessions_begun", 0) for doc in docs
            ),
            "journal": {"shards": [doc.get("journal") for doc in docs]},
            "durability": docs[0].get("durability"),
            "write_timeout": docs[0].get("write_timeout"),
            "subscriptions": {"active": len(self._streams)},
            "prepared": {"shards": [doc.get("prepared") for doc in docs]},
            "caches": {"shards": [doc.get("caches") for doc in docs]},
            "replication": _aggregate_replication(docs),
            "metrics": {
                "enabled": any(
                    (doc.get("metrics") or {}).get("enabled") for doc in docs
                ),
                "registry": _merge_registries([
                    (doc.get("metrics") or {}).get("registry") or {}
                    for doc in docs
                ]),
            },
            "slowlog": _merge_slowlogs([
                doc.get("slowlog") or {} for doc in docs
            ]),
            "shard": {"id": None, "count": self.count},
            "cluster": {"shards": shards, "router": router},
        }

    # -- lifecycle ---------------------------------------------------------
    def _teardown(self) -> None:
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
            executor = self._executor
            self._executor = None
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        if executor is not None:
            executor.shutdown(wait=False)


class _ClusterTransaction(Transaction):
    """One optimistic transaction spanning the cluster: reads pin every
    shard, stages route to (at most) one shard, the commit validates and
    lands there.  Conflict replay re-pins every shard and re-executes the
    recorded operations (driven by the base class)."""

    def __init__(self, router: ClusterConnection, *, tag: str, attempts: int):
        super().__init__(tag=tag, attempts=attempts)
        self._router = router
        self._inners: dict[int, Transaction] = {}
        self._staged_shard: int | None = None
        self._begin()

    @property
    def pinned(self) -> int:
        return sum(inner.pinned for inner in self._inners.values())

    def _begin(self) -> None:
        for inner in self._inners.values():
            inner.abort()
        self._inners = {
            shard: self._router._conn(shard).transaction(
                tag=self._tag, attempts=1
            )
            for shard in range(self._router.count)
        }
        self._staged_shard = None

    def _do_query(self, body) -> list[Answer]:
        scope, shard = query_scope(
            prepare_query(body).body, self._router.count
        )
        if scope == "single":
            return self._inners[shard].query(body)
        if scope == "scatter":
            merged: list[Answer] = []
            for inner in self._inners.values():
                merged.extend(inner.query(body))
            merged.sort(key=answer_sort_key)
            return merged
        raise ReproError(
            "cluster: transactions cannot evaluate cross-host joins (the "
            "per-shard pins cannot cover a centrally evaluated join); "
            "run the join outside the transaction"
        )

    def _do_stage(self, program) -> None:
        coerced, shard = self._router._route_program(program)
        if self._staged_shard is not None and self._staged_shard != shard:
            raise ReproError(
                f"a cluster transaction stages programs on one shard only "
                f"(already staged on shard {self._staged_shard}, this "
                f"program routes to shard {shard}); commit them as "
                f"separate transactions"
            )
        self._inners[shard].stage(coerced)
        self._staged_shard = shard

    def _do_commit(self, tag: str) -> CommitResult:
        shard = self._staged_shard if self._staged_shard is not None else 0
        outcome = self._inners[shard].commit(tag=tag)
        for other, inner in self._inners.items():
            if other != shard:
                inner.abort()
        if not outcome.revisions:
            return outcome
        records = self._router._record_commit(shard, outcome.revisions)
        return CommitResult(tuple(records), attempts=outcome.attempts)

    def _do_abort(self) -> None:
        for inner in self._inners.values():
            inner.abort()


def _close_inners(inners: dict) -> None:
    for inner in list(inners.values()):
        try:
            inner.close()
        except Exception:
            pass


def _aggregate_replication(docs: list[dict]) -> dict:
    sections = [doc.get("replication") or {} for doc in docs]
    def follower_count(section: dict) -> int:
        followers = section.get("followers") or 0
        if isinstance(followers, (int, float)):
            return int(followers)
        return len(followers)
    return {
        "role": "router",
        "epoch": max((s.get("epoch", 0) for s in sections), default=0),
        "fenced_epoch": max(
            (s.get("fenced_epoch", 0) for s in sections), default=0
        ),
        "last_index": sum(s.get("last_index", 0) for s in sections),
        "followers": sum(follower_count(s) for s in sections),
        "streamed_lines": sum(s.get("streamed_lines", 0) for s in sections),
        "primary": None,
        "lag": max((s.get("lag", 0) for s in sections), default=0),
        "primary_alive": all(
            s.get("primary_alive", True) for s in sections
        ),
    }


def _merge_registries(registries: list[dict]) -> dict:
    """Best-effort union of per-shard metric registries for display:
    counters and gauges sum; histogram series sum their counts and take
    the worst (max) quantiles."""
    merged: dict = {}
    for registry in registries:
        for name, entry in registry.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "kind": entry.get("kind"),
                    "series": {
                        key: (dict(value) if isinstance(value, dict) else value)
                        for key, value in (entry.get("series") or {}).items()
                    },
                }
                continue
            for key, value in (entry.get("series") or {}).items():
                existing = target["series"].get(key)
                if existing is None:
                    target["series"][key] = (
                        dict(value) if isinstance(value, dict) else value
                    )
                elif isinstance(value, dict) and isinstance(existing, dict):
                    for field in value:
                        if field in ("count", "sum"):
                            existing[field] = (
                                existing.get(field, 0) + value[field]
                            )
                        else:
                            existing[field] = max(
                                existing.get(field, 0), value[field]
                            )
                elif isinstance(value, (int, float)) and isinstance(
                    existing, (int, float)
                ):
                    target["series"][key] = existing + value
    return merged


def _merge_slowlogs(sections: list[dict]) -> dict:
    entries: list[dict] = []
    for section in sections:
        entries.extend(section.get("entries") or [])
    first = sections[0] if sections else {}
    return {
        "entries": entries[-50:],
        "dropped": sum(section.get("dropped", 0) for section in sections),
        "capacity": max(
            (section.get("capacity", 0) for section in sections), default=0
        ),
        "thresholds_ms": first.get("thresholds_ms"),
    }
