"""Sharded cluster serving: hash-partitioned stores behind one router.

The paper anchors every fact to a host OID, which makes the fact space
naturally partitionable: hash the host, and every rule-match and commit
whose hosts are ground stays local to one shard.  This package exploits
that:

* :mod:`repro.cluster.partition` — the stable partitioning rule
  (``shard_for``), base splitting, and program/query routing analysis;
* :mod:`repro.cluster.router` — :class:`ClusterConnection`, the
  ``cluster:`` :class:`~repro.api.connection.Connection` backend:
  single-shard fast path, scatter-gather reads, revision-vector
  consistency tokens, merged subscriptions, per-shard failover via the
  ``replset:`` machinery;
* :mod:`repro.cluster.local` — :class:`LocalCluster`, an in-process
  N-shard deployment for tests, examples and benchmarks.

Connect with ``repro.connect("cluster:unix:a.sock,unix:b.sock")``; manage
deployments with the ``repro cluster`` CLI (init/launch/status).
"""

from repro.cluster.local import LocalCluster
from repro.cluster.partition import (
    program_hosts,
    query_scope,
    shard_for,
    shard_of_fact,
    split_base,
)
from repro.cluster.router import ClusterConnection, RevisionVector

__all__ = [
    "ClusterConnection",
    "LocalCluster",
    "RevisionVector",
    "program_hosts",
    "query_scope",
    "shard_for",
    "shard_of_fact",
    "split_base",
]
