"""A store that keeps the whole history of update-processes as a delta chain.

Each applied update-program produces a new revision (the paper's
``ob → ob'`` mapping); the store keeps every revision, so "as-of" queries
and diffs across updates are possible — the long-term complement of the
paper's per-update versioning (Section 1's closing remark).

History is represented the way the paper frames it — a *chain* of update
deltas, not a pile of copies:

* a :class:`StoreRevision` records the ``(added, removed)`` fact sets
  against its parent; every ``snapshot_interval``-th revision additionally
  materializes a full frozen base, so reconstructing any revision costs the
  nearest snapshot plus the deltas since it, never ``O(|base| · revisions)``;
* the head base and every snapshot are frozen
  (:meth:`~repro.core.objectbase.ObjectBase.freeze`), so ``current`` and
  ``as_of`` hand out the shared view instead of copying, and the engine's
  ``new_base`` is committed without a defensive copy;
* the engine's :class:`~repro.core.engine.CompiledProgram` cache makes a
  chain of ``apply`` calls of the same program pay the static analysis once;
* registered :class:`~repro.core.query.PreparedQuery` objects are served
  memoized per revision (:meth:`VersionedStore.query`): every commit folds
  its exact delta against each query's dependency signature, carrying the
  memos it provably cannot affect and invalidating only the rest.

``StoreOptions(delta_chain=False)`` restores the original representation —
one full materialized base per revision — as an escape hatch; both modes
expose identical facts at every revision (covered by an equivalence test).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.atoms import Literal
from repro.core.engine import UpdateEngine, UpdateResult
from repro.core.errors import ReproError
from repro.core.facts import EXISTS, Fact
from repro.core.objectbase import Delta, ObjectBase
from repro.core.query import Answer, PreparedQuery, prepare_query
from repro.core.rules import UpdateProgram

__all__ = [
    "StoreOptions",
    "StoreRevision",
    "VersionedStore",
    "resolve_revision_ref",
]


def resolve_revision_ref(ref: str | int) -> str | int:
    """Canonical tag-or-index revision addressing, shared by every surface.

    Integers and all-digit strings (optionally ``-``-signed, as produced by
    CLIs and wire payloads) address revisions *by index*; any other string
    addresses *by tag*.  All-digit tags are rejected at commit time
    (:func:`_check_tag`), so the coercion is never ambiguous.  The store,
    the wire dispatcher, the CLI and the connection facade all resolve
    references through this one function, so ``as_of``/``diff`` accept the
    same forms — and fail with the same messages — on every backend.
    """
    if isinstance(ref, bool):
        raise ReproError(f"no revision {ref!r}")
    if isinstance(ref, int):
        return ref
    if isinstance(ref, str) and ref.removeprefix("-").isdigit():
        # exactly one optional sign: "--2" is not an index (nor a valid
        # tag, but it must fail as "no revision tagged", not a ValueError)
        return int(ref)
    return ref

#: A deferred snapshot: called once, on first need, to produce the base.
SnapshotSource = Callable[[], ObjectBase]


class _PreparedEntry:
    """Per-store memo state for one registered :class:`PreparedQuery`.

    ``revision`` is the revision index the cached ``answers`` are valid at
    (``None`` = nothing cached).  ``carried`` counts commits whose delta
    provably could not change the answers — the memo survived them without
    re-execution; ``invalidated`` counts the commits that did hit the
    query's signature.  ``text`` remembers the concrete-syntax form the
    query was registered under (if any) so repeats of the same string skip
    the parser, and so eviction can drop the alias.
    """

    __slots__ = (
        "query", "revision", "answers",
        "hits", "misses", "carried", "invalidated", "text",
    )

    def __init__(self, query: PreparedQuery) -> None:
        self.query = query
        self.revision: int | None = None
        self.answers: list[Answer] | None = None
        self.hits = 0
        self.misses = 0
        self.carried = 0
        self.invalidated = 0
        self.text: str | None = None

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "carried": self.carried,
            "invalidated": self.invalidated,
            "valid_at": self.revision,
        }


@dataclass(frozen=True)
class StoreOptions:
    """Tunable shape of a :class:`VersionedStore`.

    delta_chain:
        Store ``(added, removed)`` deltas per revision with periodic
        snapshots (the default).  ``False`` materializes a full frozen base
        at *every* revision — the pre-delta behaviour, kept as an escape
        hatch for workloads whose deltas approach the base size.
    snapshot_interval:
        Materialize a full snapshot every this-many revisions (revision 0
        always has one).  Smaller values trade memory for faster ``as_of``
        reconstruction of cold revisions.
    materialize_cache:
        How many reconstructed non-head revisions to keep around for
        repeated ``as_of`` reads.
    prepared_cache_size:
        How many prepared queries (with their per-revision answer memos)
        the store keeps registered, LRU by use.  Bounds the serving-layer
        state of long-lived processes that push ad-hoc query strings
        through :meth:`VersionedStore.query`; an evicted query simply
        re-registers (and re-memoizes) on its next use.
    """

    delta_chain: bool = True
    snapshot_interval: int = 32
    materialize_cache: int = 4
    prepared_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.snapshot_interval < 1:
            raise ReproError("snapshot_interval must be >= 1")
        if self.prepared_cache_size < 1:
            raise ReproError("prepared_cache_size must be >= 1")


@dataclass(frozen=True)
class StoreRevision:
    """One committed state of the store, as a delta against its parent.

    ``added`` / ``removed`` are exact set differences w.r.t. the parent
    revision (disjoint by construction); ``snapshot`` is the full frozen
    base when this revision falls on the snapshot policy, else ``None``.
    ``base`` reconstructs the full (frozen, shared) base through the owning
    store — the pre-delta attribute kept as a property so audits and
    examples read naturally.

    ``epoch`` is the replication fencing generation the revision was
    committed under (0 for an unreplicated store).  Epochs are monotonic
    along the chain: a promotion bumps the store's epoch, so a revision
    stamped with a lower epoch than its predecessor can only come from a
    fenced-off zombie primary and is rejected at load/verify time.
    """

    index: int
    tag: str
    program_name: str | None
    added: frozenset[Fact] = frozenset()
    removed: frozenset[Fact] = frozenset()
    snapshot: ObjectBase | None = None
    _store: "VersionedStore | None" = field(
        default=None, repr=False, compare=False
    )
    epoch: int = 0

    @property
    def base(self) -> ObjectBase:
        """The full object base of this revision (frozen shared view)."""
        if self.snapshot is not None:
            return self.snapshot
        if self._store is None:
            raise ReproError(
                f"revision {self.index} is detached from its store and has "
                f"no snapshot to reconstruct from"
            )
        return self._store.base_at(self.index)

    def facts(self) -> frozenset[Fact]:
        return frozenset(self.base)


class VersionedStore:
    """An append-only chain of object-base revisions.

    >>> store = VersionedStore(initial_base, tag="loaded")     # doctest: +SKIP
    >>> store.apply(raise_program, tag="raise-2026")           # doctest: +SKIP
    >>> store.as_of("loaded")                                  # doctest: +SKIP
    """

    def __init__(
        self,
        base: ObjectBase,
        *,
        tag: str = "initial",
        engine: UpdateEngine | None = None,
        options: StoreOptions | None = None,
    ):
        self._engine = engine or UpdateEngine()
        self.options = options or StoreOptions()
        snapshot = base.copy()
        snapshot.ensure_exists()
        snapshot.freeze()
        self._head_cache: "tuple[int, ObjectBase] | None" = (0, snapshot)
        self._materialized: dict[int, ObjectBase] = {}
        self._snapshot_sources: dict[int, "SnapshotSource"] = {}
        self._prepared: OrderedDict[PreparedQuery, _PreparedEntry] = OrderedDict()
        self._prepared_texts: dict[str, PreparedQuery] = {}
        self._prepared_lock = threading.RLock()
        self._commit_listeners: list[Callable[[StoreRevision], None]] = []
        self.epoch = 0
        self._revisions: list[StoreRevision] = [
            StoreRevision(0, _check_tag(tag), None, frozenset(), frozenset(), snapshot, self)
        ]

    @classmethod
    def from_revisions(
        cls,
        revisions: list[StoreRevision],
        *,
        engine: UpdateEngine | None = None,
        options: StoreOptions | None = None,
        snapshot_sources: "dict[int, SnapshotSource] | None" = None,
    ) -> "VersionedStore":
        """Adopt an already-built revision chain (the journal loader's
        entry point).  Revision 0 must carry a snapshot; indexes must be
        contiguous from 0.

        ``snapshot_sources`` maps revision indexes to zero-argument
        callables producing the snapshot base on demand — the journal
        loader registers one per snapshot *file* so that metadata-level
        work (``log``, appending) never parses cold snapshots; a loaded
        snapshot is cached on its revision.
        """
        if not revisions:
            raise ReproError("a store needs at least one revision")
        snapshot_sources = dict(snapshot_sources or {})
        if revisions[0].snapshot is None and 0 not in snapshot_sources:
            raise ReproError("revision 0 must carry a full snapshot")
        store = cls.__new__(cls)
        store._engine = engine or UpdateEngine()
        store.options = options or StoreOptions()
        store._materialized = {}
        store._snapshot_sources = snapshot_sources
        store._prepared = OrderedDict()
        store._prepared_texts = {}
        store._prepared_lock = threading.RLock()
        store._commit_listeners = []
        store._revisions = []
        for expected, revision in enumerate(revisions):
            if revision.index != expected:
                raise ReproError(
                    f"revision chain is not contiguous: expected index "
                    f"{expected}, got {revision.index}"
                )
            if revision.snapshot is not None:
                revision.snapshot.freeze()
            object.__setattr__(revision, "_store", store)
            store._revisions.append(revision)
        store.epoch = store._revisions[-1].epoch
        store._head_cache = None  # reconstructed on first read (lazy, like snapshots)
        return store

    # -- reading ---------------------------------------------------------
    @property
    def engine(self) -> UpdateEngine:
        return self._engine

    @property
    def current(self) -> ObjectBase:
        """The newest revision's base — the frozen shared view, no copy.

        Mutating it raises :class:`~repro.core.errors.FrozenBaseError`;
        call ``.copy()`` for a private mutable base.

        The head is cached as one ``(index, base)`` tuple assigned
        atomically, so a concurrent reader can never pair a revision index
        with another revision's base — it either gets a matching cache or
        reconstructs its index from snapshots + deltas (any cached pair is
        immutable and stays correct forever).
        """
        last = len(self._revisions) - 1
        cache = self._head_cache
        if cache is not None and cache[0] == last:
            return cache[1]
        base = self._reconstruct(last)
        self._head_cache = (last, base)
        return base

    @property
    def head(self) -> StoreRevision:
        return self._revisions[-1]

    def __len__(self) -> int:
        return len(self._revisions)

    def revisions(self) -> tuple[StoreRevision, ...]:
        return tuple(self._revisions)

    def as_of(self, tag_or_index: str | int) -> ObjectBase:
        """The base as of a revision, by tag or index (frozen shared view)."""
        return self.base_at(self._find(tag_or_index).index)

    def base_at(self, index: int) -> ObjectBase:
        """The full frozen base of revision ``index``, reconstructed from
        the nearest snapshot at or below it plus the deltas since.

        The head cache is consulted by exact index match only (see
        :attr:`current`), so a session pinned at revision N keeps reading
        N even when a commit lands mid-call."""
        cache = self._head_cache
        if cache is not None and cache[0] == index:
            return cache[1]
        if self.has_snapshot(index):
            return self.snapshot_at(index)
        cached = self._materialized.get(index)
        if cached is not None:
            return cached
        base = self._reconstruct(index)
        self._materialized[index] = base
        while len(self._materialized) > self.options.materialize_cache:
            self._materialized.pop(next(iter(self._materialized)))
        return base

    def has_snapshot(self, index: int) -> bool:
        """True when revision ``index`` materializes a full base (loaded
        or still deferred to its journal file)."""
        return (
            self._revisions[index].snapshot is not None
            or index in self._snapshot_sources
        )

    def snapshot_at(self, index: int) -> ObjectBase | None:
        """The snapshot base of revision ``index`` (loading and caching a
        deferred one), or ``None`` when the revision is delta-only."""
        revision = self._revisions[index]
        if revision.snapshot is not None:
            return revision.snapshot
        source = self._snapshot_sources.pop(index, None)
        if source is None:
            return None
        base = source().freeze()
        object.__setattr__(revision, "snapshot", base)
        return base

    def _reconstruct(self, index: int) -> ObjectBase:
        anchor = index
        while not self.has_snapshot(anchor):
            anchor -= 1
        base = self.snapshot_at(anchor)
        if anchor == index:
            return base
        added: set[Fact] = set()
        removed: set[Fact] = set()
        for k in range(anchor + 1, index + 1):
            revision = self._revisions[k]
            _compose_delta(added, removed, revision.added, revision.removed)
        return base.apply_delta(added, removed).freeze()

    def _find(self, tag_or_index: str | int) -> StoreRevision:
        tag_or_index = resolve_revision_ref(tag_or_index)
        if isinstance(tag_or_index, int):
            # Reject negative indexes instead of letting Python's sequence
            # addressing silently resolve them to a revision near the head.
            if tag_or_index < 0:
                raise ReproError(f"no revision {tag_or_index}")
            try:
                return self._revisions[tag_or_index]
            except IndexError:
                raise ReproError(f"no revision {tag_or_index}") from None
        for revision in self._revisions:
            if revision.tag == tag_or_index:
                return revision
        raise ReproError(f"no revision tagged {tag_or_index!r}")

    # -- prepared-query serving -------------------------------------------
    def prepare(
        self,
        query: "PreparedQuery | str | Sequence[Literal]",
        *,
        name: str | None = None,
    ) -> PreparedQuery:
        """Register a prepared query with this store and return it.

        The query's body is compiled exactly once (join plan + index-column
        selection + dependency signature); :meth:`query` then serves it
        from a per-revision memo.  Preparing the same body (or the same
        concrete-syntax string — repeats skip the parser entirely) returns
        the original registration, memo state included.

        The registry is LRU-bounded by
        :attr:`StoreOptions.prepared_cache_size`; an evicted query simply
        re-registers with a cold memo on its next use.  Registry mutations
        are serialized by a lock, so concurrent reader threads (the MVCC
        sessions of :mod:`repro.server.service`) cannot corrupt the LRU
        structure.
        """
        with self._prepared_lock:
            if isinstance(query, str):
                known = self._prepared_texts.get(query)
                if known is not None:
                    entry = self._prepared.get(known)
                    if entry is not None:
                        self._prepared.move_to_end(known)
                        return entry.query
            prepared = prepare_query(query, name=name)
            entry = self._prepared.get(prepared)
            if entry is not None:
                self._prepared.move_to_end(prepared)
                if isinstance(query, str) and entry.text is None:
                    # Remember the alias so repeats of this string skip the
                    # parser even though the body was first registered
                    # programmatically.
                    entry.text = query
                    self._prepared_texts[query] = entry.query
                return entry.query
            entry = _PreparedEntry(prepared)
            if isinstance(query, str):
                entry.text = query
                self._prepared_texts[query] = prepared
            self._prepared[prepared] = entry
            while len(self._prepared) > self.options.prepared_cache_size:
                _evicted, old_entry = self._prepared.popitem(last=False)
                if old_entry.text is not None:
                    self._prepared_texts.pop(old_entry.text, None)
            return entry.query

    def query(
        self, query: "PreparedQuery | str | Sequence[Literal]"
    ) -> list[Answer]:
        """Answer a conjunctive query against the head revision, memoized.

        A first execution at a revision runs the compiled plan and caches
        the answers; repeats at the same revision are dictionary hits.  On
        every commit the store folds the revision's exact ``(added,
        removed)`` delta against each registered query's
        :class:`~repro.core.plans.QuerySignature`: when no trigger fires the
        memo is *carried forward* to the new revision without re-execution,
        so updates that cannot change a query's answers keep its serving
        path at cache speed.

        The returned list is the live cache entry — treat it as read-only.
        Unregistered query forms are registered on first use (into the
        LRU-bounded registry; see :meth:`prepare`).
        """
        prepared = self.prepare(query)
        with self._prepared_lock:
            entry = self._prepared[prepared]
            head_index = len(self._revisions) - 1
            if entry.revision == head_index and entry.answers is not None:
                entry.hits += 1
                return entry.answers
            entry.answers = prepared.run(self.base_at(head_index))
            entry.revision = head_index
            entry.misses += 1
            return entry.answers

    def prepared_stats(self) -> dict[str, dict]:
        """Memo counters per registered prepared query, by query name
        (colliding names get a ``#n`` suffix so no entry is dropped)."""
        stats: dict[str, dict] = {}
        with self._prepared_lock:
            entries = list(self._prepared.values())
        for entry in entries:
            key = entry.query.name
            if key in stats:
                suffix = 2
                while f"{key}#{suffix}" in stats:
                    suffix += 1
                key = f"{key}#{suffix}"
            stats[key] = entry.stats()
        return stats

    def _revalidate_prepared(
        self, added: frozenset[Fact], removed: frozenset[Fact]
    ) -> None:
        """The commit hook: carry every unaffected memo to the new head,
        drop the affected ones."""
        head_index = len(self._revisions) - 1
        previous = head_index - 1
        delta: Delta | None = None
        with self._prepared_lock:
            for entry in self._prepared.values():
                if entry.answers is None or entry.revision != previous:
                    continue
                if delta is None:
                    delta = Delta()
                    delta.record(added, removed)
                if entry.query.signature.affected_by(delta):
                    entry.answers = None
                    entry.revision = None
                    entry.invalidated += 1
                else:
                    entry.revision = head_index
                    entry.carried += 1

    # -- commit listeners --------------------------------------------------
    def add_commit_listener(
        self, listener: Callable[[StoreRevision], None]
    ) -> Callable[[StoreRevision], None]:
        """Register ``listener`` to be called with every newly committed
        :class:`StoreRevision` (after the store's own memo revalidation, so
        listeners reading through :meth:`query` see the new head).

        This is the seam the serving subsystem's subscription manager (and,
        later, replication) plugs into: a listener receives the revision's
        exact ``(added, removed)`` delta and can fold it through trigger
        machinery instead of diffing bases.  Returns the listener so the
        call can be used inline; remove with :meth:`remove_commit_listener`.
        """
        self._commit_listeners.append(listener)
        return listener

    def remove_commit_listener(
        self, listener: Callable[[StoreRevision], None]
    ) -> None:
        """Unregister a commit listener (no-op when not registered)."""
        try:
            self._commit_listeners.remove(listener)
        except ValueError:
            pass

    # -- writing -----------------------------------------------------------
    def apply(self, program: UpdateProgram, *, tag: str = "") -> UpdateResult:
        """Run an update-program transactionally against the head revision.

        On success a new revision is appended; on any evaluation error the
        store is untouched (atomicity comes free: evaluation copies).  The
        engine's compiled-program cache makes repeated applies of the same
        program skip the static analysis; the produced ``new_base`` is
        frozen and committed directly — no defensive copy.
        """
        result = self._engine.apply(program, self.current)
        self.commit_update(result.new_base, tag=tag, program_name=program.name)
        return result

    def commit_update(
        self,
        new_base: ObjectBase,
        *,
        tag: str = "",
        program_name: str | None = None,
    ) -> StoreRevision:
        """Append an engine-produced ``new_base`` as a new revision, without
        the defensive copy of :meth:`commit_base`.

        This is the two-phase commit entry of the serving layer: a
        transaction evaluates its staged programs first (against frozen
        shared views, producing one ``new_base`` per program) and only then
        commits the results, so an evaluation error rolls the whole batch
        back by committing nothing.  ``new_base`` must already contain its
        ``exists`` map (every engine result does).
        """
        return self._commit(new_base.freeze(), tag, program_name)

    def commit_base(self, base: ObjectBase, *, tag: str = "") -> StoreRevision:
        """Append an externally produced base as a new revision."""
        snapshot = base.copy()
        snapshot.ensure_exists()
        return self._commit(snapshot.freeze(), tag, None)

    def rollback_to(self, tag_or_index: str | int, *, tag: str = "") -> StoreRevision:
        """Append a new revision whose base equals an older revision's.

        The store stays append-only (the rolled-back states remain in the
        history); this is the transactional undo on top of the paper's
        ``ob -> ob'`` mapping.  Under the delta representation the new
        revision records exactly the facts that flow back.
        """
        source = self._find(tag_or_index)
        return self._commit(
            self.base_at(source.index), tag or f"rollback-to-{source.tag}", None
        )

    def _commit(
        self, new_base: ObjectBase, tag: str, program_name: str | None
    ) -> StoreRevision:
        old = self.current
        added = frozenset(f for f in new_base if f not in old)
        removed = frozenset(f for f in old if f not in new_base)
        index = len(self._revisions)
        snapshot = None
        if not self.options.delta_chain or index % self.options.snapshot_interval == 0:
            snapshot = new_base
        revision = StoreRevision(
            index,
            _check_tag(tag or f"rev{index}"),
            program_name,
            added,
            removed,
            snapshot,
            self,
            self.epoch,
        )
        self._revisions.append(revision)
        self._head_cache = (index, new_base)
        self._revalidate_prepared(added, removed)
        for listener in tuple(self._commit_listeners):
            listener(revision)
        return revision

    # -- comparing --------------------------------------------------------
    def diff(
        self, older: str | int, newer: str | int, *, include_exists: bool = False
    ) -> tuple[frozenset[Fact], frozenset[Fact]]:
        """``(added, removed)`` fact sets between two revisions.

        Computed by composing the stored per-revision deltas (facts that
        appear and disappear in between cancel out), so the cost is the sum
        of the delta sizes on the path — the full bases are never
        materialized.
        """
        start = self._find(older).index
        stop = self._find(newer).index
        flipped = start > stop
        if flipped:
            start, stop = stop, start
        added: set[Fact] = set()
        removed: set[Fact] = set()
        for k in range(start + 1, stop + 1):
            revision = self._revisions[k]
            _compose_delta(added, removed, revision.added, revision.removed)
        if flipped:
            added, removed = removed, added
        if not include_exists:
            added = {f for f in added if f.method != EXISTS}
            removed = {f for f in removed if f.method != EXISTS}
        return (frozenset(added), frozenset(removed))

    # -- accounting -------------------------------------------------------
    def stored_entries(self) -> int:
        """The number of fact-set slots the chain keeps alive — snapshots
        at their full size, delta revisions at ``|added| + |removed|``.
        The representation-independent memory yardstick of the store bench.
        """
        total = 0
        for revision in self._revisions:
            if self.has_snapshot(revision.index):
                total += len(self.snapshot_at(revision.index))
            else:
                total += len(revision.added) + len(revision.removed)
        return total


def _check_tag(tag: str) -> str:
    """Reject tags that collide with the numeric revision addressing of
    ``as_of`` / ``diff`` (an all-digit tag would be unreachable, or —
    worse — silently resolve to the wrong revision on long chains)."""
    if tag.lstrip("-").isdigit():
        raise ReproError(
            f"revision tag {tag!r} is all digits, which is reserved for "
            f"index addressing; pick a tag with a letter in it"
        )
    return tag


def _compose_delta(
    added: set[Fact],
    removed: set[Fact],
    step_added: frozenset[Fact],
    step_removed: frozenset[Fact],
) -> None:
    """Fold one revision's delta into a running ``(added, removed)`` pair.

    A fact removed after being added (or vice versa) cancels: the pair
    always equals the exact set difference between the endpoints.
    """
    for fact in step_removed:
        if fact in added:
            added.discard(fact)
        else:
            removed.add(fact)
    for fact in step_added:
        if fact in removed:
            removed.discard(fact)
        else:
            added.add(fact)
