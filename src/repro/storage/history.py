"""A store that keeps the whole history of update-processes.

Each applied update-program produces a new revision (the paper's
``ob → ob'`` mapping); the store keeps every revision, so "as-of" queries
and diffs across updates are possible — the long-term complement of the
paper's per-update versioning (Section 1's closing remark).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import UpdateEngine, UpdateResult
from repro.core.errors import ReproError
from repro.core.facts import EXISTS, Fact
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram

__all__ = ["StoreRevision", "VersionedStore"]


@dataclass(frozen=True)
class StoreRevision:
    """One committed state of the store."""

    index: int
    tag: str
    base: ObjectBase
    program_name: str | None

    def facts(self) -> frozenset[Fact]:
        return frozenset(self.base)


class VersionedStore:
    """An append-only chain of object-base revisions.

    >>> store = VersionedStore(initial_base, tag="loaded")     # doctest: +SKIP
    >>> store.apply(raise_program, tag="raise-2026")           # doctest: +SKIP
    >>> store.as_of("loaded")                                  # doctest: +SKIP
    """

    def __init__(
        self,
        base: ObjectBase,
        *,
        tag: str = "initial",
        engine: UpdateEngine | None = None,
    ):
        self._engine = engine or UpdateEngine()
        snapshot = base.copy()
        snapshot.ensure_exists()
        self._revisions: list[StoreRevision] = [
            StoreRevision(0, tag, snapshot, None)
        ]

    # -- reading ---------------------------------------------------------
    @property
    def current(self) -> ObjectBase:
        """The newest revision's base (copy-on-read: mutations stay local)."""
        return self._revisions[-1].base.copy()

    @property
    def head(self) -> StoreRevision:
        return self._revisions[-1]

    def __len__(self) -> int:
        return len(self._revisions)

    def revisions(self) -> tuple[StoreRevision, ...]:
        return tuple(self._revisions)

    def as_of(self, tag_or_index: str | int) -> ObjectBase:
        """The base as of a revision, by tag or index."""
        return self._find(tag_or_index).base.copy()

    def _find(self, tag_or_index: str | int) -> StoreRevision:
        if isinstance(tag_or_index, int):
            try:
                return self._revisions[tag_or_index]
            except IndexError:
                raise ReproError(f"no revision {tag_or_index}") from None
        for revision in self._revisions:
            if revision.tag == tag_or_index:
                return revision
        raise ReproError(f"no revision tagged {tag_or_index!r}")

    # -- writing -----------------------------------------------------------
    def apply(self, program: UpdateProgram, *, tag: str = "") -> UpdateResult:
        """Run an update-program transactionally against the head revision.

        On success a new revision is appended; on any evaluation error the
        store is untouched (atomicity comes free: evaluation copies).
        """
        result = self._engine.apply(program, self._revisions[-1].base)
        self._revisions.append(
            StoreRevision(
                len(self._revisions),
                tag or f"rev{len(self._revisions)}",
                result.new_base,
                program.name,
            )
        )
        return result

    def commit_base(self, base: ObjectBase, *, tag: str = "") -> StoreRevision:
        """Append an externally produced base as a new revision."""
        snapshot = base.copy()
        snapshot.ensure_exists()
        revision = StoreRevision(
            len(self._revisions), tag or f"rev{len(self._revisions)}", snapshot, None
        )
        self._revisions.append(revision)
        return revision

    def rollback_to(self, tag_or_index: str | int, *, tag: str = "") -> StoreRevision:
        """Append a new revision whose base equals an older revision's.

        The store stays append-only (the rolled-back states remain in the
        history); this is the transactional undo on top of the paper's
        ``ob -> ob'`` mapping.
        """
        source = self._find(tag_or_index)
        revision = StoreRevision(
            len(self._revisions),
            tag or f"rollback-to-{source.tag}",
            source.base.copy(),
            None,
        )
        self._revisions.append(revision)
        return revision

    # -- comparing --------------------------------------------------------
    def diff(
        self, older: str | int, newer: str | int, *, include_exists: bool = False
    ) -> tuple[frozenset[Fact], frozenset[Fact]]:
        """``(added, removed)`` fact sets between two revisions."""
        old = self._find(older).facts()
        new = self._find(newer).facts()
        if not include_exists:
            old = frozenset(f for f in old if f.method != EXISTS)
            new = frozenset(f for f in new if f.method != EXISTS)
        return (new - old, old - new)
