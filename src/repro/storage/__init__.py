"""Versioned storage substrate.

The paper's VIDs support *single updates*; "several of them may give rise to
introduce a new version in the usual sense" (Section 1) — i.e. long-term
object versioning as in [Kim91].  This subpackage provides that usual sense:

* :class:`~repro.storage.history.VersionedStore` — a chain of object-base
  snapshots, one per applied update-program (transaction), with as-of
  queries and diffs;
* :mod:`~repro.storage.serialize` — text and JSON round-trips for object
  bases and programs.
"""

from repro.storage.history import StoreRevision, VersionedStore
from repro.storage.serialize import (
    dump_base_json,
    dump_base_text,
    load_base_json,
    load_base_text,
)

__all__ = [
    "VersionedStore",
    "StoreRevision",
    "dump_base_text",
    "load_base_text",
    "dump_base_json",
    "load_base_json",
]
