"""Versioned storage substrate.

The paper's VIDs support *single updates*; "several of them may give rise to
introduce a new version in the usual sense" (Section 1) — i.e. long-term
object versioning as in [Kim91].  This subpackage provides that usual sense:

* :class:`~repro.storage.history.VersionedStore` — an append-only delta
  chain of object-base revisions (one per applied update-program /
  transaction) with periodic full snapshots, structural sharing between
  revisions, as-of queries and delta-composed diffs;
* :mod:`~repro.storage.serialize` — text and JSON round-trips for object
  bases, plus the durable JSONL journal format that persists a whole
  revision chain (``save_store`` / ``load_store`` / ``append_revision`` /
  ``compact_journal``).
"""

from repro.storage.history import (
    StoreOptions,
    StoreRevision,
    VersionedStore,
    resolve_revision_ref,
)
from repro.storage.serialize import (
    DurabilityOptions,
    JournalCorruptError,
    append_revision,
    compact_journal,
    dump_base_json,
    dump_base_text,
    load_base_json,
    load_base_text,
    load_store,
    save_store,
    verify_journal,
)

__all__ = [
    "VersionedStore",
    "StoreOptions",
    "StoreRevision",
    "resolve_revision_ref",
    "DurabilityOptions",
    "JournalCorruptError",
    "dump_base_text",
    "load_base_text",
    "dump_base_json",
    "load_base_json",
    "save_store",
    "load_store",
    "append_revision",
    "compact_journal",
    "verify_journal",
]
