"""Serialization of object bases: concrete-syntax text and JSON.

Text uses the :mod:`repro.lang` fact syntax (human-editable, diff-friendly);
JSON is a stable machine format that also round-trips derived versions
(VID-hosted facts), which the text loader's ``ensure_exists`` cannot
regenerate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import TermError
from repro.core.facts import Fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Term, UpdateKind, VersionId
from repro.lang.parser import parse_object_base
from repro.lang.pretty import format_object_base

__all__ = [
    "dump_base_text",
    "load_base_text",
    "dump_base_json",
    "load_base_json",
]


def dump_base_text(base: ObjectBase, path: str | Path | None = None) -> str:
    """Serialize to concrete syntax; optionally write to ``path``."""
    text = format_object_base(base) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_base_text(source: str | Path, *, ensure_exists: bool = True) -> ObjectBase:
    """Parse a base from a text file path or from literal text."""
    path = Path(source) if isinstance(source, Path) else None
    if path is None and isinstance(source, str) and "\n" not in source:
        candidate = Path(source)
        if candidate.exists():
            path = candidate
    text = path.read_text(encoding="utf-8") if path else str(source)
    return parse_object_base(text, ensure_exists=ensure_exists)


def _term_to_json(term: Term):
    if isinstance(term, Oid):
        return {"oid": term.value}
    if isinstance(term, VersionId):
        return {"kind": term.kind.value, "base": _term_to_json(term.base)}
    raise TermError(f"cannot serialize non-ground term {term}")


def _term_from_json(data) -> Term:
    if "oid" in data:
        return Oid(data["oid"])
    return VersionId(UpdateKind.from_name(data["kind"]), _term_from_json(data["base"]))


def dump_base_json(base: ObjectBase, path: str | Path | None = None) -> str:
    """Serialize every fact (including ``exists`` and VID hosts) to JSON."""
    payload = {
        "format": "repro-object-base",
        "version": 1,
        "facts": [
            {
                "host": _term_to_json(fact.host),
                "method": fact.method,
                "args": [a.value for a in fact.args],
                "result": fact.result.value,
            }
            for fact in base.sorted_facts()
        ],
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_base_json(source: str | Path) -> ObjectBase:
    """Inverse of :func:`dump_base_json`."""
    path = Path(source) if isinstance(source, Path) else None
    if path is None and isinstance(source, str) and not source.lstrip().startswith("{"):
        path = Path(source)
    text = path.read_text(encoding="utf-8") if path and path.exists() else str(source)
    payload = json.loads(text)
    if payload.get("format") != "repro-object-base":
        raise TermError("not a repro object-base JSON document")
    base = ObjectBase()
    for entry in payload["facts"]:
        base.add(
            Fact(
                _term_from_json(entry["host"]),
                entry["method"],
                tuple(Oid(a) for a in entry["args"]),
                Oid(entry["result"]),
            )
        )
    return base
