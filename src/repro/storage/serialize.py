"""Serialization: object bases (text / JSON) and store journals (JSONL).

Text uses the :mod:`repro.lang` fact syntax (human-editable, diff-friendly);
JSON is a stable machine format that also round-trips derived versions
(VID-hosted facts), which the text loader's ``ensure_exists`` cannot
regenerate.

The **journal** is the durable form of a
:class:`~repro.storage.history.VersionedStore`: a directory holding

* ``journal.jsonl`` — a header line (format, store options) followed by one
  JSON line per revision carrying its tag, program name, ``(added,
  removed)`` fact delta and a CRC-32 of the record, appendable without
  rewriting history;
* ``snap-<index>.json`` — full object-base snapshots (the
  :func:`dump_base_json` format) for the revisions the snapshot policy
  materialized.

``save_store`` / ``load_store`` round-trip a whole revision chain;
``append_revision`` extends a journal by the store's newest revision in
O(|delta|); ``compact_journal`` rewrites a journal under a fresh snapshot
interval; ``verify_journal`` audits a journal's checksums without
replaying it.

Durability is a policy, not a property of the data: :class:`DurabilityOptions`
selects how hard each append and snapshot write is pushed toward the platter
(``none``/``flush``/``fsync``), and every whole-file write — snapshots, the
journal itself on save/compaction, tail repair — goes through an atomic
temp-file + ``os.replace`` so a crash never leaves a half-written file under
a durable name.  All file I/O funnels through a single module-level
filesystem object so the fault-injection harness
(:mod:`repro.testing.faults`) can interpose deterministic crashes, torn
writes and ``ENOSPC`` at exact byte offsets.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ReproError, TermError
from repro.core.facts import Fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Term, UpdateKind, VersionId, intern_oid
from repro.lang.parser import parse_object_base
from repro.lang.pretty import format_object_base
from repro.obs import metrics as _obs
from repro.storage.history import StoreOptions, StoreRevision, VersionedStore

__all__ = [
    "dump_base_text",
    "load_base_text",
    "dump_base_json",
    "load_base_json",
    "JOURNAL_FILE",
    "DurabilityOptions",
    "JournalCorruptError",
    "save_store",
    "load_store",
    "append_revision",
    "compact_journal",
    "verify_journal",
    "format_revision_line",
    "parse_journal_record",
    "append_journal_line",
    "write_journal_file",
    "apply_journal_record",
]

JOURNAL_FILE = "journal.jsonl"
_JOURNAL_FORMAT = "repro-store-journal"

_DURABILITY_MODES = ("none", "flush", "fsync")


@dataclass(frozen=True)
class DurabilityOptions:
    """How hard journal writes are pushed toward stable storage.

    ``mode`` governs each ``append_revision`` line:

    * ``"none"`` — hand the bytes to the OS and move on (buffered write,
      closed immediately); fastest, loses the tail on a machine crash.
    * ``"flush"`` — explicitly flush the stream before close (the
      historical behavior; survives process death, not power loss).
    * ``"fsync"`` — flush **and** ``os.fsync`` the journal (and the
      directory after a rename), so an acknowledged commit survives power
      loss.

    ``fsync_snapshots`` extends the same discipline to snapshot files; it
    defaults to following the mode (``None`` ⇒ fsync snapshots exactly
    when ``mode == "fsync"``).
    """

    mode: str = "flush"
    fsync_snapshots: bool | None = None

    def __post_init__(self):
        if self.mode not in _DURABILITY_MODES:
            raise ReproError(
                f"unknown durability mode {self.mode!r}; "
                f"expected one of {', '.join(_DURABILITY_MODES)}"
            )

    @property
    def flush_appends(self) -> bool:
        return self.mode in ("flush", "fsync")

    @property
    def fsync_appends(self) -> bool:
        return self.mode == "fsync"

    @property
    def sync_snapshots(self) -> bool:
        if self.fsync_snapshots is None:
            return self.mode == "fsync"
        return self.fsync_snapshots


#: The durability applied when callers do not pass one explicitly.
DEFAULT_DURABILITY = DurabilityOptions()


class _Filesystem:
    """The single seam between journal logic and the OS.

    Every byte the journal subsystem persists flows through one of these
    methods, so the fault-injection harness can swap in a faulty double
    (see :func:`swap_filesystem`) and interpose crashes at exact byte
    offsets without monkeypatching ``pathlib`` internals.
    """

    def write_text(self, path: Path, text: str, *, fsync: bool = False) -> None:
        """Atomically replace ``path`` with ``text`` (temp file + rename)."""
        temp = path.with_name(path.name + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        self.replace(temp, path, fsync=fsync)

    def append_text(
        self, path: Path, text: str, *, flush: bool = True, fsync: bool = False
    ) -> None:
        with path.open("a", encoding="utf-8") as handle:
            handle.write(text)
            if flush or fsync:
                handle.flush()
            if fsync:
                start = time.perf_counter()
                os.fsync(handle.fileno())
                _obs.observe(
                    "commit_phase_seconds",
                    time.perf_counter() - start,
                    phase="fsync",
                )

    def replace(self, source: Path, target: Path, *, fsync: bool = False) -> None:
        os.replace(source, target)
        if fsync:
            self.fsync_dir(target.parent)

    def unlink(self, path: Path) -> None:
        path.unlink()

    def fsync_dir(self, directory: Path) -> None:
        """Make a rename durable by fsyncing the containing directory."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


_fs = _Filesystem()


def swap_filesystem(filesystem) -> object:
    """Install ``filesystem`` as the journal I/O backend; returns the old one.

    The hook behind :mod:`repro.testing.faults` — production code never
    calls this.
    """
    global _fs
    previous = _fs
    _fs = filesystem
    return previous


def dump_base_text(base: ObjectBase, path: str | Path | None = None) -> str:
    """Serialize to concrete syntax; optionally write to ``path``."""
    text = format_object_base(base) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_base_text(source: str | Path, *, ensure_exists: bool = True) -> ObjectBase:
    """Parse a base from a text file path or from literal text."""
    path = Path(source) if isinstance(source, Path) else None
    if path is None and isinstance(source, str) and "\n" not in source:
        candidate = Path(source)
        if candidate.exists():
            path = candidate
    text = path.read_text(encoding="utf-8") if path else str(source)
    return parse_object_base(text, ensure_exists=ensure_exists)


def _term_to_json(term: Term):
    if isinstance(term, Oid):
        return {"oid": term.value}
    if isinstance(term, VersionId):
        return {"kind": term.kind.value, "base": _term_to_json(term.base)}
    raise TermError(f"cannot serialize non-ground term {term}")


def _term_from_json(data) -> Term:
    if "oid" in data:
        return intern_oid(data["oid"])
    return VersionId(UpdateKind.from_name(data["kind"]), _term_from_json(data["base"]))


def dump_base_json(base: ObjectBase, path: str | Path | None = None) -> str:
    """Serialize every fact (including ``exists`` and VID hosts) to JSON."""
    payload = {
        "format": "repro-object-base",
        "version": 1,
        "facts": [
            {
                "host": _term_to_json(fact.host),
                "method": fact.method,
                "args": [a.value for a in fact.args],
                "result": fact.result.value,
            }
            for fact in base.sorted_facts()
        ],
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_base_json(source: str | Path) -> ObjectBase:
    """Inverse of :func:`dump_base_json`."""
    path = Path(source) if isinstance(source, Path) else None
    if path is None and isinstance(source, str) and not source.lstrip().startswith("{"):
        path = Path(source)
    if path is not None and not path.exists():
        raise ReproError(f"no object-base JSON file at {path}")
    text = path.read_text(encoding="utf-8") if path else str(source)
    payload = json.loads(text)
    if payload.get("format") != "repro-object-base":
        raise TermError("not a repro object-base JSON document")
    base = ObjectBase()
    for entry in payload["facts"]:
        base.add(_fact_from_json(entry))
    return base


# ----------------------------------------------------------------------
# store journals
# ----------------------------------------------------------------------


def _fact_to_json(fact: Fact) -> dict:
    return {
        "host": _term_to_json(fact.host),
        "method": fact.method,
        "args": [a.value for a in fact.args],
        "result": fact.result.value,
    }


def _fact_from_json(entry: dict) -> Fact:
    return Fact(
        _term_from_json(entry["host"]),
        entry["method"],
        tuple(intern_oid(a) for a in entry["args"]),
        intern_oid(entry["result"]),
    )


def _snapshot_name(index: int) -> str:
    return f"snap-{index:06d}.json"


def _record_crc(record: dict) -> str:
    """CRC-32 (hex) over the canonical JSON of ``record`` minus its ``crc``."""
    payload = {key: value for key, value in record.items() if key != "crc"}
    text = json.dumps(payload, sort_keys=True)
    return format(zlib.crc32(text.encode("utf-8")), "08x")


def _revision_line(revision: StoreRevision, has_snapshot: bool) -> str:
    record = {
        "index": revision.index,
        "tag": revision.tag,
        "program": revision.program_name,
        "added": [_fact_to_json(f) for f in sorted(revision.added, key=str)],
        "removed": [_fact_to_json(f) for f in sorted(revision.removed, key=str)],
        "snapshot": _snapshot_name(revision.index) if has_snapshot else None,
    }
    if revision.epoch:
        # Emitted only when a promotion ever happened, so unreplicated
        # journals keep their exact historical byte layout.  The field sits
        # inside the CRC envelope like every other one.
        record["epoch"] = revision.epoch
    record["crc"] = _record_crc(record)
    return json.dumps(record, sort_keys=True)


def format_revision_line(revision: StoreRevision, has_snapshot: bool) -> str:
    """The exact text ``append_revision`` writes for ``revision`` (no
    trailing newline).  Public for the replication streamer, whose whole
    contract is pushing byte-identical journal lines to followers."""
    return _revision_line(revision, has_snapshot)


def _write_snapshot(
    base: ObjectBase, path: Path, durability: DurabilityOptions
) -> None:
    start = time.perf_counter()
    _fs.write_text(path, dump_base_json(base), fsync=durability.sync_snapshots)
    _obs.observe("journal_snapshot_seconds", time.perf_counter() - start)


def save_store(
    store: VersionedStore,
    directory: str | Path,
    *,
    durability: DurabilityOptions | None = None,
) -> Path:
    """Write the whole revision chain of ``store`` to ``directory``.

    Returns the journal path.  Snapshot files are written exactly where the
    store's revisions carry snapshots; stale snapshot files from earlier
    saves are removed so the directory always mirrors one chain.

    The write order is crash-safe: snapshots land first (each via atomic
    temp-file + rename), then the journal is atomically replaced, and only
    then are stale snapshots unlinked — at no point does the durable
    journal reference a snapshot that is not fully on disk.
    """
    durability = durability or DEFAULT_DURABILITY
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(
            {
                "format": _JOURNAL_FORMAT,
                "version": 1,
                "options": {
                    "delta_chain": store.options.delta_chain,
                    "snapshot_interval": store.options.snapshot_interval,
                },
            },
            sort_keys=True,
        )
    ]
    kept: set[str] = set()
    for revision in store.revisions():
        has_snapshot = store.has_snapshot(revision.index)
        lines.append(_revision_line(revision, has_snapshot))
        if has_snapshot:
            name = _snapshot_name(revision.index)
            kept.add(name)
            _write_snapshot(
                store.snapshot_at(revision.index), directory / name, durability
            )
    journal = directory / JOURNAL_FILE
    _fs.write_text(
        journal, "\n".join(lines) + "\n", fsync=durability.fsync_appends
    )
    for stale in directory.glob("snap-*.json"):
        if stale.name not in kept:
            _fs.unlink(stale)
    return journal


def append_revision(
    store: VersionedStore,
    directory: str | Path,
    *,
    durability: DurabilityOptions | None = None,
) -> Path:
    """Append the store's newest revision to an existing journal.

    This is the fast path of ``repro store apply``: one JSONL line (plus a
    snapshot file when the policy materialized one) instead of rewriting
    the whole chain.  Before writing, the journal's last line is checked
    against the revision being appended, so a journal that moved under us
    (a concurrent ``store apply``) fails cleanly instead of silently
    forking the chain into an unreadable state.

    The snapshot (when due) is written before the journal line, so a crash
    between the two leaves a dangling snapshot file (harmless, cleaned by
    the next compaction) rather than a journal line pointing at nothing.
    """
    durability = durability or DEFAULT_DURABILITY
    directory = Path(directory)
    journal = directory / JOURNAL_FILE
    if not journal.exists():
        raise ReproError(f"no journal at {journal}")
    revision = store.head
    last = _last_journal_index(journal)
    if last != revision.index - 1:
        raise ReproError(
            f"journal at {journal} ends at revision {last}, cannot append "
            f"revision {revision.index}; it was modified since this store "
            f"loaded it (concurrent writer?) — reload and retry"
        )
    has_snapshot = store.has_snapshot(revision.index)
    if has_snapshot:
        _write_snapshot(
            store.snapshot_at(revision.index),
            directory / _snapshot_name(revision.index),
            durability,
        )
    line = _revision_line(revision, has_snapshot) + "\n"
    _obs.inc("journal_bytes", len(line.encode("utf-8")))
    _fs.append_text(
        journal,
        line,
        flush=durability.flush_appends,
        fsync=durability.fsync_appends,
    )
    return journal


def parse_journal_record(line: str) -> dict:
    """Parse and validate one journal line (shape, CRC, epoch field).

    The replication follower's gate: every line received from a primary is
    checked here before it is appended verbatim to the local journal.
    Raises :class:`~repro.core.errors.ReproError` on any violation.
    """
    try:
        record, problem = _parse_record(line)
    except ValueError as error:
        raise ReproError(f"unparsable journal line: {error}") from None
    if problem is not None:
        raise ReproError(f"journal line rejected: {problem}")
    return record


def append_journal_line(
    directory: str | Path,
    line: str,
    *,
    durability: DurabilityOptions | None = None,
) -> Path:
    """Append one raw journal line **verbatim**.

    The replication follower's write path: lines arrive as the primary's
    exact bytes and must land unchanged, so follower journals stay
    byte-identical prefixes of the primary's.  Callers validate first
    (:func:`parse_journal_record`) — this function only writes.
    """
    durability = durability or DEFAULT_DURABILITY
    journal = Path(directory) / JOURNAL_FILE
    _obs.inc("journal_bytes", len(line.encode("utf-8")) + 1)
    _fs.append_text(
        journal,
        line + "\n",
        flush=durability.flush_appends,
        fsync=durability.fsync_appends,
    )
    return journal


def write_journal_file(
    directory: str | Path,
    name: str,
    text: str,
    *,
    durability: DurabilityOptions | None = None,
) -> Path:
    """Atomically write one journal-directory file (header, snapshot)
    with the snapshot durability discipline.  Replication's counterpart to
    the internal snapshot writer, for content that arrives as text."""
    durability = durability or DEFAULT_DURABILITY
    path = Path(directory) / name
    _fs.write_text(path, text, fsync=durability.sync_snapshots)
    return path


def apply_journal_record(store: VersionedStore, record: dict) -> StoreRevision:
    """Replay one parsed journal record onto ``store``'s head.

    The follower's apply path: fold the record's ``(added, removed)`` into
    the current base with ``apply_delta`` and commit with the record's own
    tag/program/epoch.  Because commits are deterministic over the totally
    ordered journal, the revision this produces is exactly the one the
    primary committed — commit listeners (subscriptions) fire as if the
    commit were local.
    """
    added = frozenset(_fact_from_json(e) for e in record["added"])
    removed = frozenset(_fact_from_json(e) for e in record["removed"])
    new_base = store.current.apply_delta(added, removed).freeze()
    store.epoch = max(store.epoch, record.get("epoch", 0))
    return store.commit_update(
        new_base, tag=record["tag"], program_name=record.get("program")
    )


def _last_journal_index(journal: Path) -> int:
    """Index recorded on the journal's last revision line (-1 for a
    header-only journal)."""
    last_line = None
    with journal.open("r", encoding="utf-8") as handle:
        next(handle)  # header
        for line in handle:
            if line.strip():
                last_line = line
    if last_line is None:
        return -1
    try:
        return json.loads(last_line)["index"]
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise ReproError(
            f"journal {journal} ends in a torn line ({error}); load the "
            f"store first to recover it, then retry the append"
        ) from None


def _journal_lines(journal: Path) -> list[tuple[int, int, str]]:
    """``(line_number, byte_offset, text)`` for every line of the journal.

    Decoding is per-line with replacement, so a corrupt (non-UTF-8) line
    still gets reported with its exact byte offset instead of aborting the
    whole read.
    """
    data = journal.read_bytes()
    out: list[tuple[int, int, str]] = []
    offset = 0
    for number, raw in enumerate(data.split(b"\n"), start=1):
        out.append((number, offset, raw.decode("utf-8", errors="replace")))
        offset += len(raw) + 1
    # a trailing newline yields one empty phantom line; drop it
    if out and not out[-1][2]:
        out.pop()
    return out


class JournalCorruptError(ReproError):
    """A journal record that cannot be trusted: unparsable, checksum
    mismatch, or chain-order violation.  Carries the 1-based line number
    and the byte offset of the offending line so operators can inspect
    (``dd``, an editor) and surgically repair."""

    def __init__(self, journal: Path, line: int, offset: int, reason: str):
        super().__init__(
            f"journal {journal} is corrupt at line {line} "
            f"(byte offset {offset}): {reason}"
        )
        self.journal = str(journal)
        self.line = line
        self.offset = offset
        self.reason = reason


def _parse_record(line: str) -> tuple[dict, str | None]:
    """Parse one journal line; returns ``(record, problem)`` where
    ``problem`` describes a checksum/shape violation (``None`` if clean).
    Raises ``ValueError`` when the line is not even JSON."""
    record = json.loads(line)
    if not isinstance(record, dict):
        return {}, "record is not a JSON object"
    for key in ("index", "tag", "added", "removed"):
        if key not in record:
            return record, f"record is missing the {key!r} field"
    epoch = record.get("epoch", 0)
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
        return record, f"epoch {epoch!r} is not a non-negative integer"
    crc = record.get("crc")
    if crc is not None and crc != _record_crc(record):
        return record, f"checksum mismatch (stored {crc}, computed {_record_crc(record)})"
    return record, None


def load_store(
    directory: str | Path,
    *,
    engine=None,
    options: StoreOptions | None = None,
    repair: bool = False,
) -> VersionedStore:
    """Reconstruct a :class:`VersionedStore` from a journal directory.

    ``options`` overrides the journalled store options (e.g. to continue a
    full-copy journal as a delta chain); by default the journalled ones are
    used.

    Two kinds of *tail* crash residue are always recovered **in memory**,
    loading the store at the last durable revision:

    * a torn or checksum-failing final line — an ``append_revision``
      interrupted mid-write; the revision never became durable;
    * an exact duplicate of the preceding line — an append that was
      retried after a crash that hid its acknowledgement.

    With ``repair=True`` the journal file is additionally rewritten back
    to its last-good content (via a temp file + atomic rename) so future
    appends line up again; writers (the serving subsystem's startup,
    ``store apply``) pass it, read-only paths (``store log``) must not,
    since rewriting the file from a reader could race a live appender.

    Corruption *before* the final line is never repaired automatically:
    it raises :class:`JournalCorruptError` carrying the line number and
    byte offset.
    """
    directory = Path(directory)
    journal = directory / JOURNAL_FILE
    if not journal.exists():
        raise ReproError(f"no journal at {journal}")
    lines = _journal_lines(journal)
    if not lines:
        raise ReproError(f"journal {journal} is empty")
    try:
        header = json.loads(lines[0][2])
    except json.JSONDecodeError as error:
        raise ReproError(f"journal {journal} has a corrupt header: {error}") from None
    if header.get("format") != _JOURNAL_FORMAT:
        raise ReproError(f"{journal} is not a repro store journal")
    if options is None:
        options = StoreOptions(**header.get("options", {}))

    body = [
        (number, offset, line)
        for number, offset, line in lines[1:]
        if line.strip()
    ]
    revisions: list[StoreRevision] = []
    snapshot_sources: dict[int, object] = {}
    good_lines = [lines[0][2]]
    dirty = False  # journal bytes differ from the recovered chain
    for position, (number, offset, line) in enumerate(body):
        is_tail = position == len(body) - 1
        if good_lines[1:] and line == good_lines[-1]:
            # Exact duplicate of the previous record: the crash residue of
            # a retried append whose first write survived.  The revision is
            # already in the chain; drop the echo.
            dirty = True
            continue
        try:
            record, problem = _parse_record(line)
        except ValueError as error:
            record, problem = {}, str(error)
        if problem is None:
            index = record["index"]
            expected = revisions[-1].index + 1 if revisions else None
            if expected is not None and index != expected:
                problem = f"revision index {index} breaks the chain (expected {expected})"
        if problem is None and revisions:
            epoch = record.get("epoch", 0)
            if epoch < revisions[-1].epoch:
                # A line stamped with an older fencing epoch than its
                # predecessor can only come from a fenced-off zombie
                # primary; never adopt it into the chain.
                problem = (
                    f"epoch {epoch} regresses below {revisions[-1].epoch} "
                    f"(write from a fenced primary?)"
                )
        if problem is not None:
            if is_tail and revisions:
                # A torn/garbled final line is the expected crash residue of
                # an interrupted ``append_revision``: the revision never
                # became durable.  Drop it so the store loads at the last
                # durable revision; only a declared writer rewrites the file.
                dirty = True
                break
            raise JournalCorruptError(journal, number, offset, problem)
        try:
            index = record["index"]
            added = frozenset(_fact_from_json(e) for e in record["added"])
            removed = frozenset(_fact_from_json(e) for e in record["removed"])
            tag = record["tag"]
        except (KeyError, TypeError) as error:
            if is_tail and revisions:
                dirty = True
                break
            raise JournalCorruptError(
                journal, number, offset, f"malformed fact payload ({error})"
            ) from None
        if record.get("snapshot"):
            # deferred: parsed only when base_at/save actually needs it,
            # so log/append-style work never reads cold snapshots
            path = directory / record["snapshot"]
            snapshot_sources[index] = lambda path=path: _load_snapshot(path)
        revisions.append(
            StoreRevision(
                index,
                tag,
                record.get("program"),
                added,
                removed,
                None,
                None,
                record.get("epoch", 0),
            )
        )
        good_lines.append(line)
    if dirty and repair:
        # Rewrite via a temp file + atomic rename, so a crash mid-repair
        # cannot destroy the durable history the repair is protecting.
        _fs.write_text(journal, "\n".join(good_lines) + "\n")
    return VersionedStore.from_revisions(
        revisions,
        engine=engine,
        options=options,
        snapshot_sources=snapshot_sources,
    )


def _load_snapshot(path: Path) -> ObjectBase:
    """Load a journal snapshot file, failing with a store-level message
    (instead of a decoder traceback) when it is missing or unreadable."""
    if not path.exists():
        raise ReproError(
            f"journal snapshot {path} is missing; the journal directory was "
            f"modified outside the store tooling"
        )
    try:
        return load_base_json(path)
    except (json.JSONDecodeError, TermError, KeyError) as error:
        raise ReproError(f"journal snapshot {path} is corrupt: {error}") from None


def verify_journal(directory: str | Path) -> dict:
    """Audit a journal without replaying it.

    Walks every line once, checking JSON shape, the per-line CRC (lines
    written before checksums existed are counted, not failed), revision
    chain order, monotonic fencing-epoch order (an epoch that drops below
    its predecessor — the signature of a fenced zombie primary's write, or
    of a botched compaction losing epoch stamps — flags the first
    out-of-order line), and that every referenced snapshot file exists.
    Returns a report::

        {"ok": bool, "revisions": int, "checksummed": int,
         "unchecksummed": int, "snapshots": int, "max_epoch": int,
         "problems": [{"line": int, "offset": int, "error": str}, ...],
         "missing_snapshots": [name, ...]}

    No facts are interned and no snapshots are parsed, so verification is
    cheap even on journals too large to load comfortably.
    """
    directory = Path(directory)
    journal = directory / JOURNAL_FILE
    if not journal.exists():
        raise ReproError(f"no journal at {journal}")
    lines = _journal_lines(journal)
    report = {
        "ok": True,
        "revisions": 0,
        "checksummed": 0,
        "unchecksummed": 0,
        "snapshots": 0,
        "max_epoch": 0,
        "problems": [],
        "missing_snapshots": [],
    }

    def flag(number: int, offset: int, error: str) -> None:
        report["ok"] = False
        report["problems"].append({"line": number, "offset": offset, "error": error})

    if not lines:
        flag(1, 0, "journal is empty")
        return report
    try:
        header = json.loads(lines[0][2])
        if header.get("format") != _JOURNAL_FORMAT:
            flag(lines[0][0], lines[0][1], "not a repro store journal header")
    except json.JSONDecodeError as error:
        flag(lines[0][0], lines[0][1], f"corrupt header: {error}")
    expected_index = None
    previous_line = None
    for number, offset, line in lines[1:]:
        if not line.strip():
            continue
        if previous_line is not None and line == previous_line:
            flag(number, offset, "exact duplicate of the previous record")
            continue
        previous_line = line
        try:
            record, problem = _parse_record(line)
        except ValueError as error:
            flag(number, offset, f"unparsable record: {error}")
            continue
        if problem is not None:
            flag(number, offset, problem)
            continue
        report["revisions"] += 1
        if record.get("crc") is not None:
            report["checksummed"] += 1
        else:
            report["unchecksummed"] += 1
        index = record["index"]
        if expected_index is not None and index != expected_index:
            flag(
                number,
                offset,
                f"revision index {index} breaks the chain (expected {expected_index})",
            )
        expected_index = index + 1
        epoch = record.get("epoch", 0)
        if epoch < report["max_epoch"]:
            flag(
                number,
                offset,
                f"epoch {epoch} is out of order (a previous line reached "
                f"epoch {report['max_epoch']})",
            )
        else:
            report["max_epoch"] = epoch
        snapshot = record.get("snapshot")
        if snapshot:
            report["snapshots"] += 1
            if not (directory / snapshot).exists():
                report["ok"] = False
                report["missing_snapshots"].append(snapshot)
    return report


def compact_journal(
    directory: str | Path,
    *,
    snapshot_interval: int | None = None,
    durability: DurabilityOptions | None = None,
) -> VersionedStore:
    """Rewrite a journal under a (possibly new) snapshot interval.

    Re-materializes snapshots at the new policy positions and drops the
    rest, so a journal grown with a dense interval (or a full-copy one)
    shrinks to the delta-chain layout.  Returns the compacted store (its
    journal is already on disk), so callers need not reload it.

    The rewrite inherits ``save_store``'s crash-safe ordering: new
    snapshots first, then an atomic journal replace, then stale-snapshot
    cleanup — a crash at any point leaves either the old journal with all
    its snapshots or the new journal with all of its.
    """
    compact_start = time.perf_counter()
    store = load_store(directory, repair=True)  # compaction rewrites anyway
    interval = snapshot_interval or store.options.snapshot_interval
    new_options = StoreOptions(
        delta_chain=True,
        snapshot_interval=interval,
        materialize_cache=store.options.materialize_cache,
    )
    revisions: list[StoreRevision] = []
    for revision in store.revisions():
        wants_snapshot = revision.index % interval == 0
        snapshot = None
        if wants_snapshot:
            snapshot = store.base_at(revision.index)
        revisions.append(
            StoreRevision(
                revision.index,
                revision.tag,
                revision.program_name,
                revision.added,
                revision.removed,
                snapshot,
                None,
                revision.epoch,
            )
        )
    compacted = VersionedStore.from_revisions(
        revisions, engine=store.engine, options=new_options
    )
    save_store(compacted, directory, durability=durability)
    _obs.observe(
        "journal_compaction_seconds", time.perf_counter() - compact_start
    )
    return compacted
