"""Serialization: object bases (text / JSON) and store journals (JSONL).

Text uses the :mod:`repro.lang` fact syntax (human-editable, diff-friendly);
JSON is a stable machine format that also round-trips derived versions
(VID-hosted facts), which the text loader's ``ensure_exists`` cannot
regenerate.

The **journal** is the durable form of a
:class:`~repro.storage.history.VersionedStore`: a directory holding

* ``journal.jsonl`` — a header line (format, store options) followed by one
  JSON line per revision carrying its tag, program name and ``(added,
  removed)`` fact delta, appendable without rewriting history;
* ``snap-<index>.json`` — full object-base snapshots (the
  :func:`dump_base_json` format) for the revisions the snapshot policy
  materialized.

``save_store`` / ``load_store`` round-trip a whole revision chain;
``append_revision`` extends a journal by the store's newest revision in
O(|delta|); ``compact_journal`` rewrites a journal under a fresh snapshot
interval.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.errors import ReproError, TermError
from repro.core.facts import Fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Term, UpdateKind, VersionId, intern_oid
from repro.lang.parser import parse_object_base
from repro.lang.pretty import format_object_base
from repro.storage.history import StoreOptions, StoreRevision, VersionedStore

__all__ = [
    "dump_base_text",
    "load_base_text",
    "dump_base_json",
    "load_base_json",
    "JOURNAL_FILE",
    "save_store",
    "load_store",
    "append_revision",
    "compact_journal",
]

JOURNAL_FILE = "journal.jsonl"
_JOURNAL_FORMAT = "repro-store-journal"


def dump_base_text(base: ObjectBase, path: str | Path | None = None) -> str:
    """Serialize to concrete syntax; optionally write to ``path``."""
    text = format_object_base(base) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_base_text(source: str | Path, *, ensure_exists: bool = True) -> ObjectBase:
    """Parse a base from a text file path or from literal text."""
    path = Path(source) if isinstance(source, Path) else None
    if path is None and isinstance(source, str) and "\n" not in source:
        candidate = Path(source)
        if candidate.exists():
            path = candidate
    text = path.read_text(encoding="utf-8") if path else str(source)
    return parse_object_base(text, ensure_exists=ensure_exists)


def _term_to_json(term: Term):
    if isinstance(term, Oid):
        return {"oid": term.value}
    if isinstance(term, VersionId):
        return {"kind": term.kind.value, "base": _term_to_json(term.base)}
    raise TermError(f"cannot serialize non-ground term {term}")


def _term_from_json(data) -> Term:
    if "oid" in data:
        return intern_oid(data["oid"])
    return VersionId(UpdateKind.from_name(data["kind"]), _term_from_json(data["base"]))


def dump_base_json(base: ObjectBase, path: str | Path | None = None) -> str:
    """Serialize every fact (including ``exists`` and VID hosts) to JSON."""
    payload = {
        "format": "repro-object-base",
        "version": 1,
        "facts": [
            {
                "host": _term_to_json(fact.host),
                "method": fact.method,
                "args": [a.value for a in fact.args],
                "result": fact.result.value,
            }
            for fact in base.sorted_facts()
        ],
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_base_json(source: str | Path) -> ObjectBase:
    """Inverse of :func:`dump_base_json`."""
    path = Path(source) if isinstance(source, Path) else None
    if path is None and isinstance(source, str) and not source.lstrip().startswith("{"):
        path = Path(source)
    if path is not None and not path.exists():
        raise ReproError(f"no object-base JSON file at {path}")
    text = path.read_text(encoding="utf-8") if path else str(source)
    payload = json.loads(text)
    if payload.get("format") != "repro-object-base":
        raise TermError("not a repro object-base JSON document")
    base = ObjectBase()
    for entry in payload["facts"]:
        base.add(_fact_from_json(entry))
    return base


# ----------------------------------------------------------------------
# store journals
# ----------------------------------------------------------------------


def _fact_to_json(fact: Fact) -> dict:
    return {
        "host": _term_to_json(fact.host),
        "method": fact.method,
        "args": [a.value for a in fact.args],
        "result": fact.result.value,
    }


def _fact_from_json(entry: dict) -> Fact:
    return Fact(
        _term_from_json(entry["host"]),
        entry["method"],
        tuple(intern_oid(a) for a in entry["args"]),
        intern_oid(entry["result"]),
    )


def _snapshot_name(index: int) -> str:
    return f"snap-{index:06d}.json"


def _revision_line(revision: StoreRevision, has_snapshot: bool) -> str:
    record = {
        "index": revision.index,
        "tag": revision.tag,
        "program": revision.program_name,
        "added": [_fact_to_json(f) for f in sorted(revision.added, key=str)],
        "removed": [_fact_to_json(f) for f in sorted(revision.removed, key=str)],
        "snapshot": _snapshot_name(revision.index) if has_snapshot else None,
    }
    return json.dumps(record, sort_keys=True)


def save_store(store: VersionedStore, directory: str | Path) -> Path:
    """Write the whole revision chain of ``store`` to ``directory``.

    Returns the journal path.  Snapshot files are written exactly where the
    store's revisions carry snapshots; stale snapshot files from earlier
    saves are removed so the directory always mirrors one chain.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(
            {
                "format": _JOURNAL_FORMAT,
                "version": 1,
                "options": {
                    "delta_chain": store.options.delta_chain,
                    "snapshot_interval": store.options.snapshot_interval,
                },
            },
            sort_keys=True,
        )
    ]
    kept: set[str] = set()
    for revision in store.revisions():
        has_snapshot = store.has_snapshot(revision.index)
        lines.append(_revision_line(revision, has_snapshot))
        if has_snapshot:
            name = _snapshot_name(revision.index)
            kept.add(name)
            dump_base_json(store.snapshot_at(revision.index), directory / name)
    for stale in directory.glob("snap-*.json"):
        if stale.name not in kept:
            stale.unlink()
    journal = directory / JOURNAL_FILE
    journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return journal


def append_revision(store: VersionedStore, directory: str | Path) -> Path:
    """Append the store's newest revision to an existing journal.

    This is the fast path of ``repro store apply``: one JSONL line (plus a
    snapshot file when the policy materialized one) instead of rewriting
    the whole chain.  Before writing, the journal's last line is checked
    against the revision being appended, so a journal that moved under us
    (a concurrent ``store apply``) fails cleanly instead of silently
    forking the chain into an unreadable state.
    """
    directory = Path(directory)
    journal = directory / JOURNAL_FILE
    if not journal.exists():
        raise ReproError(f"no journal at {journal}")
    revision = store.head
    last = _last_journal_index(journal)
    if last != revision.index - 1:
        raise ReproError(
            f"journal at {journal} ends at revision {last}, cannot append "
            f"revision {revision.index}; it was modified since this store "
            f"loaded it (concurrent writer?) — reload and retry"
        )
    has_snapshot = store.has_snapshot(revision.index)
    if has_snapshot:
        dump_base_json(
            store.snapshot_at(revision.index),
            directory / _snapshot_name(revision.index),
        )
    with journal.open("a", encoding="utf-8") as handle:
        handle.write(_revision_line(revision, has_snapshot) + "\n")
    return journal


def _last_journal_index(journal: Path) -> int:
    """Index recorded on the journal's last revision line (-1 for a
    header-only journal)."""
    last_line = None
    with journal.open("r", encoding="utf-8") as handle:
        next(handle)  # header
        for line in handle:
            if line.strip():
                last_line = line
    if last_line is None:
        return -1
    try:
        return json.loads(last_line)["index"]
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise ReproError(
            f"journal {journal} ends in a torn line ({error}); load the "
            f"store first to recover it, then retry the append"
        ) from None


def load_store(
    directory: str | Path,
    *,
    engine=None,
    options: StoreOptions | None = None,
    repair: bool = False,
) -> VersionedStore:
    """Reconstruct a :class:`VersionedStore` from a journal directory.

    ``options`` overrides the journalled store options (e.g. to continue a
    full-copy journal as a delta chain); by default the journalled ones are
    used.

    A *torn tail line* — the crash residue of an interrupted
    ``append_revision`` — is always recovered **in memory**: the store
    loads at the last durable revision.  With ``repair=True`` the journal
    file is additionally truncated back to its last complete line so
    future appends line up again; writers (the serving subsystem's
    startup, ``store apply``) pass it, read-only paths (``store log``)
    must not, since rewriting the file from a reader could race a live
    appender.
    """
    directory = Path(directory)
    journal = directory / JOURNAL_FILE
    if not journal.exists():
        raise ReproError(f"no journal at {journal}")
    lines = journal.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ReproError(f"journal {journal} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ReproError(f"journal {journal} has a corrupt header: {error}") from None
    if header.get("format") != _JOURNAL_FORMAT:
        raise ReproError(f"{journal} is not a repro store journal")
    if options is None:
        options = StoreOptions(**header.get("options", {}))

    body = [
        (number, line)
        for number, line in enumerate(lines[1:], start=2)
        if line.strip()
    ]
    revisions: list[StoreRevision] = []
    snapshot_sources: dict[int, object] = {}
    good_lines = [lines[0]]
    for position, (number, line) in enumerate(body):
        try:
            record = json.loads(line)
            index = record["index"]
            added = frozenset(_fact_from_json(e) for e in record["added"])
            removed = frozenset(_fact_from_json(e) for e in record["removed"])
            tag = record["tag"]
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            if position == len(body) - 1 and revisions:
                # A torn final line is the expected crash residue of an
                # interrupted ``append_revision``: the revision never became
                # durable.  Drop it so the store loads at the last durable
                # revision; only a declared writer rewrites the file — via a
                # temp file + atomic rename, so a crash mid-repair cannot
                # destroy the durable history the repair is protecting.
                if repair:
                    replacement = journal.with_suffix(".repair")
                    replacement.write_text(
                        "\n".join(good_lines) + "\n", encoding="utf-8"
                    )
                    os.replace(replacement, journal)
                break
            raise ReproError(
                f"journal {journal} is corrupt at line {number}: {error}"
            ) from None
        if record.get("snapshot"):
            # deferred: parsed only when base_at/save actually needs it,
            # so log/append-style work never reads cold snapshots
            path = directory / record["snapshot"]
            snapshot_sources[index] = lambda path=path: _load_snapshot(path)
        revisions.append(
            StoreRevision(
                index,
                tag,
                record.get("program"),
                added,
                removed,
                None,
            )
        )
        good_lines.append(line)
    return VersionedStore.from_revisions(
        revisions,
        engine=engine,
        options=options,
        snapshot_sources=snapshot_sources,
    )


def _load_snapshot(path: Path) -> ObjectBase:
    """Load a journal snapshot file, failing with a store-level message
    (instead of a decoder traceback) when it is missing or unreadable."""
    if not path.exists():
        raise ReproError(
            f"journal snapshot {path} is missing; the journal directory was "
            f"modified outside the store tooling"
        )
    try:
        return load_base_json(path)
    except (json.JSONDecodeError, TermError, KeyError) as error:
        raise ReproError(f"journal snapshot {path} is corrupt: {error}") from None


def compact_journal(
    directory: str | Path, *, snapshot_interval: int | None = None
) -> VersionedStore:
    """Rewrite a journal under a (possibly new) snapshot interval.

    Re-materializes snapshots at the new policy positions and drops the
    rest, so a journal grown with a dense interval (or a full-copy one)
    shrinks to the delta-chain layout.  Returns the compacted store (its
    journal is already on disk), so callers need not reload it.
    """
    store = load_store(directory, repair=True)  # compaction rewrites anyway
    interval = snapshot_interval or store.options.snapshot_interval
    new_options = StoreOptions(
        delta_chain=True,
        snapshot_interval=interval,
        materialize_cache=store.options.materialize_cache,
    )
    revisions: list[StoreRevision] = []
    for revision in store.revisions():
        wants_snapshot = revision.index % interval == 0
        snapshot = None
        if wants_snapshot:
            snapshot = store.base_at(revision.index)
        revisions.append(
            StoreRevision(
                revision.index,
                revision.tag,
                revision.program_name,
                revision.added,
                revision.removed,
                snapshot,
            )
        )
    compacted = VersionedStore.from_revisions(
        revisions, engine=store.engine, options=new_options
    )
    save_store(compacted, directory)
    return compacted
