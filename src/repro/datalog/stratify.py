"""Predicate-level stratification for the Datalog substrate ([Ull88]).

The classic construction the paper adapts in Section 4: build the dependency
graph over predicates (an edge ``q -> p`` when ``q`` occurs in the body of a
rule defining ``p``; strict when the occurrence is negated); a program is
stratified iff no cycle passes through a strict edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.atoms import BuiltinAtom
from repro.core.errors import StratificationError
from repro.datalog.ast import DatalogProgram, DatalogRule

__all__ = ["DatalogStratification", "stratify_datalog"]

Key = tuple[str, int]


@dataclass(frozen=True)
class DatalogStratification:
    """Rules grouped by the stratum of their head predicate."""

    strata: tuple[tuple[DatalogRule, ...], ...]
    predicate_stratum: dict[Key, int]

    def __len__(self) -> int:
        return len(self.strata)

    def __iter__(self):
        return iter(self.strata)


def stratify_datalog(program: DatalogProgram) -> DatalogStratification:
    """Stratify by predicates; raise :class:`StratificationError` when a
    negative edge lies on a cycle."""
    graph = nx.DiGraph()
    idb = program.idb_predicates()
    for key in idb:
        graph.add_node(key)

    for rule in program:
        head = rule.head.key
        for literal in rule.body:
            if isinstance(literal.atom, BuiltinAtom):
                continue
            dep = literal.atom.key
            if dep not in idb:
                continue  # EDB predicates never move strata
            strict = not literal.positive
            if graph.has_edge(dep, head):
                graph[dep][head]["strict"] |= strict
            else:
                graph.add_edge(dep, head, strict=strict)

    condensation = nx.condensation(graph)
    component_of = condensation.graph["mapping"]
    for lower, upper, data in graph.edges(data=True):
        if data["strict"] and component_of[lower] == component_of[upper]:
            raise StratificationError(
                f"Datalog program is not stratified: predicate "
                f"{upper[0]}/{upper[1]} depends negatively on itself through "
                f"{lower[0]}/{lower[1]}"
            )

    strict_between: dict[tuple[int, int], bool] = {}
    for lower, upper, data in graph.edges(data=True):
        key = (component_of[lower], component_of[upper])
        strict_between[key] = strict_between.get(key, False) or data["strict"]

    level: dict[int, int] = {}
    for component in nx.topological_sort(condensation):
        best = 0
        for predecessor in condensation.predecessors(component):
            step = 1 if strict_between.get((predecessor, component), False) else 0
            best = max(best, level[predecessor] + step)
        level[component] = best

    predicate_stratum = {key: level[component_of[key]] for key in idb}
    max_level = max(predicate_stratum.values(), default=0)
    buckets: list[list[DatalogRule]] = [[] for _ in range(max_level + 1)]
    for rule in program:
        buckets[predicate_stratum[rule.head.key]].append(rule)
    strata = tuple(tuple(bucket) for bucket in buckets if bucket)

    # Renumber in case pruning empty buckets shifted indexes.
    renumbered: dict[Key, int] = {}
    for index, stratum in enumerate(strata):
        for rule in stratum:
            renumbered[rule.head.key] = index
    for key, old_level in predicate_stratum.items():
        renumbered.setdefault(key, old_level)
    return DatalogStratification(strata, renumbered)
