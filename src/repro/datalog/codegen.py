"""Plan compilation for the Datalog substrate.

The Datalog matcher shares the architecture of the update-language one — a
statically replayed literal ordering (``_compile_plan``) walked by a generic
interpreter — and it gets the same treatment here: each plannable body is
compiled once into a specialized batch function over slot rows (see
:mod:`repro.core.codegen` for the execution model; the expression and
built-in compilers are reused verbatim).

Scope: *full* matching only.  ``match_datalog_rule`` dispatches here when no
semi-naive delta restriction is in play, and
:class:`~repro.datalog.evaluation.PreparedDatalogQuery` runs its compiled
body on every memo miss.  The delta-bound recursive rounds keep the
interpreted walker: they substitute a different row source per (rule,
position) pair, and the delta is small by construction — the full-database
joins are where the time goes.

Like the interpreter, the compiled body performs **no** duplicate
elimination: two distinct rows always differ in some checked or bound
position, so the multiplicity of the interpreted matcher is preserved
exactly (``PreparedDatalogQuery`` dedups at the answer layer, as before).
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.core.atoms import BuiltinAtom
from repro.core.caches import register_lru_cache
from repro.core.codegen import (
    _builtin_filter,
    _compile_expr,
    _Emitter,
    _tuple_src,
    codegen_enabled,
)
from repro.core.exprs import expr_variables
from repro.core.terms import Oid, Var
from repro.datalog.ast import DatalogLiteral

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.database import Database

__all__ = ["CompiledDatalogBody", "compiled_datalog_body", "codegen_enabled"]

Binding = dict[Var, Oid]


class CompiledDatalogBody:
    """A compiled executor for one Datalog body (no deduplication)."""

    __slots__ = ("fn", "slots", "source")

    def __init__(self, fn, slots: tuple[Var, ...], source: str) -> None:
        self.fn = fn
        self.slots = slots
        self.source = source

    def bindings(self, database: "Database") -> list[Binding]:
        slots = self.slots
        return [dict(zip(slots, row)) for row in self.fn(database, [()])]


def _emit_predicate_filter(em, literal, slot_of) -> None:
    atom = literal.atom
    args = _tuple_src(
        [
            f"r[{slot_of[arg]}]" if isinstance(arg, Var) else em.const(arg)
            for arg in atom.args
        ]
    )
    fact = f"({em.const(atom.name, '_N')}, {args})"
    condition = f"has({fact})" if literal.positive else f"not has({fact})"
    em.emit(1, f"rows = [r for r in rows if {condition}]")


def _emit_generate(em, literal, slot_of) -> None:
    atom = literal.atom
    name = em.const(atom.name, "_N")
    arity = len(atom.args)

    # Probe selection mirrors evaluation._generate: the *first* argument
    # position carrying a constant or an already-bound variable wins.
    probe = f"rows_all({name}, {arity})"
    skip_col = None
    probe_row_dependent = False
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Oid):
            probe = f"rows_with({name}, {arity}, {position}, {em.const(arg)})"
            skip_col = position
            break
        if arg in slot_of:
            probe = (
                f"rows_with({name}, {arity}, {position}, r[{slot_of[arg]}])"
            )
            skip_col = position
            probe_row_dependent = True
            break

    def emit_checks(indent: int) -> tuple[dict[Var, str], bool]:
        new_locals: dict[Var, str] = {}
        row_dependent = False
        for position, arg in enumerate(atom.args):
            if position == skip_col:
                continue  # the probe column is exact
            access = f"_t[{position}]"
            if isinstance(arg, Var):
                if arg in new_locals:
                    em.emit(indent, f"if {access} != {new_locals[arg]}:")
                    em.emit(indent + 1, "continue")
                elif arg in slot_of:
                    em.emit(indent, f"if {access} != r[{slot_of[arg]}]:")
                    em.emit(indent + 1, "continue")
                    row_dependent = True
                else:
                    local = em.fresh("_v")
                    em.emit(indent, f"{local} = {access}")
                    new_locals[arg] = local
            else:
                em.emit(indent, f"if {access} != {em.const(arg)}:")
                em.emit(indent + 1, "continue")
        return new_locals, row_dependent

    if not probe_row_dependent:
        # Try the set-at-a-time form first (filter → extend).
        checkpoint = len(em.lines)
        ext = em.fresh("_ext")
        em.emit(1, f"{ext} = []")
        em.emit(1, f"ea = {ext}.append")
        em.emit(1, f"for _t in {probe}:")
        new_locals, row_dependent = emit_checks(2)
        if not row_dependent:
            em.emit(2, f"ea({_tuple_src(list(new_locals.values()))})")
            em.emit(1, f"if not {ext}:")
            em.emit(2, "return []")
            em.emit(1, f"rows = [r + e for r in rows for e in {ext}]")
            for var in new_locals:
                slot_of[var] = len(slot_of)
            return
        del em.lines[checkpoint:]

    em.emit(1, "out = []")
    em.emit(1, "app = out.append")
    em.emit(1, "for r in rows:")
    em.emit(2, f"for _t in {probe}:")
    new_locals, _ = emit_checks(3)
    em.emit(3, f"app(r + {_tuple_src(list(new_locals.values()))})")
    em.emit(1, "rows = out")
    em.emit(1, "if not rows:")
    em.emit(2, "return rows")
    for var in new_locals:
        slot_of[var] = len(slot_of)


@lru_cache(maxsize=4096)
def compiled_datalog_body(
    body: tuple[DatalogLiteral, ...]
) -> CompiledDatalogBody | None:
    """The compiled executor for ``body``; ``None`` for unplannable bodies
    (the interpreted dynamic chooser takes over, exactly as before)."""
    from repro.datalog.evaluation import _BINDER, _FILTER, _compile_plan

    plan = _compile_plan(body)
    if plan is None:
        return None
    em = _Emitter("<datalog>")
    slot_of: dict[Var, int] = {}
    em.emit(0, "def _run(database, rows):")
    em.emit(1, "if not rows:")
    em.emit(2, "return rows")
    em.emit(1, "rows_all = database.rows")
    em.emit(1, "rows_with = database.rows_with")
    em.emit(1, "has = database.__contains__")
    for _original_index, literal, action in plan:
        if action == _FILTER:
            if isinstance(literal.atom, BuiltinAtom):
                label = em.const(
                    _builtin_filter(literal.atom, literal.positive, slot_of),
                    "_B",
                )
                em.emit(1, f"rows = [r for r in rows if {label}(r)]")
            else:
                _emit_predicate_filter(em, literal, slot_of)
        elif action == _BINDER:
            atom = literal.atom
            target = source = None
            for candidate, other in (
                (atom.left, atom.right),
                (atom.right, atom.left),
            ):
                if (
                    isinstance(candidate, Var)
                    and candidate not in slot_of
                    and all(v in slot_of for v in expr_variables(other))
                ):
                    target, source = candidate, other
                    break
            assert target is not None
            label = em.const(_compile_expr(source, slot_of), "_E")
            em.emit(1, "out = []")
            em.emit(1, "app = out.append")
            em.emit(1, "for r in rows:")
            em.emit(2, "try:")
            em.emit(3, f"v = {label}(r)")
            em.emit(2, "except BuiltinError:")
            em.emit(3, "continue")
            em.emit(2, "app(r + (v,))")
            em.emit(1, "rows = out")
            slot_of[target] = len(slot_of)
        else:  # _GENERATE
            _emit_generate(em, literal, slot_of)
    em.emit(1, "return rows")
    fn, source_text = em.build("_run")
    slots = tuple(sorted(slot_of, key=slot_of.__getitem__))
    return CompiledDatalogBody(fn, slots, source_text)


register_lru_cache("datalog.codegen", compiled_datalog_body)
