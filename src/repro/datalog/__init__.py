"""A stratified Datalog engine — the substrate of the paper's language.

Section 2.1: "The language introduced so far can be considered as a variant
of stratified Datalog: methods correspond to predicates."  This subpackage
implements that substrate in full — negation, comparison/arithmetic
built-ins, stratification, naive and semi-naive bottom-up evaluation, plus
the *inflationary* mode the Logres baseline (Section 2.4) needs.

Terms are shared with :mod:`repro.core`: constants are
:class:`~repro.core.terms.Oid`, variables :class:`~repro.core.terms.Var`,
and built-ins reuse :class:`~repro.core.atoms.BuiltinAtom`.
"""

from repro.datalog.ast import DatalogProgram, DatalogRule, PredicateAtom, body_literal
from repro.datalog.database import Database
from repro.datalog.engine import DatalogEngine
from repro.datalog.evaluation import PreparedDatalogQuery
from repro.datalog.parser import (
    parse_datalog,
    parse_datalog_database,
    parse_datalog_program,
)
from repro.datalog.stratify import DatalogStratification, stratify_datalog

__all__ = [
    "PredicateAtom",
    "DatalogRule",
    "DatalogProgram",
    "body_literal",
    "Database",
    "DatalogEngine",
    "PreparedDatalogQuery",
    "DatalogStratification",
    "stratify_datalog",
    "parse_datalog",
    "parse_datalog_program",
    "parse_datalog_database",
]
