"""Facade for the Datalog substrate."""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import ProgramError
from repro.core.terms import Oid, Var
from repro.datalog.ast import DatalogProgram, PredicateAtom
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate_inflationary, evaluate_stratified

__all__ = ["DatalogEngine"]

_MODES = ("seminaive", "naive", "inflationary")


class DatalogEngine:
    """Run Datalog programs under a chosen evaluation mode.

    >>> engine = DatalogEngine()                      # doctest: +SKIP
    >>> result = engine.run(program, edb)             # doctest: +SKIP
    >>> engine.query(result, "path", ("a", None))     # doctest: +SKIP
    """

    def __init__(self, mode: str = "seminaive", max_iterations: int = 100_000):
        if mode not in _MODES:
            raise ProgramError(f"unknown mode {mode!r}; choose from {_MODES}")
        self.mode = mode
        self.max_iterations = max_iterations

    def run(self, program: DatalogProgram, edb: Database) -> Database:
        """Evaluate ``program`` over ``edb``; the EDB is not mutated."""
        if self.mode == "inflationary":
            return evaluate_inflationary(
                program, edb, max_iterations=self.max_iterations
            )
        return evaluate_stratified(
            program,
            edb,
            seminaive=(self.mode == "seminaive"),
            max_iterations=self.max_iterations,
        )

    @staticmethod
    def query(
        database: Database, predicate: str, pattern: Iterable
    ) -> list[tuple]:
        """Rows of ``predicate`` matching ``pattern`` — a sequence of plain
        values with ``None`` as wildcard.  Returns plain-value tuples,
        sorted for stable output."""
        pattern = tuple(pattern)
        answers = []
        for row in database.rows(predicate, len(pattern)):
            if all(
                wanted is None or Oid(wanted) == value
                for wanted, value in zip(pattern, row)
            ):
                answers.append(tuple(value.value for value in row))
        return sorted(answers, key=lambda row: tuple(str(v) for v in row))

    @staticmethod
    def atom(predicate: str, *args) -> PredicateAtom:
        """Convenience atom builder: strings starting upper-case become
        variables, everything else constants.

        >>> DatalogEngine.atom("edge", "X", "Y")
        edge(X, Y) — with X, Y as variables
        """
        terms = []
        for arg in args:
            if isinstance(arg, (Oid, Var)):
                terms.append(arg)
            elif isinstance(arg, str) and arg and (arg[0].isupper() or arg[0] == "_"):
                terms.append(Var(arg))
            else:
                terms.append(Oid(arg))
        return PredicateAtom(predicate, tuple(terms))
