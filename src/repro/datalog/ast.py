"""AST of the Datalog substrate: predicate atoms, rules, programs.

Flat first-order Datalog with negation and built-ins.  Constants and
variables reuse the core term model (:class:`~repro.core.terms.Oid`,
:class:`~repro.core.terms.Var`); comparisons reuse
:class:`~repro.core.atoms.BuiltinAtom`, so ``S2 = S * 1.1`` works here just
as in update-rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.core.atoms import BuiltinAtom
from repro.core.errors import ProgramError, SafetyError, TermError
from repro.core.exprs import expr_variables
from repro.core.terms import Oid, Var
from repro.unify.substitution import resolve

__all__ = [
    "PredicateAtom",
    "DatalogLiteral",
    "DatalogRule",
    "DatalogProgram",
    "body_literal",
]

#: Datalog terms are flat: constants or variables.
DlTerm = Union[Oid, Var]


@dataclass(frozen=True, slots=True)
class PredicateAtom:
    """``name(arg1, ..., argk)`` with flat arguments."""

    name: str
    args: tuple[DlTerm, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise TermError("predicate name must be non-empty")
        for arg in self.args:
            if not isinstance(arg, (Oid, Var)):
                raise TermError(
                    f"Datalog arguments are flat terms, got {arg!r}"
                )

    @property
    def key(self) -> tuple[str, int]:
        """Index key ``(name, arity)`` — Datalog's predicate identity."""
        return (self.name, len(self.args))

    @property
    def variables(self) -> frozenset[Var]:
        return frozenset(a for a in self.args if isinstance(a, Var))

    def is_ground(self) -> bool:
        return all(isinstance(a, Oid) for a in self.args)

    def substitute(self, binding) -> "PredicateAtom":
        return PredicateAtom(
            self.name,
            tuple(
                resolve(a, binding) if isinstance(a, Var) else a for a in self.args
            ),
        )

    def to_tuple(self) -> tuple[Oid, ...]:
        if not self.is_ground():
            raise TermError(f"atom {self} is not ground")
        return self.args  # type: ignore[return-value]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class DatalogLiteral:
    """A positive or negated body element: predicate atom or built-in."""

    atom: Union[PredicateAtom, BuiltinAtom]
    positive: bool = True

    @property
    def variables(self) -> frozenset[Var]:
        if isinstance(self.atom, PredicateAtom):
            return self.atom.variables
        return self.atom.variables

    def substitute(self, binding) -> "DatalogLiteral":
        return DatalogLiteral(self.atom.substitute(binding), self.positive)

    def __str__(self) -> str:
        text = str(self.atom)
        return text if self.positive else f"not {text}"


def body_literal(atom, positive: bool = True) -> DatalogLiteral:
    """Convenience constructor used by programmatic rule builders."""
    return DatalogLiteral(atom, positive)


@dataclass(frozen=True)
class DatalogRule:
    """``head :- body.`` — a safe Datalog rule.

    Safety mirrors :mod:`repro.core.safety`: every variable must occur in a
    positive predicate atom or be bound through ``=`` chains.
    """

    head: PredicateAtom
    body: tuple[DatalogLiteral, ...] = ()
    name: str = ""

    @property
    def variables(self) -> frozenset[Var]:
        names = set(self.head.variables)
        for literal in self.body:
            names |= literal.variables
        return frozenset(names)

    def check_safety(self) -> None:
        limited: set[Var] = set()
        equalities: list[BuiltinAtom] = []
        for literal in self.body:
            if not literal.positive:
                continue
            if isinstance(literal.atom, PredicateAtom):
                limited |= literal.atom.variables
            elif literal.atom.op == "=":
                equalities.append(literal.atom)
        changed = True
        while changed:
            changed = False
            for eq in equalities:
                for target, source in ((eq.left, eq.right), (eq.right, eq.left)):
                    if (
                        isinstance(target, Var)
                        and target not in limited
                        and expr_variables(source) <= limited
                    ):
                        limited.add(target)
                        changed = True
        unlimited = self.variables - limited
        if unlimited:
            raise SafetyError(
                self.name or str(self), tuple(sorted(v.name for v in unlimited))
            )

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(b) for b in self.body)}."


class DatalogProgram:
    """An ordered set of rules with unique names (order is display-only)."""

    def __init__(self, rules: Iterable[DatalogRule], name: str = "datalog"):
        self.name = name
        named: list[DatalogRule] = []
        seen: set[str] = set()
        for index, rule in enumerate(rules, start=1):
            rule_name = rule.name or f"r{index}"
            if rule_name in seen:
                raise ProgramError(f"duplicate rule name {rule_name!r}")
            seen.add(rule_name)
            if rule.name != rule_name:
                rule = DatalogRule(rule.head, rule.body, rule_name)
            named.append(rule)
        self.rules: tuple[DatalogRule, ...] = tuple(named)

    def __iter__(self) -> Iterator[DatalogRule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def check_safety(self) -> None:
        for rule in self.rules:
            rule.check_safety()

    def idb_predicates(self) -> frozenset[tuple[str, int]]:
        """Predicates defined by some rule head."""
        return frozenset(rule.head.key for rule in self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
