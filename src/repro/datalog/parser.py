"""Concrete syntax for the Datalog substrate.

Classic notation, sharing the update language's lexer::

    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    big(X)     :- num(X), X > 3.
    double(X, D) :- num(X), D = X * 2.

Facts are bodyless rules with constant arguments: ``edge(a, b).``
``parse_datalog`` splits them from the proper rules, so one file can carry
program and EDB together.
"""

from __future__ import annotations

from repro.core.atoms import BuiltinAtom
from repro.core.terms import Oid, Var
from repro.datalog.ast import DatalogLiteral, DatalogProgram, DatalogRule, PredicateAtom
from repro.datalog.database import Database
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize

__all__ = ["parse_datalog", "parse_datalog_program", "parse_datalog_database"]

_COMPARISONS = {"EQ": "=", "NE": "!=", "LT": "<", "GT": ">", "LE": "<=", "GE": ">="}


class _DlParser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type != "EOF":
            self.position += 1
        return token

    def expect(self, token_type: str, context: str) -> Token:
        token = self.peek()
        if token.type != token_type:
            raise ParseError(
                f"expected {context}, found {token.describe()}",
                token.line,
                token.column,
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.peek().type == "EOF"

    # -- terms and expressions -------------------------------------------
    def parse_term(self):
        token = self.advance()
        if token.type == "IDENT":
            if token.value[0].isupper() or token.value[0] == "_":
                return Var(token.value)
            return Oid(token.value)
        if token.type == "STRING":
            return Oid(token.value)
        if token.type == "NUMBER":
            return Oid(float(token.value) if "." in token.value else int(token.value))
        if token.type == "MINUS" and self.peek().type == "NUMBER":
            number = self.advance()
            value = float(number.value) if "." in number.value else int(number.value)
            return Oid(-value)
        raise ParseError(
            f"expected a term, found {token.describe()}", token.line, token.column
        )

    def parse_expr(self):
        from repro.core.exprs import BinOp, Neg

        def factor():
            token = self.peek()
            if token.type == "LPAREN":
                self.advance()
                inner = self.parse_expr()
                self.expect("RPAREN", "')'")
                return inner
            if token.type == "MINUS":
                self.advance()
                return Neg(factor())
            return self.parse_term()

        def term():
            left = factor()
            while self.peek().type in ("STAR", "SLASH"):
                op = self.advance()
                left = BinOp("*" if op.type == "STAR" else "/", left, factor())
            return left

        left = term()
        while self.peek().type in ("PLUS", "MINUS"):
            op = self.advance()
            left = BinOp("+" if op.type == "PLUS" else "-", left, term())
        return left

    # -- atoms -------------------------------------------------------------
    def parse_predicate_atom(self) -> PredicateAtom:
        name = self.expect("IDENT", "a predicate name")
        self.expect("LPAREN", "'(' after the predicate name")
        args = []
        if self.peek().type != "RPAREN":
            args.append(self.parse_term())
            while self.peek().type == "COMMA":
                self.advance()
                args.append(self.parse_term())
        self.expect("RPAREN", "')' closing the argument list")
        return PredicateAtom(name.value, tuple(args))

    def parse_literal(self) -> DatalogLiteral:
        positive = True
        token = self.peek()
        if token.type == "TILDE":
            self.advance()
            positive = False
        elif token.type == "IDENT" and token.value == "not" and self.peek(1).type in (
            "IDENT", "NUMBER", "STRING", "LPAREN", "MINUS",
        ):
            self.advance()
            positive = False

        if self.peek().type == "IDENT" and self.peek(1).type == "LPAREN":
            return DatalogLiteral(self.parse_predicate_atom(), positive)

        left = self.parse_expr()
        op = self.advance()
        if op.type == "IMPLIES" and op.value == "<=":
            raise ParseError(
                "'<=' is the rule arrow; write '=<' for less-or-equal",
                op.line,
                op.column,
            )
        if op.type not in _COMPARISONS:
            raise ParseError(
                f"expected a comparison, found {op.describe()}", op.line, op.column
            )
        right = self.parse_expr()
        return DatalogLiteral(BuiltinAtom(_COMPARISONS[op.type], left, right), positive)

    # -- rules -------------------------------------------------------------
    def parse_clause(self) -> DatalogRule:
        name = ""
        if (
            self.peek().type == "IDENT"
            and self.peek(1).type == "COLON"
        ):
            name = self.advance().value
            self.advance()
        head = self.parse_predicate_atom()
        body: list[DatalogLiteral] = []
        if self.peek().type == "IMPLIES":
            self.advance()
            body.append(self.parse_literal())
            while self.peek().type == "COMMA":
                self.advance()
                body.append(self.parse_literal())
        self.expect("DOT", "'.' terminating the clause")
        return DatalogRule(head, tuple(body), name)


def parse_datalog(text: str, name: str = "datalog") -> tuple[DatalogProgram, Database]:
    """Parse a mixed file: bodyless ground clauses become EDB facts, the
    rest the program."""
    parser = _DlParser(text)
    rules: list[DatalogRule] = []
    database = Database()
    while not parser.at_end():
        clause = parser.parse_clause()
        if not clause.body and clause.head.is_ground():
            database.add(clause.head.name, clause.head.to_tuple())
        else:
            rules.append(clause)
    return DatalogProgram(rules, name), database


def parse_datalog_program(text: str, name: str = "datalog") -> DatalogProgram:
    """Parse rules only; ground facts in the text are an error."""
    program, database = parse_datalog(text, name)
    if len(database):
        raise ParseError(
            "ground facts found; use parse_datalog() for mixed files", 1, 1
        )
    return program


def parse_datalog_database(text: str) -> Database:
    """Parse facts only; rules in the text are an error."""
    program, database = parse_datalog(text)
    if len(program):
        raise ParseError(
            "rules found; use parse_datalog() for mixed files", 1, 1
        )
    return database
