"""Bottom-up evaluation for the Datalog substrate.

Three modes:

* **naive** — recompute every rule against the full database each round;
* **semi-naive** — the standard delta optimisation: a recursive rule only
  re-fires with at least one body atom bound to the facts new in the last
  round (benchmarked against naive in experiment E12);
* **inflationary** — the fixpoint semantics of [AV91] used by Logres-style
  modules: all rules fire simultaneously against the current database,
  negation included, facts only accumulate.

Both stratified modes evaluate stratum by stratum, so negation only ever
reads fully computed predicates.

Like the update engine's matcher (:mod:`repro.core.grounding`), the join
search orders literals dynamically — and those ordering decisions depend
only on which variables are bound, so they are precompiled once per rule
body into a static plan and replayed (``_compile_plan``); the dynamic
chooser remains as the fallback for unsafe bodies.  The semi-naive loop
additionally consults a delta dependency check: a ``(rule, recursive
position)`` pair only re-fires when the delta actually holds rows for that
position's predicate.
"""

from __future__ import annotations

import weakref
from functools import lru_cache
from typing import Iterator, Sequence

from repro.core.atoms import BuiltinAtom
from repro.core.caches import register_lru_cache
from repro.core.errors import BuiltinError, EvaluationError, EvaluationLimitError
from repro.core.exprs import evaluate_expr, expr_variables
from repro.core.terms import Oid, Var
from repro.core.truth import builtin_atom_true
from repro.datalog.ast import DatalogLiteral, DatalogProgram, DatalogRule, PredicateAtom
from repro.datalog.database import Database, Row
from repro.datalog.stratify import stratify_datalog

__all__ = [
    "match_datalog_rule",
    "PreparedDatalogQuery",
    "evaluate_stratified",
    "evaluate_inflationary",
]

Binding = dict[Var, Oid]


# ----------------------------------------------------------------------
# rule matching (join)
# ----------------------------------------------------------------------

#: Plan step actions (mirrors repro.core.plans).
_FILTER, _BINDER, _GENERATE = 0, 1, 2

#: A plan step: (original body position, literal, action).
_PlanStep = tuple[int, DatalogLiteral, int]


@lru_cache(maxsize=4096)
def _compile_plan(body: tuple[DatalogLiteral, ...]) -> tuple[_PlanStep, ...] | None:
    """Statically replay ``_choose`` (its decisions depend only on the set
    of bound variables); ``None`` for unsafe bodies (dynamic fallback)."""
    remaining = list(enumerate(body))
    bound: set[Var] = set()
    steps: list[_PlanStep] = []
    while remaining:
        chosen: tuple[int, int] | None = None  # (position in remaining, action)
        best_score = -1
        for position, (_, literal) in enumerate(remaining):
            if literal.variables <= bound:
                chosen = (position, _FILTER)
                break
            atom = literal.atom
            if isinstance(atom, BuiltinAtom):
                if (
                    literal.positive
                    and atom.op == "="
                    and _equality_target(atom, bound) is not None
                ):
                    chosen = (position, _BINDER)
                    break
                continue
            if not literal.positive:
                continue
            score = sum(1 for v in atom.variables if v in bound)
            if score > best_score:
                best_score = score
                chosen = (position, _GENERATE)
        if chosen is None:
            return None
        position, action = chosen
        original_index, literal = remaining.pop(position)
        steps.append((original_index, literal, action))
        if action == _BINDER:
            bound.add(_equality_target(literal.atom, bound))
        else:
            bound |= literal.variables
    return tuple(steps)


register_lru_cache("datalog.compile_plan", _compile_plan)


def _equality_target(atom: BuiltinAtom, bound: set[Var]) -> Var | None:
    for target, source in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            isinstance(target, Var)
            and target not in bound
            and all(v in bound for v in expr_variables(source))
        ):
            return target
    return None


def match_datalog_rule(
    rule: DatalogRule,
    database: Database,
    *,
    delta: Database | None = None,
    delta_literal: int | None = None,
) -> Iterator[Binding]:
    """All substitutions satisfying the body of ``rule``.

    When ``delta_literal`` names a body position, that (positive predicate)
    literal draws its candidate rows from ``delta`` instead of the full
    database — the semi-naive restriction.
    """
    plan = _compile_plan(rule.body)
    if plan is None:
        literals = list(enumerate(rule.body))
        yield from _search(literals, {}, database, delta, delta_literal)
        return
    if delta_literal is None:
        # Full (unrestricted) matching takes the codegen'd executor when
        # available; the delta-bound recursive rounds keep this interpreted
        # walker (they swap the row source per position, and the delta is
        # small by construction).
        from repro.datalog.codegen import codegen_enabled, compiled_datalog_body

        if codegen_enabled():
            compiled = compiled_datalog_body(rule.body)
            if compiled is not None:
                yield from compiled.bindings(database)
                return
    yield from _search_planned(plan, 0, {}, database, delta, delta_literal)


def _search_planned(
    steps: tuple[_PlanStep, ...],
    index: int,
    binding: Binding,
    database: Database,
    delta: Database | None,
    delta_literal: int | None,
) -> Iterator[Binding]:
    n = len(steps)
    while index < n:
        original_index, literal, action = steps[index]
        if action == _FILTER:
            if not _check(literal, binding, database):
                return
            index += 1
        elif action == _BINDER:
            extension = _bind_equality(literal.atom, binding)
            if extension is None:
                return
            binding = extension
            index += 1
        else:  # _GENERATE
            source = (
                delta
                if original_index == delta_literal and delta is not None
                else database
            )
            index += 1
            for extension in _generate(literal.atom, binding, source):
                yield from _search_planned(
                    steps, index, extension, database, delta, delta_literal
                )
            return
    yield binding


class PreparedDatalogQuery:
    """A conjunctive Datalog query compiled once, memoized per database.

    The body's join plan comes from the shared ``_compile_plan`` cache; the
    dependency set is the ``(predicate, arity)`` keys the body reads (either
    polarity).  ``run`` stamps each memo with the database's per-predicate
    version counters (:meth:`~repro.datalog.database.Database.version_stamp`)
    — an unchanged stamp serves the cached answers, any change to a
    dependency re-executes.  Memos are held per database via weak
    references, so a prepared query can serve many databases without
    keeping any of them alive.
    """

    __slots__ = ("body", "name", "dependencies", "hits", "misses", "_memos")

    def __init__(
        self, body: Sequence[DatalogLiteral], *, name: str = "<prepared>"
    ) -> None:
        self.body = tuple(body)
        self.name = name
        self.dependencies = tuple(
            sorted(
                {
                    literal.atom.key
                    for literal in self.body
                    if isinstance(literal.atom, PredicateAtom)
                }
            )
        )
        _compile_plan(self.body)  # compile once, up front
        self.hits = 0
        self.misses = 0
        # id(db) -> (weakref to db, stamp, answers).  Databases are
        # value-equal and therefore unhashable, so the memo keys them by
        # identity; the weakref both guards against id reuse and evicts the
        # entry when the database is collected.
        self._memos: dict[int, tuple] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedDatalogQuery({self.name!r}, {len(self.body)} literals)"

    def bindings(self, database: Database) -> Iterator[Binding]:
        """All satisfying substitutions (unmemoized, possibly duplicated)."""
        plan = _compile_plan(self.body)
        if plan is None:
            yield from _search(list(enumerate(self.body)), {}, database, None, None)
            return
        from repro.datalog.codegen import codegen_enabled, compiled_datalog_body

        if codegen_enabled():
            compiled = compiled_datalog_body(self.body)
            if compiled is not None:
                yield from compiled.bindings(database)
                return
        yield from _search_planned(plan, 0, {}, database, None, None)

    def run(self, database: Database) -> list[dict[str, object]]:
        """Deduplicated, deterministically sorted answers, memoized.

        The returned list is the live memo entry — treat it as read-only
        (mutating it would corrupt every later cache hit).
        """
        stamp = database.version_stamp(self.dependencies)
        key = id(database)
        memo = self._memos.get(key)
        if memo is not None and memo[0]() is database and memo[1] == stamp:
            self.hits += 1
            return memo[2]
        from repro.core.query import sorted_answers

        answers = sorted_answers(self.bindings(database), dedupe=True)
        reference = weakref.ref(
            database, lambda _ref, memos=self._memos, key=key: memos.pop(key, None)
        )
        self._memos[key] = (reference, stamp, answers)
        self.misses += 1
        return answers

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memoized_databases": len(self._memos),
        }


def _search(
    remaining: list[tuple[int, DatalogLiteral]],
    binding: Binding,
    database: Database,
    delta: Database | None,
    delta_literal: int | None,
) -> Iterator[Binding]:
    if not remaining:
        yield binding
        return

    choice = _choose(remaining, binding)
    if choice is None:
        raise EvaluationError(
            "no literal evaluable under the current binding; unsafe rule"
        )
    position, (original_index, literal) = choice
    rest = remaining[:position] + remaining[position + 1 :]

    if all(v in binding for v in literal.variables):
        if _check(literal, binding, database):
            yield from _search(rest, binding, database, delta, delta_literal)
        return

    atom = literal.atom
    if isinstance(atom, BuiltinAtom):
        extension = _bind_equality(atom, binding)
        if extension is not None:
            yield from _search(rest, extension, database, delta, delta_literal)
        return

    source = delta if original_index == delta_literal and delta is not None else database
    for extension in _generate(atom, binding, source):
        yield from _search(rest, extension, database, delta, delta_literal)


def _choose(
    remaining: list[tuple[int, DatalogLiteral]], binding: Binding
) -> tuple[int, tuple[int, DatalogLiteral]] | None:
    best = None
    best_score = -1
    for position, entry in enumerate(remaining):
        _, literal = entry
        if all(v in binding for v in literal.variables):
            return position, entry
        atom = literal.atom
        if isinstance(atom, BuiltinAtom):
            if literal.positive and atom.op == "=" and _equality_ready(atom, binding):
                return position, entry
            continue
        if not literal.positive:
            continue
        score = sum(1 for v in atom.variables if v in binding)
        if score > best_score:
            best_score = score
            best = (position, entry)
    return best


def _equality_ready(atom: BuiltinAtom, binding: Binding) -> bool:
    for target, source in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            isinstance(target, Var)
            and target not in binding
            and all(v in binding for v in expr_variables(source))
        ):
            return True
    return False


def _bind_equality(atom: BuiltinAtom, binding: Binding) -> Binding | None:
    for target, source in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            isinstance(target, Var)
            and target not in binding
            and all(v in binding for v in expr_variables(source))
        ):
            try:
                value = evaluate_expr(source, binding)
            except BuiltinError:
                return None
            extension = dict(binding)
            extension[target] = value
            return extension
    return None


def _check(literal: DatalogLiteral, binding: Binding, database: Database) -> bool:
    atom = literal.atom
    if isinstance(atom, BuiltinAtom):
        try:
            value = builtin_atom_true(atom.substitute(binding))
        except BuiltinError:
            return False
        return value if literal.positive else not value
    ground = atom.substitute(binding)
    present = (ground.name, ground.to_tuple()) in database
    return present if literal.positive else not present


def _generate(
    atom: PredicateAtom, binding: Binding, database: Database
) -> Iterator[Binding]:
    arity = len(atom.args)
    rows = None
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Oid):
            rows = database.rows_with(atom.name, arity, position, arg)
            break
        bound = binding.get(arg)
        if bound is not None:
            rows = database.rows_with(atom.name, arity, position, bound)
            break
    if rows is None:
        rows = database.rows(atom.name, arity)

    for row in rows:
        extension = _match_row(atom.args, row, binding)
        if extension is not None:
            yield extension


def _match_row(args: tuple, row: Row, binding: Binding) -> Binding | None:
    work: Binding | None = None
    for arg, value in zip(args, row):
        if isinstance(arg, Oid):
            if arg != value:
                return None
            continue
        current = (work or binding).get(arg)
        if current is None:
            if work is None:
                work = dict(binding)
            work[arg] = value
        elif current != value:
            return None
    return work if work is not None else dict(binding)


# ----------------------------------------------------------------------
# stratified evaluation (naive / semi-naive)
# ----------------------------------------------------------------------


def evaluate_stratified(
    program: DatalogProgram,
    edb: Database,
    *,
    seminaive: bool = True,
    max_iterations: int = 100_000,
) -> Database:
    """Stratum-wise fixpoint; returns a new database (EDB untouched)."""
    program.check_safety()
    stratification = stratify_datalog(program)
    database = edb.copy()

    for stratum_index, stratum in enumerate(stratification):
        if seminaive:
            _run_stratum_seminaive(
                list(stratum), database, stratification.predicate_stratum,
                stratum_index, max_iterations,
            )
        else:
            _run_stratum_naive(list(stratum), database, max_iterations)
    return database


def _derive(rule: DatalogRule, database: Database, **kwargs) -> list[tuple[str, Row]]:
    derived = []
    for binding in match_datalog_rule(rule, database, **kwargs):
        head = rule.head.substitute(binding)
        derived.append((head.name, head.to_tuple()))
    return derived


def _run_stratum_naive(
    rules: list[DatalogRule], database: Database, max_iterations: int
) -> None:
    for iteration in range(max_iterations):
        changed = False
        for rule in rules:
            for name, row in _derive(rule, database):
                changed |= database.add(name, row)
        if not changed:
            return
    raise EvaluationLimitError(0, max_iterations)


def _run_stratum_seminaive(
    rules: list[DatalogRule],
    database: Database,
    predicate_stratum: dict[tuple[str, int], int],
    stratum_index: int,
    max_iterations: int,
) -> None:
    # Round 0: fire every rule once against the full database.
    delta = Database()
    for rule in rules:
        for name, row in _derive(rule, database):
            if database.add(name, row):
                delta.add(name, row)

    # Which body positions are recursive (same-stratum positive IDB atoms)?
    recursive_positions: dict[str, list[int]] = {}
    for rule in rules:
        positions = [
            index
            for index, literal in enumerate(rule.body)
            if literal.positive
            and isinstance(literal.atom, PredicateAtom)
            and predicate_stratum.get(literal.atom.key) == stratum_index
        ]
        recursive_positions[rule.name] = positions

    for iteration in range(max_iterations):
        if not len(delta):
            return
        new_delta = Database()
        for rule in rules:
            for position in recursive_positions[rule.name]:
                # Dependency check: the delta-bound literal can only match
                # rows the last round actually derived for its predicate.
                atom = rule.body[position].atom
                if not delta.rows(atom.name, len(atom.args)):
                    continue
                for name, row in _derive(
                    rule, database, delta=delta, delta_literal=position
                ):
                    if database.add(name, row):
                        new_delta.add(name, row)
        delta = new_delta
    raise EvaluationLimitError(stratum_index, max_iterations)


# ----------------------------------------------------------------------
# inflationary evaluation ([AV91], used by Logres-style modules)
# ----------------------------------------------------------------------


def evaluate_inflationary(
    program: DatalogProgram,
    edb: Database,
    *,
    max_iterations: int = 100_000,
) -> Database:
    """Inflationary fixpoint: all rules fire against the current database
    (negation reads the *current*, possibly still-growing relations); the
    derived facts are added simultaneously; repeat until no change."""
    program.check_safety()
    database = edb.copy()
    for iteration in range(max_iterations):
        derived: list[tuple[str, Row]] = []
        for rule in program:
            derived.extend(_derive(rule, database))
        changed = False
        for name, row in derived:
            changed |= database.add(name, row)
        if not changed:
            return database
    raise EvaluationLimitError(0, max_iterations)
