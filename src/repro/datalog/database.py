"""Fact storage for the Datalog substrate.

A database maps ``(predicate, arity)`` to a set of constant tuples, with an
optional per-position hash index built lazily for join acceleration.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import TermError
from repro.core.terms import Oid

__all__ = ["Database"]

Row = tuple[Oid, ...]
Key = tuple[str, int]


class Database:
    """A mutable set of ground Datalog facts."""

    __slots__ = ("_relations", "_indexes", "_versions", "__weakref__")

    def __init__(self, facts: Iterable[tuple[str, Row]] = ()):
        self._relations: dict[Key, set[Row]] = {}
        # (pred, arity, position) -> value -> set of rows
        self._indexes: dict[tuple[str, int, int], dict[Oid, set[Row]]] = {}
        # (pred, arity) -> monotone change counter; the prepared-query
        # layer stamps its memos with these to detect staleness in O(#deps)
        self._versions: dict[Key, int] = {}
        for name, row in facts:
            self.add(name, row)

    @classmethod
    def from_tuples(cls, facts: Iterable[tuple]) -> "Database":
        """Build from ``(pred, v1, ..., vk)`` tuples of plain Python values."""
        database = cls()
        for fact in facts:
            name, *values = fact
            database.add(name, tuple(Oid(v) if not isinstance(v, Oid) else v for v in values))
        return database

    # -- mutation ---------------------------------------------------------
    def add(self, name: str, row: Row) -> bool:
        for value in row:
            if not isinstance(value, Oid):
                raise TermError(f"database rows hold constants only, got {value!r}")
        key = (name, len(row))
        relation = self._relations.setdefault(key, set())
        if row in relation:
            return False
        relation.add(row)
        self._versions[key] = self._versions.get(key, 0) + 1
        for position in range(len(row)):
            index = self._indexes.get((name, len(row), position))
            if index is not None:
                index.setdefault(row[position], set()).add(row)
        return True

    def remove(self, name: str, row: Row) -> bool:
        key = (name, len(row))
        relation = self._relations.get(key)
        if relation is None or row not in relation:
            return False
        relation.discard(row)
        self._versions[key] = self._versions.get(key, 0) + 1
        for position in range(len(row)):
            index = self._indexes.get((name, len(row), position))
            if index is not None:
                index.get(row[position], set()).discard(row)
        return True

    # -- lookups ---------------------------------------------------------
    def rows(self, name: str, arity: int) -> set[Row]:
        return self._relations.get((name, arity), set())

    def rows_with(self, name: str, arity: int, position: int, value: Oid) -> set[Row]:
        """Rows of ``name/arity`` whose ``position`` holds ``value`` —
        builds the position index on first use."""
        index_key = (name, arity, position)
        index = self._indexes.get(index_key)
        if index is None:
            index = {}
            for row in self._relations.get((name, arity), ()):
                index.setdefault(row[position], set()).add(row)
            self._indexes[index_key] = index
        return index.get(value, set())

    def __contains__(self, fact: tuple[str, Row]) -> bool:
        name, row = fact
        return row in self._relations.get((name, len(row)), ())

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def __iter__(self) -> Iterator[tuple[str, Row]]:
        for (name, _arity), rows in self._relations.items():
            for row in rows:
                yield (name, row)

    def predicates(self) -> frozenset[Key]:
        return frozenset(k for k, rows in self._relations.items() if rows)

    def predicate_version(self, key: Key) -> int:
        """A counter that changes (strictly grows) whenever the relation
        under ``key`` changes — the staleness stamp of prepared queries."""
        return self._versions.get(key, 0)

    def version_stamp(self, keys: Iterable[Key]) -> tuple[int, ...]:
        """The version counters of ``keys``, in iteration order."""
        versions = self._versions
        return tuple(versions.get(key, 0) for key in keys)

    def copy(self) -> "Database":
        clone = Database.__new__(Database)
        clone._relations = {k: set(v) for k, v in self._relations.items()}
        clone._indexes = {}
        clone._versions = dict(self._versions)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {k: v for k, v in self._relations.items() if v}
        theirs = {k: v for k, v in other._relations.items() if v}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({len(self)} facts, {len(self.predicates())} predicates)"
