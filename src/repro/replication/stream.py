"""The primary side of replication: serving raw journal lines.

The whole correctness story of replication rests on one invariant — a
follower's journal is a **byte-identical prefix** of the primary's.  This
module never re-serializes history to uphold it:

* :func:`read_journal_entries` reads the journal file's raw lines straight
  off disk (bootstrap and catch-up), carrying referenced snapshot files
  inline;
* live pushes render the just-committed revision through
  :func:`~repro.storage.serialize.format_revision_line` — the *same*
  function ``append_revision`` just used, so the streamed text equals the
  appended bytes.

:class:`ReplicationHub` glues both to a :class:`StoreService`: ``sync``
answers one catch-up batch, ``attach`` replays catch-up then registers a
per-subscriber commit listener — both under the service's writer queue, so
no commit can slip between the disk read and the listener registration.
Listeners fire only *after* a commit's journal append succeeded
(:meth:`StoreService.add_replication_listener`), so followers never hold a
line the primary lost.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.core.errors import ReproError
from repro.storage.serialize import JOURNAL_FILE, format_revision_line

__all__ = ["ReplicationHub", "hub_for", "read_journal_entries"]


def read_journal_entries(
    directory: str | Path, from_index: int
) -> tuple[str, list[dict]]:
    """``(header_line, entries)`` for every journal line at or past
    ``from_index``, as raw text plus inline snapshot content.

    Each entry is ``{"index", "epoch", "line", "snapshot"}`` where
    ``snapshot`` is ``{"name", "content"}`` for lines that reference one
    (``None`` otherwise).  A torn tail line is simply not streamed — it is
    the crash residue of an interrupted append, never durable history.
    """
    directory = Path(directory)
    journal = directory / JOURNAL_FILE
    if not journal.exists():
        raise ReproError(f"no journal at {journal}")
    lines = journal.read_text(encoding="utf-8").split("\n")
    while lines and not lines[-1].strip():
        lines.pop()
    if not lines:
        raise ReproError(f"journal {journal} is empty")
    header = lines[0]
    entries: list[dict] = []
    for position, line in enumerate(lines[1:]):
        try:
            record = json.loads(line)
            index = record["index"]
        except (ValueError, TypeError, KeyError):
            if position == len(lines) - 2:
                break  # torn tail: not durable, not streamed
            raise ReproError(
                f"journal {journal} has a corrupt line before its tail; "
                f"run `repro store verify` and repair before replicating"
            ) from None
        if not isinstance(index, int) or index < from_index:
            continue
        if entries and line == entries[-1]["line"]:
            continue  # duplicate tail residue of a retried append
        entries.append(_entry(directory, record, line))
    return header, entries


def _entry(directory: Path, record: dict, line: str) -> dict:
    snapshot = None
    name = record.get("snapshot")
    if name:
        snapshot = {
            "name": name,
            "content": (directory / name).read_text(encoding="utf-8"),
        }
    return {
        "index": record["index"],
        "epoch": record.get("epoch", 0),
        "line": line,
        "snapshot": snapshot,
    }


class ReplicationHub:
    """Fan-out of a primary's committed journal lines to followers.

    One per :class:`~repro.server.service.StoreService` (see
    :func:`hub_for`); the ``repl-sync`` / ``repl-stream`` protocol handlers
    call into it.  Requires the service to be journal-backed — replication
    streams *the journal*, not a reconstruction of it.
    """

    def __init__(self, service) -> None:
        self.service = service

    def _journal_dir(self) -> Path:
        directory = self.service.journal_dir
        if directory is None:
            raise ReproError(
                "replication needs a journal-backed primary; serve a journal "
                "directory (repro serve DIR) instead of an in-memory store"
            )
        return Path(directory)

    def sync(self, from_index: int) -> dict:
        """One catch-up batch: every durable line from ``from_index`` on."""
        directory = self._journal_dir()
        with self.service._writer():
            header, entries = read_journal_entries(directory, from_index)
            return {
                "header": header,
                "entries": entries,
                "from_index": from_index,
                "head": len(self.service.store) - 1,
                "epoch": self.service.epoch,
            }

    def attach(
        self, deliver: Callable[[dict], None], from_index: int
    ) -> tuple[Callable[[], None], int, int]:
        """Start a live stream: replay catch-up entries into ``deliver``,
        then register a commit listener pushing every future line.

        Runs under the writer queue so the catch-up read and the listener
        registration are atomic against commits — no line can fall into the
        gap.  Returns ``(detach, head, epoch)``; the connection teardown
        must call ``detach``.
        """
        directory = self._journal_dir()
        with self.service._writer():
            _header, entries = read_journal_entries(directory, from_index)
            for entry in entries:
                deliver(dict(entry, push="repl-line"))

            def publish(revision, has_snapshot, _deliver=deliver):
                line = format_revision_line(revision, has_snapshot)
                record = json.loads(line)
                _deliver(dict(_entry(directory, record, line), push="repl-line"))

            listener = self.service.add_replication_listener(publish)
            head = len(self.service.store) - 1
            epoch = self.service.epoch

        def detach() -> None:
            self.service.remove_replication_listener(listener)

        return detach, head, epoch


def hub_for(service) -> ReplicationHub:
    """The service's hub, created on first use (one per service, so the
    ``followers`` stat counts every attached stream)."""
    hub = getattr(service, "_replication_hub", None)
    if hub is None:
        hub = ReplicationHub(service)
        service._replication_hub = hub
    return hub
