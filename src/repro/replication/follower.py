"""The replica process: bootstrap, tail, heartbeat, promote.

A :class:`Follower` owns a journal directory and keeps it a
**byte-identical prefix** of a primary's:

* **Bootstrap** (``repl-sync``): fetch every durable journal line past the
  local journal's end — the primary's raw bytes, snapshot files inline —
  validate each (CRC, chain order, epoch monotonicity), append verbatim,
  and replay it through :func:`~repro.storage.serialize.apply_journal_record`.
  A local journal that exists is *continued*: torn-tail recovery
  (``load_store(repair=True)``) runs first, and the sync starts at the
  first missing index — a follower SIGKILLed mid-bootstrap resumes
  without re-downloading the snapshot.
* **Tail** (``repl-stream``): live ``repl-line`` pushes take the same
  validate → append → replay path, so local subscriptions fire exactly as
  if the commit were local.  A dropped link redials with backoff and
  resyncs from the journal's own end — the stream is always resumable
  because its cursor *is* the journal.
* **Heartbeats**: periodic pings on a side channel; after
  ``heartbeat_misses`` consecutive failures the primary is reported dead
  (``stats()["replication"]["primary_alive"]``) and, with
  ``auto_promote=True``, the follower promotes itself.
* **Promotion**: :meth:`promote` stops replication, bumps the fencing
  epoch past everything this node has seen
  (:meth:`StoreService.promote`), binds the local journal for writing,
  and best-effort fences the old primary so its zombie writes are
  rejected.  With a ``takeover`` socket path the ``on_takeover`` hook
  (installed by the CLI) additionally binds the dead primary's endpoint,
  so reconnecting clients land on the new primary transparently.
"""

from __future__ import annotations

import asyncio
import threading
import time
from pathlib import Path

from repro.api import _wire_endpoint
from repro.api.model import RetryPolicy
from repro.core.errors import ReproError
from repro.obs import metrics as _obs
from repro.server.client import AsyncClient
from repro.server.errors import ServerError
from repro.server.service import StoreService
from repro.storage.serialize import (
    JOURNAL_FILE,
    DurabilityOptions,
    append_journal_line,
    apply_journal_record,
    load_store,
    parse_journal_record,
    write_journal_file,
)

__all__ = ["Follower"]

#: Bootstrap may move a whole snapshot; give it a generous bound.
_SYNC_TIMEOUT = 60.0


def _endpoint_kwargs(target: str) -> dict:
    """``AsyncClient.connect`` kwargs for a primary target (``serve:`` /
    ``unix:`` / ``tcp:`` / bare socket path)."""
    endpoint = _wire_endpoint(str(target))
    if endpoint is None:
        # a bare path whose socket does not exist *yet* (primary restarting)
        return {"path": str(target)}
    return endpoint


class Follower:
    """One live read replica over a local journal directory.

    ``start()`` bootstraps, exposes :attr:`service` (serve it with
    :class:`~repro.server.server.ReproServer` or query it in-process), and
    returns once the replica is streaming.  The service carries this
    follower as its ``replication_control``, so ``repl-promote`` /
    ``repl-retarget`` reach it over the wire.
    """

    def __init__(
        self,
        directory,
        primary: str,
        *,
        durability: DurabilityOptions | None = None,
        engine=None,
        options=None,
        retry: RetryPolicy | None = None,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 3,
        auto_promote: bool = False,
        takeover: str | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.primary = str(primary)
        self.durability = durability
        self.retry = retry or RetryPolicy(attempts=8, base_delay=0.05,
                                          max_delay=1.0)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.auto_promote = auto_promote
        self.takeover = takeover
        #: Called with the takeover socket path after a promotion that
        #: requested one (the CLI installs a binder for the old endpoint).
        self.on_takeover = None
        self._engine = engine
        self._options = options
        self._endpoint = _endpoint_kwargs(self.primary)
        self.service: StoreService | None = None
        #: Where the last bootstrap started (0 = full download; > 0 means
        #: the local journal was continued — no snapshot re-download).
        self.last_sync_from: int | None = None
        self.bootstrap_snapshots = 0
        self.bootstrap_rebuilds = 0
        self.primary_head = -1
        self.primary_alive = True
        self.missed_heartbeats = 0
        self.stream_resyncs = 0
        #: Monotonic clock of the last applied journal line (bootstrap or
        #: stream) — the basis of the lag-in-seconds stat: how stale this
        #: replica's newest data is while it is behind the primary.
        self._last_applied_at = time.monotonic()
        self._streaming = False
        self._closed = False
        self._promoted = False
        self._lock = threading.Lock()
        self._loop = None
        self._link_client: AsyncClient | None = None
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Follower":
        """Bootstrap from the primary and begin tailing + heartbeating."""
        from repro.api.wire import _EventLoopThread  # shared loop plumbing

        self._loop = _EventLoopThread(f"repro-replica[{self.directory}]")
        try:
            store = self._bootstrap()
        except BaseException:
            self._loop.stop()
            raise
        self.service = StoreService(store, role="follower")
        self.service.replication_info = self._info
        self.service.replication_control = self
        for target in (self._tail_forever, self._heartbeat_forever):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        self._closed = True
        self._kick_link()
        for thread in self._threads:
            thread.join(timeout=5)
        if self._loop is not None:
            self._loop.stop()

    @property
    def promoted(self) -> bool:
        """True once this node stopped replicating and became primary."""
        return self._promoted

    def __enter__(self) -> "Follower":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bootstrap ---------------------------------------------------------
    def _bootstrap(self):
        store = None
        if (self.directory / JOURNAL_FILE).exists():
            # Continue a prior replica (or resume a killed bootstrap): torn
            # tails are repaired here, and the sync picks up at the first
            # missing index — the snapshot is never downloaded twice.
            try:
                store = load_store(
                    self.directory, engine=self._engine,
                    options=self._options, repair=True,
                )
            except ReproError:
                # Nothing recoverable (died before the first replicated
                # line became durable, or damage beyond tail repair).  A
                # replica's journal is derived state: rebuild it from the
                # primary rather than refuse to start.
                (self.directory / JOURNAL_FILE).unlink()
                self.bootstrap_rebuilds += 1
        from_index = len(store) if store is not None else 0
        self.last_sync_from = from_index
        response = self._call(
            "repl-sync", from_index=from_index, timeout=_SYNC_TIMEOUT
        )
        if store is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            write_journal_file(
                self.directory, JOURNAL_FILE, response["header"] + "\n",
                durability=self.durability,
            )
        self.bootstrap_snapshots = sum(
            1 for entry in response["entries"] if entry.get("snapshot")
        )
        for entry in response["entries"]:
            record = self._validated(
                entry, expected=from_index, store=store
            )
            self._persist(entry)
            if store is not None:
                apply_journal_record(store, record)
            from_index += 1
        if store is None:
            store = load_store(
                self.directory, engine=self._engine, options=self._options
            )
        self.primary_head = max(
            self.primary_head, response.get("head", -1), len(store) - 1
        )
        return store

    def _validated(self, entry: dict, *, expected: int, store) -> dict:
        """The follower's gate on every received line: parse + CRC check,
        chain order, epoch monotonicity (a regressing epoch is a zombie
        primary's line — never adopt it)."""
        record = parse_journal_record(entry["line"])
        index = record["index"]
        if index != expected:
            raise ReproError(
                f"replication stream broke the chain: got revision {index}, "
                f"expected {expected} — resyncing"
            )
        current_epoch = store.epoch if store is not None else 0
        if record.get("epoch", 0) < current_epoch:
            raise ReproError(
                f"replication line {index} carries epoch "
                f"{record.get('epoch', 0)} below this replica's epoch "
                f"{current_epoch}; refusing a fenced primary's history"
            )
        return record

    def _persist(self, entry: dict) -> None:
        """Snapshot file first, then the verbatim line — the same
        crash-ordering ``append_revision`` uses."""
        snapshot = entry.get("snapshot")
        if snapshot:
            write_journal_file(
                self.directory, snapshot["name"], snapshot["content"],
                durability=self.durability,
            )
        append_journal_line(
            self.directory, entry["line"], durability=self.durability
        )

    # -- live tail ---------------------------------------------------------
    def _tail_forever(self) -> None:
        attempt = 0
        while not self._done():
            try:
                self._loop.run(self._stream_once())
                attempt = 0
            except Exception:
                if self._done():
                    break
                attempt = min(attempt + 1, self.retry.attempts - 1)
                self.stream_resyncs += 1
                time.sleep(self.retry.delay(attempt))
        self._streaming = False

    async def _stream_once(self) -> None:
        client = await asyncio.wait_for(
            AsyncClient.connect(**self._endpoint), self._dial_timeout()
        )
        self._link_client = client
        try:
            response = await client.call(
                "repl-stream", from_index=len(self.service.store)
            )
            self.primary_head = max(self.primary_head, response.get("head", -1))
            self._streaming = True
            while not self._done():
                push = await client.next_push()
                if push.get("push") != "repl-line":
                    continue
                self._ingest(push)
        finally:
            self._streaming = False
            self._link_client = None
            await client.close()

    def _ingest(self, entry: dict) -> None:
        with self._lock:
            if self._done():
                return
            store = self.service.store
            expected = len(store)
            index = entry.get("index")
            if not isinstance(index, int) or index < expected:
                return  # catch-up overlap with the bootstrap: already have it
            record = self._validated(entry, expected=expected, store=store)
            self._persist(entry)
            apply_journal_record(store, record)
            self.primary_head = max(self.primary_head, record["index"])
            self._last_applied_at = time.monotonic()
            _obs.inc("repl_streamed_lines_received")
            _obs.inc(
                "repl_streamed_bytes", len(str(entry.get("line", "")))
            )

    # -- heartbeats --------------------------------------------------------
    def _heartbeat_forever(self) -> None:
        while not self._done():
            time.sleep(self.heartbeat_interval)
            if self._done():
                break
            try:
                pong = self._call(
                    "ping", timeout=max(self.heartbeat_interval, 0.5) * 2
                )
                self.missed_heartbeats = 0
                self.primary_alive = True
                self.primary_head = max(
                    self.primary_head, pong.get("revision", -1)
                )
            except Exception:
                self.missed_heartbeats += 1
                _obs.inc("repl_heartbeat_misses")
                if self.missed_heartbeats >= self.heartbeat_misses:
                    self.primary_alive = False
                    if self.auto_promote and not self._promoted:
                        self.promote(takeover=self.takeover)

    # -- control surface (repl-promote / repl-retarget) --------------------
    def promote(self, *, epoch: int | None = None,
                takeover: str | None = None) -> int:
        """Stop replicating and become the writable primary (idempotent).

        The service's epoch jumps past everything this replica has seen;
        the old primary is fenced best-effort (it may be dead — that is
        usually why we are here).  ``takeover`` hands the dead primary's
        endpoint to the CLI's ``on_takeover`` binder; a repeat call never
        re-promotes or re-fences but still honors a takeover request, so
        an operator can promote first and claim the dead endpoint later.
        """
        with self._lock:
            already = self._promoted
            self._promoted = True
            if already:
                new_epoch = self.service.epoch
            else:
                new_epoch = self.service.promote(
                    epoch=epoch, journal_dir=self.directory,
                    durability=self.durability,
                )
        if not already:
            self._kick_link()
            self._fence_old_primary(new_epoch)
        takeover = takeover or self.takeover
        if takeover and self.on_takeover is not None:
            self.on_takeover(takeover)
        return new_epoch

    def retarget(self, primary: str) -> None:
        """Follow a different primary (after someone else was promoted)."""
        self.primary = str(primary)
        self._endpoint = _endpoint_kwargs(self.primary)
        self.missed_heartbeats = 0
        self.primary_alive = True
        self._kick_link()  # the tail loop redials the new target

    def _fence_old_primary(self, epoch: int) -> None:
        """Fire-and-forget ``repl-fence`` at the old primary: if it is
        alive (network partition, not death), its next commit raises
        ``StaleEpochError`` instead of forking history."""
        async def fence() -> None:
            try:
                client = await asyncio.wait_for(
                    AsyncClient.connect(**self._endpoint), 2.0
                )
                try:
                    await asyncio.wait_for(
                        client.call("repl-fence", epoch=epoch), 2.0
                    )
                finally:
                    await client.close()
            except Exception:
                pass  # dead primaries cannot be fenced; the epoch does it

        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(fence(), self._loop.loop)

    # -- plumbing ----------------------------------------------------------
    def _done(self) -> bool:
        return self._closed or self._promoted

    def _dial_timeout(self) -> float:
        return max(self.heartbeat_interval * 2, 1.0)

    def _kick_link(self) -> None:
        client = self._link_client
        if client is not None and self._loop is not None:
            asyncio.run_coroutine_threadsafe(client.close(), self._loop.loop)

    def _call(self, cmd: str, *, timeout: float = 5.0, **payload) -> dict:
        """One command to the primary over a fresh short-lived connection
        (bootstrap, heartbeats) — the tail stream has its own link."""
        async def one() -> dict:
            client = await asyncio.wait_for(
                AsyncClient.connect(**self._endpoint), timeout
            )
            try:
                return await asyncio.wait_for(
                    client.call(cmd, **payload), timeout
                )
            finally:
                await client.close()

        try:
            return self._loop.run(one(), timeout=timeout * 2 + 1)
        except (ConnectionError, OSError) as error:
            raise ServerError(
                f"cannot reach primary {self.primary}: {error}"
            ) from None

    def _info(self) -> dict:
        """The follower's extra ``stats()["replication"]`` fields."""
        local = len(self.service.store) - 1 if self.service else -1
        promoted = self._promoted
        lag = 0 if promoted else max(0, self.primary_head - local)
        return {
            "primary": self.primary,
            "lag": lag,
            "lag_seconds": (
                0.0 if lag == 0 else time.monotonic() - self._last_applied_at
            ),
            "primary_alive": None if promoted else self.primary_alive,
            "heartbeat_misses": self.missed_heartbeats,
            "streaming": self._streaming,
            "bootstrap_from": self.last_sync_from,
            "stream_resyncs": self.stream_resyncs,
        }
