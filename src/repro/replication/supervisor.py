"""``repro replicaset`` — an external health checker with auto-promote.

A :class:`ReplicaSet` watches one primary and N follower endpoints (each a
running ``repro serve`` / ``repro replica`` process) from the outside:

* every ``interval`` seconds it pings the primary; ``misses`` consecutive
  failures declare it dead;
* with ``auto_promote`` it then picks the follower whose
  ``stats()["replication"]["last_index"]`` is highest — the one that lost
  the least history — sends it ``repl-promote``, retargets the remaining
  followers at it (``repl-retarget``), and remembers the new epoch;
* if the old primary ever reappears it is fenced (``repl-fence`` at the
  promotion epoch), so its zombie writes raise ``StaleEpochError`` instead
  of forking the journal.

The supervisor holds no state the cluster does not: epochs live in the
journals, so a supervisor restart (or two racing supervisors) can only
push epochs forward — promotion is monotonic, never a rollback.
"""

from __future__ import annotations

import time

from repro.api.model import RetryPolicy
from repro.api.wire import WireConnection
from repro.core.errors import ReproError
from repro.replication.replset import _member_endpoint

__all__ = ["ReplicaSet"]


class ReplicaSet:
    """Supervise one primary and its followers (see the module doc)."""

    def __init__(
        self,
        primary: str,
        followers: list[str],
        *,
        interval: float = 1.0,
        misses: int = 3,
        auto_promote: bool = True,
        call_timeout: float = 5.0,
        report=None,
    ) -> None:
        if not followers:
            raise ReproError("a replica set needs at least one follower")
        self.primary = str(primary)
        self.followers = [str(follower) for follower in followers]
        self.interval = interval
        self.misses = misses
        self.auto_promote = auto_promote
        self.call_timeout = call_timeout
        self.report = report or (lambda message: None)
        self.missed = 0
        self.epoch = 0
        self.promotions = 0
        self.old_primary: str | None = None
        self._conns: dict[str, WireConnection] = {}

    # -- member plumbing ---------------------------------------------------
    def _call(self, target: str, cmd: str, **payload) -> dict:
        conn = self._conns.get(target)
        if conn is None or conn.closed:
            conn = WireConnection(
                call_timeout=self.call_timeout, **_member_endpoint(target)
            )
            self._conns[target] = conn
        try:
            return conn.call(cmd, **payload)
        except ReproError:
            self._conns.pop(target, None)
            try:
                conn.close()
            except Exception:
                pass
            raise

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except Exception:
                pass
        self._conns.clear()

    # -- the health loop ---------------------------------------------------
    def poll_once(self) -> dict:
        """One health sweep; returns what it saw (and did)."""
        state = {"primary": self.primary, "alive": True, "promoted": None}
        try:
            pong = self._call(self.primary, "ping")
            self.missed = 0
            self.epoch = max(self.epoch, pong.get("epoch", 0))
        except ReproError:
            self.missed += 1
            state["alive"] = self.missed < self.misses
            if not state["alive"] and self.auto_promote:
                state["promoted"] = self.promote_best()
        if self.old_primary is not None:
            self._fence_if_back()
        return state

    def run(self, *, duration: float | None = None) -> None:
        """Poll until ``duration`` elapses (forever when ``None``)."""
        deadline = None if duration is None else time.monotonic() + duration
        while deadline is None or time.monotonic() < deadline:
            self.poll_once()
            time.sleep(self.interval)

    # -- promotion ---------------------------------------------------------
    def promote_best(self) -> str | None:
        """Promote the freshest reachable follower; returns its endpoint
        (``None`` when no follower answered — nothing changed)."""
        best: tuple[int, str] | None = None
        for follower in self.followers:
            try:
                stats = self._call(follower, "stats")["stats"]
            except ReproError:
                continue
            last_index = stats.get("replication", {}).get("last_index", -1)
            if best is None or last_index > best[0]:
                best = (last_index, follower)
        if best is None:
            self.report("no follower reachable; promotion deferred")
            return None
        chosen = best[1]
        response = self._call(chosen, "repl-promote", epoch=self.epoch + 1)
        self.epoch = max(self.epoch, response.get("epoch", 0))
        self.promotions += 1
        self.old_primary = self.primary
        self.primary = chosen
        self.missed = 0
        self.followers = [f for f in self.followers if f != chosen]
        self.report(
            f"promoted {chosen} at epoch {self.epoch} "
            f"(last_index {best[0]}); old primary fenced on reappearance"
        )
        for follower in self.followers:
            try:
                self._call(follower, "repl-retarget", primary=chosen)
            except ReproError:
                pass  # it will heartbeat-fail and can be retargeted later
        return chosen

    def _fence_if_back(self) -> None:
        """The old primary came back from the dead: fence it and demote it
        to a plain read target (operators re-seed it as a follower)."""
        try:
            self._call(self.old_primary, "repl-fence", epoch=self.epoch)
        except ReproError:
            return  # still dead; keep watching
        self.report(f"fenced returned primary {self.old_primary} at epoch {self.epoch}")
        self.old_primary = None
