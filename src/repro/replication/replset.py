"""``repro.connect("replset:a,b,c")`` — the failover-aware client.

A :class:`ReplicaSetConnection` holds one :class:`WireConnection` per
member and routes:

* **reads** (query/log/as-of/diff/stats/ping) to the first member that
  answers, rotating past dead ones immediately — no promotion needed;
* **mutations** (apply/transactions) to the member whose ``ping`` reports
  ``role: primary`` with the highest fencing epoch; every mutation is
  stamped with the highest epoch this client has *observed*, so a zombie
  primary that never heard about a promotion rejects the write
  (``StaleEpochError``) instead of forking history.  On
  ``StaleEpochError`` / ``NotPrimaryError`` / a dead link the client
  rediscovers the primary and retries under its
  :class:`~repro.api.model.RetryPolicy` — mutations resume as soon as a
  promotion lands;
* **subscriptions** through a pump thread: the consumer's stream is fed
  from whichever member currently serves the live query; when that member
  dies the pump resubscribes on another and injects one coalesced
  ``lagged`` push (the stream diffs the resync answers against its own
  folded state — the same exactness contract as a wire reconnect).

Member connections deliberately carry **no** retry policy of their own:
failures surface immediately and the replica set, which can see every
member, makes the failover decision.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.api.connection import Connection, SubscriptionStream
from repro.api.model import Diff, RetryPolicy, Revision
from repro.api.wire import WireConnection, _body_text
from repro.core.errors import ReproError
from repro.core.objectbase import ObjectBase
from repro.core.query import Answer
from repro.server.errors import (
    ConnectionClosed,
    NotPrimaryError,
    ServerBusyError,
    ServerError,
    StaleEpochError,
)

__all__ = ["ReplicaSetConnection"]

#: Failures that mean "try another member / rediscover the primary", as
#: opposed to real request errors (parse failures, unknown revisions).
_FAILOVER_ERRORS = (
    ConnectionClosed, NotPrimaryError, ServerBusyError, StaleEpochError,
)


class ReplicaSetConnection(Connection):
    """One connection over several ``repro serve`` members (see module doc)."""

    def __init__(
        self,
        targets: list[str],
        *,
        call_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__()
        if not targets:
            raise ReproError("replset: needs at least one member endpoint")
        self.targets = [str(target) for target in targets]
        self.target = "replset:" + ",".join(self.targets)
        self.call_timeout = call_timeout
        self.retry = retry or RetryPolicy()
        #: Highest fencing epoch observed anywhere; stamped on mutations.
        self.epoch = 0
        self.failovers = 0
        self._primary: str | None = None
        self._conns: dict[str, WireConnection] = {}
        self._lock = threading.RLock()

    # -- member plumbing ---------------------------------------------------
    def _conn(self, target: str) -> WireConnection:
        with self._lock:
            conn = self._conns.get(target)
            if conn is not None and not conn.closed:
                return conn
            conn = WireConnection(
                call_timeout=self.call_timeout,
                **_member_endpoint(target),
            )
            self._conns[target] = conn
            return conn

    def _drop(self, target: str) -> None:
        with self._lock:
            conn = self._conns.pop(target, None)
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass

    def _rotation(self) -> list[str]:
        """Members in read-preference order: last known primary first (its
        head is never behind), then the rest in declared order."""
        primary = self._primary
        if primary is None or primary not in self.targets:
            return list(self.targets)
        return [primary] + [t for t in self.targets if t != primary]

    def _read(self, op, *, what: str):
        """Run ``op(conn)`` on the first member that answers, sweeping the
        set up to ``retry.attempts`` times with backoff between sweeps."""
        self._check_open()
        failure: Exception | None = None
        for sweep in range(self.retry.attempts):
            for target in self._rotation():
                try:
                    conn = self._conn(target)
                except ReproError as error:
                    failure = error  # member down: next one
                    continue
                try:
                    return op(conn)
                except _FAILOVER_ERRORS as error:
                    failure = error
                    self._drop(target)
                    self.failovers += 1
                except ServerError as error:
                    if _is_link_failure(error):
                        failure = error
                        self._drop(target)
                        self.failovers += 1
                        continue
                    raise  # a real request error: every member would agree
            if sweep < self.retry.attempts - 1:
                time.sleep(self.retry.delay(sweep))
        raise ConnectionClosed(
            f"no replica-set member could serve {what} "
            f"({len(self.targets)} tried): {failure}"
        )

    # -- primary discovery -------------------------------------------------
    def _discover_primary(self) -> str | None:
        """Ping every member; adopt the primary with the highest epoch (a
        fenced zombie still says "primary" but loses the epoch compare)."""
        best: tuple[int, str] | None = None
        for target in self.targets:
            try:
                pong = self._conn(target).call("ping")
            except ReproError:
                continue
            epoch = pong.get("epoch", 0)
            self.epoch = max(self.epoch, epoch)
            if pong.get("role") == "primary":
                if best is None or epoch > best[0]:
                    best = (epoch, target)
        self._primary = best[1] if best else None
        return self._primary

    def _mutate(self, op, *, what: str):
        """Run ``op(conn)`` on the current primary, rediscovering and
        retrying across promotions under the retry policy."""
        self._check_open()
        failure: Exception | None = None
        for attempt in range(self.retry.attempts):
            target = self._primary or self._discover_primary()
            if target is None:
                failure = failure or NotPrimaryError(
                    "no member of the replica set reports role=primary "
                    "(promotion pending?)"
                )
            else:
                try:
                    return op(self._conn(target))
                except StaleEpochError as error:
                    # someone promoted past this member: remember the bar
                    self.epoch = max(self.epoch, error.required_epoch)
                    failure = error
                except _FAILOVER_ERRORS as error:
                    failure = error
                except ServerError as error:
                    if not _is_link_failure(error):
                        raise
                    failure = error
                    self._drop(target)
                self._primary = None
                self.failovers += 1
            if attempt < self.retry.attempts - 1:
                time.sleep(self.retry.delay(attempt))
        raise ConnectionClosed(
            f"no writable primary for {what} after {self.retry.attempts} "
            f"attempts: {failure}"
        )

    # -- liveness ----------------------------------------------------------
    def ping(self) -> dict:
        return self._read(lambda conn: conn.ping(), what="ping")

    # -- reading -----------------------------------------------------------
    def query(self, body, *, min_revision: int | None = None) -> list[Answer]:
        return self._read(
            lambda conn: conn.query(body, min_revision=min_revision),
            what="query",
        )

    def query_with_revision(
        self, body, *, min_revision: int | None = None
    ) -> tuple[list[Answer], int]:
        return self._read(
            lambda conn: conn.query_with_revision(
                body, min_revision=min_revision
            ),
            what="query",
        )

    def log(self) -> tuple[Revision, ...]:
        return self._read(lambda conn: conn.log(), what="log")

    @property
    def head(self) -> Revision:
        return self._read(lambda conn: conn.head, what="head")

    def as_of(self, revision) -> ObjectBase:
        return self._read(lambda conn: conn.as_of(revision), what="as-of")

    def diff(self, older, newer, *, include_exists: bool = False) -> Diff:
        return self._read(
            lambda conn: conn.diff(older, newer, include_exists=include_exists),
            what="diff",
        )

    # -- writing -----------------------------------------------------------
    def apply(self, program, *, tag: str = "") -> Revision:
        def op(conn: WireConnection) -> Revision:
            response = conn.call(
                "apply",
                program=_wire_program_text(program),
                tag=tag,
                name=_wire_program_name(program),
                epoch=self.epoch or None,
            )
            self.epoch = max(self.epoch, response.get("epoch", 0))
            return Revision.from_record(response["revisions"][-1])

        return self._mutate(op, what="apply")

    def transaction(self, *, tag: str = "", attempts: int = 1):
        """An optimistic transaction on the current primary.  The session
        lives on one member — if that member dies mid-transaction the
        commit surfaces the link error; begin a fresh transaction (the
        next one rediscovers the promoted primary)."""
        return self._mutate(
            lambda conn: conn.transaction(tag=tag, attempts=attempts),
            what="transaction",
        )

    # -- live queries ------------------------------------------------------
    def subscribe(
        self, body, *, name: str | None = None,
        min_revision: int | None = None,
    ) -> SubscriptionStream:
        self._check_open()
        body_text = _body_text(body)
        inner = self._read(
            lambda conn: conn.subscribe(
                body_text, name=name, min_revision=min_revision
            ),
            what="subscribe",
        )
        holder = {"inner": inner}
        pushes: "queue.Queue[dict]" = queue.Queue()
        stream = SubscriptionStream(
            sid=inner.sid,
            query=inner.query,
            revision=inner.revision,
            answers=list(inner.answers),
            pushes=pushes,
            closer=lambda: _close_inner(holder),
        )
        pump = threading.Thread(
            target=self._pump,
            args=(stream, holder, pushes, body_text, name),
            daemon=True,
        )
        pump.start()
        return self._track(stream)

    def _pump(self, stream, holder, pushes, body_text, name) -> None:
        """Shovel deltas from the current member's stream into the
        consumer's; on member death, resubscribe elsewhere and inject one
        coalesced lagged push."""
        dead_sweeps = 0
        while not stream.closed and not self._closed:
            inner = holder.get("inner")
            if inner is None or inner.closed:
                if stream.closed:
                    break
                try:
                    replacement = self._read(
                        lambda conn: conn.subscribe(body_text, name=name),
                        what="resubscribe",
                    )
                except ReproError:
                    dead_sweeps += 1
                    if dead_sweeps >= self.retry.attempts:
                        stream._mark_dead()
                        break
                    continue  # _read already backed off between sweeps
                dead_sweeps = 0
                holder["inner"] = replacement
                self.failovers += 1
                # One coalesced catch-up: the outer stream diffs these
                # resync answers against its own folded state.
                pushes.put({
                    "push": "lagged",
                    "sid": replacement.sid,
                    "query": replacement.query,
                    "from_revision": stream.revision,
                    "to_revision": replacement.revision,
                    "revision": replacement.revision,
                    "tag": "",
                    "answers": [dict(row) for row in replacement.answers],
                })
                continue
            delta = inner.next(timeout=0.2)
            if delta is not None:
                pushes.put(delta.as_push())

    # -- accounting --------------------------------------------------------
    def stats(self) -> dict:
        stats = self._read(lambda conn: conn.stats(), what="stats")
        stats["replset"] = {
            "targets": list(self.targets),
            "primary": self._primary,
            "epoch": self.epoch,
            "failovers": self.failovers,
        }
        return stats

    # -- lifecycle ---------------------------------------------------------
    def _teardown(self) -> None:
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass


def _close_inner(holder: dict) -> None:
    inner = holder.pop("inner", None)
    if inner is not None:
        try:
            inner.close()
        except Exception:
            pass


def _is_link_failure(error: ServerError) -> bool:
    """Plain :class:`ServerError` covers both real request errors and
    transport problems (dial failures, dropped links); only the latter
    justify failing over."""
    text = str(error)
    return (
        "cannot connect" in text
        or "connection to" in text
        or "did not answer" in text
    )


def _member_endpoint(target: str) -> dict:
    from repro.api import _wire_endpoint  # the one endpoint grammar

    endpoint = _wire_endpoint(target)
    if endpoint is None:
        # a bare socket path whose socket is not live right now — a member
        # may be down at connect time and that must not fail the set
        return {"path": target}
    return endpoint


def _wire_program_text(program) -> str:
    from repro.api.wire import _program_text

    return _program_text(program)


def _wire_program_name(program) -> str | None:
    from repro.api.wire import _program_name

    return _program_name(program)
