"""Replicated serving: journal-streaming followers with safe promotion.

The journal (PR 2/4/6) already *is* a replication log: a totally ordered,
CRC-checked, byte-replayable history whose replay is proven byte-identical
by the tier-1 suite.  This package streams that log to live follower
processes and handles the failure half — health checks, promotion, and
epoch fencing — so one ``StoreService`` survives node loss:

* :mod:`repro.replication.stream` — the primary side: ``repl-sync``
  (snapshot bootstrap) and ``repl-stream`` (live tail) read raw journal
  lines so followers receive the primary's exact bytes;
* :mod:`repro.replication.follower` — the replica process: bootstraps a
  byte-identical journal, tails the stream through the ``load_store`` /
  ``apply_delta`` replay path, serves reads/subscriptions locally,
  heartbeats the primary, and can be promoted (``repro replica promote``);
* :mod:`repro.replication.supervisor` — ``repro replicaset``: an external
  health checker that auto-promotes the freshest follower and fences the
  old primary when it reappears;
* :mod:`repro.replication.replset` — the client side of
  ``repro.connect("replset:a,b,c")``: reads fail over across nodes
  immediately, mutations rediscover the primary after promotion and carry
  the highest observed fencing epoch so a zombie primary rejects them.
"""

from repro.replication.follower import Follower
from repro.replication.replset import ReplicaSetConnection
from repro.replication.stream import ReplicationHub, hub_for
from repro.replication.supervisor import ReplicaSet

__all__ = [
    "Follower",
    "ReplicaSet",
    "ReplicaSetConnection",
    "ReplicationHub",
    "hub_for",
]
