"""Core semantics of the update language (the paper's contribution).

Layout mirrors the paper:

* Section 2.1 (language): :mod:`~repro.core.terms`, :mod:`~repro.core.facts`,
  :mod:`~repro.core.atoms`, :mod:`~repro.core.rules`,
  :mod:`~repro.core.safety`
* Section 3 (semantics): :mod:`~repro.core.objectbase`,
  :mod:`~repro.core.truth`, :mod:`~repro.core.consequence`
* Section 4 (evaluation): :mod:`~repro.core.stratification`,
  :mod:`~repro.core.grounding`, :mod:`~repro.core.evaluation`
* Section 5 (new base): :mod:`~repro.core.linearity`,
  :mod:`~repro.core.newbase`
* Facade: :mod:`~repro.core.engine`, :mod:`~repro.core.query`
"""

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.consequence import TPResult, apply_tp, tp_step
from repro.core.engine import UpdateEngine, UpdateResult
from repro.core.errors import (
    BuiltinError,
    EvaluationError,
    EvaluationLimitError,
    FrozenBaseError,
    ProgramError,
    ReproError,
    SafetyError,
    StratificationError,
    TermError,
    VersionDepthError,
    VersionLinearityError,
)
from repro.core.evaluation import (
    CompiledProgram,
    EvaluationOptions,
    EvaluationOutcome,
    compile_program,
    evaluate,
)
from repro.core.exprs import BinOp, Neg
from repro.core.facts import EXISTS, Fact, exists_fact, make_fact
from repro.core.linearity import (
    LinearityTracker,
    check_version_linear,
    final_versions,
)
from repro.core.newbase import build_new_base
from repro.core.objectbase import Delta, ObjectBase
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.safety import check_program_safety, check_rule_safety, is_safe
from repro.core.stratification import Stratification, precedence_edges, stratify
from repro.core.terms import (
    Oid,
    Term,
    UpdateKind,
    Var,
    VersionId,
    VersionVar,
    depth,
    is_ground,
    is_subterm,
    object_of,
    subterms,
    wrap,
)
from repro.core.trace import EvaluationTrace

__all__ = [
    # terms
    "Oid", "Var", "VersionVar", "VersionId", "Term", "UpdateKind",
    "depth", "is_ground", "is_subterm", "object_of", "subterms", "wrap",
    # facts & atoms
    "EXISTS", "Fact", "make_fact", "exists_fact",
    "VersionAtom", "UpdateAtom", "BuiltinAtom", "Literal", "BinOp", "Neg",
    # rules & programs
    "UpdateRule", "UpdateProgram",
    "check_rule_safety", "check_program_safety", "is_safe",
    # object base & semantics
    "ObjectBase", "Delta", "tp_step", "apply_tp", "TPResult",
    # stratification & evaluation
    "Stratification", "stratify", "precedence_edges",
    "evaluate", "compile_program", "CompiledProgram",
    "EvaluationOptions", "EvaluationOutcome", "EvaluationTrace",
    # linearity & new base
    "LinearityTracker", "check_version_linear", "final_versions",
    "build_new_base",
    # facade
    "UpdateEngine", "UpdateResult",
    # errors
    "ReproError", "TermError", "FrozenBaseError", "ProgramError", "SafetyError",
    "StratificationError", "EvaluationError", "EvaluationLimitError",
    "VersionDepthError", "VersionLinearityError", "BuiltinError",
]
