"""A query API over object bases, with a prepared / memoized serving path.

The paper's language derives updates, not queries, but inspecting states —
"which salary does ``mod(phil)`` have?" — is what its examples do in prose.
This module exposes the rule matcher for that purpose: a query is a
conjunction of body literals, answered by the substitutions that satisfy it.

With the concrete syntax of :mod:`repro.lang` this becomes::

    from repro import query
    query(base, "E.isa -> empl, E.sal -> S")
    # -> [{'E': 'bob', 'S': 4200}, {'E': 'phil', 'S': 4000}]

For read-heavy serving, :class:`PreparedQuery` is the compile-once form: the
join plan (literal ordering *and* secondary-index column selection) is built
a single time, every execution walks the planned matcher, and the query
carries the :class:`~repro.core.plans.QuerySignature` the versioned store
uses to decide — from the exact ``(added, removed)`` delta of each commit —
whether a memoized answer set is still valid at the new revision
(:meth:`repro.storage.history.VersionedStore.query`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.atoms import Literal
from repro.core.codegen import codegen_enabled, compiled_body
from repro.core.grounding import (
    _body_plan,
    _match_planned,
    match_body,
    match_body_dynamic,
)
from repro.core.objectbase import ObjectBase
from repro.core.plans import body_signature
from repro.core.terms import Oid, Var

__all__ = [
    "PreparedQuery",
    "prepare_query",
    "query_literals",
    "sorted_answers",
    "answer_sort_key",
    "decode_answer",
    "decode_answers",
    "diff_answers",
    "fold_answers",
    "result_value",
    "method_results",
]

#: Formatted answer rows: variable name -> plain Python value.
Answer = dict[str, object]


def _format_binding(binding: dict[Var, object]) -> Answer:
    """Bindings as plain ``{name: value}`` dicts.  Version variables
    (``?W``) bind whole VIDs; those come back as their concrete-syntax
    string (``"mod(joe)"``) since there is no plain value."""
    return {
        var.name: value.value if isinstance(value, Oid) else str(value)
        for var, value in binding.items()
    }


def _item_key(item: tuple[str, object]) -> tuple:
    """Totally ordered key for one ``(name, value)`` binding: numbers sort
    numerically among themselves and before everything else; any other
    value sorts by its text.  Never compares raw values of different types,
    so answers mixing ``int`` and ``str`` for the same variable (legal —
    OIDs carry either) no longer raise ``TypeError``."""
    name, value = item
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (name, 1, value)
    return (name, 2, str(value))


def _answer_sort_key(answer: Answer) -> tuple:
    """A total order over answer rows: each row is keyed by its
    :func:`_item_key`-ranked bindings in variable order."""
    return tuple(_item_key(item) for item in sorted(answer.items()))


def answer_sort_key(answer: Answer) -> tuple:
    """The public total order over answer rows (see :func:`_answer_sort_key`).

    This key is the identity the serving layer uses for answer *sets*: two
    answers are the same row iff their keys are equal, and every answer list
    the query layer hands out is sorted by it.  Exposed so diff/fold stay
    consistent with the ordering of :func:`sorted_answers` forever.
    """
    return _answer_sort_key(answer)


def diff_answers(
    old: Sequence[Answer], new: Sequence[Answer]
) -> tuple[list[Answer], list[Answer]]:
    """``(added, removed)`` answer rows between two sorted answer lists.

    The *answer diff* of the push-based serving layer: a subscription holds
    ``old``, a commit produces ``new``, and only the difference travels to
    the client.  Both outputs come back in :func:`answer_sort_key` order, so
    a stream of diffs is replayable deterministically (see
    :func:`fold_answers`).
    """
    old_keys = {_answer_sort_key(answer) for answer in old}
    new_keys = {_answer_sort_key(answer) for answer in new}
    added = [a for a in new if _answer_sort_key(a) not in old_keys]
    removed = [a for a in old if _answer_sort_key(a) not in new_keys]
    return added, removed


def fold_answers(
    answers: Sequence[Answer],
    added: Sequence[Answer],
    removed: Sequence[Answer],
) -> list[Answer]:
    """Apply one ``(added, removed)`` answer diff to a sorted answer list.

    The client-side inverse of :func:`diff_answers`: folding every diff of a
    subscription stream over its initial answer set reproduces the full
    answer set at each revision (the differential test of the serving
    subsystem asserts exactly this against fresh store queries).
    """
    removed_keys = {_answer_sort_key(answer) for answer in removed}
    folded = [a for a in answers if _answer_sort_key(a) not in removed_keys]
    folded.extend(added)
    folded.sort(key=_answer_sort_key)
    return folded


def decode_answer(row) -> Answer:
    """One received answer row in canonical form.

    The canonical form is what :func:`query_literals` produces — plain
    ``{name: value}`` dicts whose values are OID payloads (``str``/``int``/
    ``float``) or concrete-syntax VID strings — with the bindings keyed in
    sorted variable order, so two equal rows always render identically
    (``repr``, ``json.dumps``) no matter which backend produced them.

    This is the *decode on receipt* step of every client layer: a row that
    crossed the JSON wire (or was handed out by an in-process dispatcher
    straight from a store's live memo) becomes a fresh, canonical dict the
    caller may mutate freely.  JSON artifacts are undone (lists become
    tuples); a non-dict row is rejected as a protocol error.
    """
    from repro.core.errors import ReproError

    if not isinstance(row, dict):
        raise ReproError(f"malformed answer row {row!r}: expected an object")
    return {
        str(name): _decode_value(value)
        for name, value in sorted(row.items(), key=lambda item: str(item[0]))
    }


def _decode_value(value):
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


def decode_answers(rows) -> list[Answer]:
    """Decode a received answer list into canonical rows in canonical order.

    Output is value-equal to what :func:`query_literals` returns for the
    same query — the regression contract of the unified connection API: the
    same query answered over the wire, through an in-process dispatcher, or
    straight off a :class:`~repro.storage.history.VersionedStore` decodes to
    the *same* list.
    """
    answers = [decode_answer(row) for row in rows]
    answers.sort(key=_answer_sort_key)
    return answers


def sorted_answers(
    bindings: Iterable[dict[Var, object]], *, dedupe: bool = False
) -> list[Answer]:
    """Format raw matcher bindings and sort them into the deterministic
    answer order (shared by the update-language and Datalog query layers)."""
    answers = [_format_binding(binding) for binding in bindings]
    if dedupe:
        answers = list(
            {_answer_sort_key(answer): answer for answer in answers}.values()
        )
    answers.sort(key=_answer_sort_key)
    return answers




class PreparedQuery:
    """A conjunctive query compiled once and executable many times.

    Construction compiles the body's :class:`~repro.core.plans.JoinPlan`
    (literal order + index-column selection) and its
    :class:`~repro.core.plans.QuerySignature` (which method keys and host
    shapes can change the answers).  ``run`` executes against any base; the
    versioned store adds per-revision memoization on top (see
    ``VersionedStore.prepare`` / ``VersionedStore.query``).

    Instances are immutable and safe to share across stores and threads —
    all memoization state lives with the store, keyed by the query.
    """

    __slots__ = ("body", "plan", "compiled", "signature", "name", "_hash")

    def __init__(
        self, literals: Sequence[Literal], *, name: str = "<prepared>"
    ) -> None:
        self.body = tuple(literals)
        # The shared cached compile (the same entry match_body uses at run
        # time), so constructing a prepared query never compiles twice.
        self.plan = _body_plan(self.body)
        # The codegen'd executor for the same plan (None for unplannable
        # bodies or under REPRO_NO_CODEGEN); kept on the query so a
        # long-lived prepared query never recompiles on cache eviction.
        self.compiled = (
            compiled_body(self.body)
            if self.plan is not None and codegen_enabled()
            else None
        )
        self.signature = body_signature(self.body)
        self.name = name
        self._hash = hash(self.body)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreparedQuery):
            return NotImplemented
        return self.body == other.body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedQuery({self.name!r}, {len(self.body)} literals)"

    def _execute(self, base: ObjectBase):
        # The stored plan is executed directly — never refetched from the
        # bounded global plan cache, whose eviction would otherwise make a
        # long-lived prepared query recompile per run.
        if self.compiled is not None and codegen_enabled():
            return self.compiled.bindings(base)
        if self.plan is not None:
            return _match_planned(self.plan, base)
        return match_body_dynamic(self.body, base, rule_name=self.name)

    def bindings(self, base: ObjectBase) -> list[dict[Var, object]]:
        """Raw variable bindings (fresh dicts, unordered)."""
        return list(self._execute(base))

    def run(self, base: ObjectBase) -> list[Answer]:
        """Formatted, deterministically sorted answers against ``base``.

        No memoization here — a bare base has no revision identity to key
        a memo on.  Use the store's ``query`` for the cached path.
        """
        return sorted_answers(self._execute(base))

    def run_unplanned(self, base: ObjectBase) -> list[Answer]:
        """The dynamic-ordering reference matcher, same output contract as
        :meth:`run` — the differential baseline for tests and benchmarks."""
        return sorted_answers(
            match_body_dynamic(self.body, base, rule_name=self.name)
        )


def prepare_query(query, *, name: str | None = None) -> PreparedQuery:
    """Coerce ``query`` — a :class:`PreparedQuery`, a literal sequence, or
    concrete-syntax text — into a :class:`PreparedQuery`."""
    if isinstance(query, PreparedQuery):
        return query
    if isinstance(query, str):
        from repro.lang.parser import parse_body  # lazy: lang sits above core

        return PreparedQuery(parse_body(query), name=name or query)
    literals = tuple(query)
    # Default programmatic names render the body, so stats keyed by name
    # stay tellable-apart across distinct unnamed queries.
    derived = ", ".join(str(literal) for literal in literals) or "<empty>"
    return PreparedQuery(literals, name=name or derived)


def query_literals(
    base: ObjectBase, literals: Sequence[Literal]
) -> list[Answer]:
    """Answer a conjunctive query; bindings as plain ``{name: value}`` dicts,
    sorted for stable output (total order even for answers mixing ``int``
    and ``str`` values of the same variable).
    """
    return sorted_answers(match_body(tuple(literals), base))


def method_results(base: ObjectBase, host, method: str, args: Iterable = ()) -> set:
    """The result set of ``host.method@args`` — plain Python values.

    Methods are set-valued when the base holds several applications with the
    same host/method/arguments (Section 2.1), hence a set.
    """
    host_term = host if not isinstance(host, (str, int, float)) else Oid(host)
    arg_terms = tuple(Oid(a) if isinstance(a, (str, int, float)) else a for a in args)
    return {
        fact.result.value
        for fact in base.facts_by_host_method(host_term, method, len(arg_terms))
        if fact.args == arg_terms
    }


def result_value(base: ObjectBase, host, method: str, args: Iterable = ()):
    """The unique result of a method application, or ``None``.

    Raises ``ValueError`` when the method is set-valued at this host —
    callers that expect a function-like method should hear about it.
    """
    values = method_results(base, host, method, args)
    if not values:
        return None
    if len(values) > 1:
        raise ValueError(
            f"{host}.{method} is set-valued here ({sorted(map(str, values))}); "
            f"use method_results()"
        )
    return next(iter(values))
