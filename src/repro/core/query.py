"""A small query API over object bases.

The paper's language derives updates, not queries, but inspecting states —
"which salary does ``mod(phil)`` have?" — is what its examples do in prose.
This module exposes the rule matcher for that purpose: a query is a
conjunction of body literals, answered by the substitutions that satisfy it.

With the concrete syntax of :mod:`repro.lang` this becomes::

    from repro import query
    query(base, "E.isa -> empl, E.sal -> S")
    # -> [{'E': 'bob', 'S': 4200}, {'E': 'phil', 'S': 4000}]
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.atoms import Literal
from repro.core.grounding import match_body
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid

__all__ = ["query_literals", "result_value", "method_results"]


def query_literals(
    base: ObjectBase, literals: Sequence[Literal]
) -> list[dict[str, object]]:
    """Answer a conjunctive query; bindings as plain ``{name: value}`` dicts,
    sorted for stable output.

    Version variables (``?W``) bind whole VIDs; those come back as their
    concrete-syntax string (``"mod(joe)"``) since there is no plain value.
    """
    answers = [
        {
            var.name: value.value if isinstance(value, Oid) else str(value)
            for var, value in binding.items()
        }
        for binding in match_body(tuple(literals), base)
    ]
    answers.sort(key=lambda answer: sorted(answer.items(), key=_sort_key))
    return answers


def _sort_key(item):
    name, value = item
    return (name, str(value))


def method_results(base: ObjectBase, host, method: str, args: Iterable = ()) -> set:
    """The result set of ``host.method@args`` — plain Python values.

    Methods are set-valued when the base holds several applications with the
    same host/method/arguments (Section 2.1), hence a set.
    """
    host_term = host if not isinstance(host, (str, int, float)) else Oid(host)
    arg_terms = tuple(Oid(a) if isinstance(a, (str, int, float)) else a for a in args)
    return {
        fact.result.value
        for fact in base.facts_by_host_method(host_term, method, len(arg_terms))
        if fact.args == arg_terms
    }


def result_value(base: ObjectBase, host, method: str, args: Iterable = ()):
    """The unique result of a method application, or ``None``.

    Raises ``ValueError`` when the method is set-valued at this host —
    callers that expect a function-like method should hear about it.
    """
    values = method_results(base, host, method, args)
    if not values:
        return None
    if len(values) > 1:
        raise ValueError(
            f"{host}.{method} is set-valued here ({sorted(map(str, values))}); "
            f"use method_results()"
        )
    return next(iter(values))
