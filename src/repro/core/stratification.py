"""Stratification of update-programs — conditions (a)-(d) of Section 4.

For the derivation of the stratification every ``[V]`` is replaced by
``(V)``: a rule's head contributes the version-id-term ``α(V)`` of the
version it creates, and body atoms contribute their (replaced) hosts.
The conditions, as precedence constraints between rules (``r' < r`` strict,
``r' ≤ r`` weak):

(a) *copied states never change afterwards*: if ``r``'s head is ``α(V)``,
    every rule whose head unifies with a subterm of ``V`` is strictly lower —
    the source of the copy is finalised before the copy is taken;
(b) positive body dependency: rules whose head unifies with a subterm of a
    positive body version-id-term are at most as high (weak edge — allows
    recursion, e.g. the ancestor program);
(c) negative body dependency: as (b) for negated atoms, but strict —
    standard stratified negation, with version-id-terms playing the role
    Datalog predicate names play in [Ull88];
(d) *read-after-write for destructive updates*: rules **performing** a
    delete (head of the form ``del(W')``) are strictly lower than rules
    whose body mentions any ``del(W)`` with ``W``, ``W'`` unifiable — and
    likewise for ``mod``.  Without (d) a method-application of ``del(v)``
    could be used to infer updates on other objects and be deleted
    afterwards.

Unification is sorted (variables range over OIDs, DESIGN.md D2); the two
rules' variables are renamed apart before each check.

A stratification exists iff the precedence graph has no cycle through a
strict edge.  Strata are computed by condensing strongly connected
components and taking the longest strict-edge path — the minimal
stratification, reproducing the paper's ``{r1,r2} < {r3} < {r4}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from repro.core.errors import StratificationError
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import (
    Term,
    UpdateKind,
    Var,
    VersionId,
    VersionVar,
    subterms,
)
from repro.unify.unification import unifiable

__all__ = ["Stratification", "PrecedenceEdge", "stratify", "precedence_edges"]


@dataclass(frozen=True)
class PrecedenceEdge:
    """One derived constraint ``lower (< | ≤) upper`` with its justification."""

    lower: str
    upper: str
    strict: bool
    condition: str  # "a" | "b" | "c" | "d"
    detail: str

    def __str__(self) -> str:
        op = "<" if self.strict else "<="
        return f"{self.lower} {op} {self.upper}   [condition ({self.condition}): {self.detail}]"


@dataclass(frozen=True)
class Stratification:
    """The result: rules grouped into strata, lowest first."""

    strata: tuple[tuple[UpdateRule, ...], ...]
    stratum_of: dict[str, int]
    edges: tuple[PrecedenceEdge, ...]

    def __len__(self) -> int:
        return len(self.strata)

    def __iter__(self) -> Iterator[tuple[UpdateRule, ...]]:
        return iter(self.strata)

    def names(self) -> list[list[str]]:
        """Rule names per stratum — the shape the paper prints, e.g.
        ``[["rule1", "rule2"], ["rule3"], ["rule4"]]``."""
        return [[rule.name for rule in stratum] for stratum in self.strata]

    def explain(self) -> str:
        """Human-readable report of all derived constraints and strata."""
        lines = ["precedence constraints:"]
        if self.edges:
            lines.extend(f"  {edge}" for edge in self.edges)
        else:
            lines.append("  (none)")
        lines.append("strata (lowest first):")
        for index, names in enumerate(self.names()):
            lines.append(f"  stratum {index}: {{{', '.join(names)}}}")
        return "\n".join(lines)


def _rename_apart(term: Term, tag: str) -> Term:
    """Rename every variable in ``term`` so two rules never share variables.

    Preserves the variable class: a renamed :class:`VersionVar` must keep
    its any-VID unification behaviour."""
    if isinstance(term, VersionId):
        return VersionId(term.kind, _rename_apart(term.base, tag))
    if isinstance(term, Var):
        return type(term)(f"{term.name}${tag}")
    return term


def _unifies_renamed(left: Term, right: Term) -> bool:
    return unifiable(_rename_apart(left, "L"), _rename_apart(right, "R"))


def precedence_edges(
    program: UpdateProgram, *, conditions: str = "abcd"
) -> list[PrecedenceEdge]:
    """Derive the precedence constraints of the requested conditions.

    ``conditions`` is a subset of ``"abcd"`` — the paper first illustrates a
    stratification satisfying (a) alone, then refines with (b)-(d); exposing
    the subset makes that experiment (E5) reproducible.
    """
    conditions = conditions.lower()
    edges: list[PrecedenceEdge] = []
    rules = list(program)

    heads = [(rule, rule.head_version_id_term()) for rule in rules]

    for rule in rules:
        head_new = rule.head_version_id_term()
        head_target = rule.head.target

        if "a" in conditions:
            # (a): finalise the copy source before the copy.
            for sub in subterms(head_target):
                for other, other_head in heads:
                    if _unifies_renamed(other_head, sub):
                        edges.append(
                            PrecedenceEdge(
                                other.name,
                                rule.name,
                                True,
                                "a",
                                f"head {other_head} of {other.name} unifies with "
                                f"subterm {sub} of the head target of {rule.name}",
                            )
                        )

        for body_term, positive in rule.body_version_id_terms():
            if positive and "b" in conditions:
                for sub in subterms(body_term):
                    for other, other_head in heads:
                        if _unifies_renamed(other_head, sub):
                            edges.append(
                                PrecedenceEdge(
                                    other.name,
                                    rule.name,
                                    False,
                                    "b",
                                    f"head {other_head} of {other.name} unifies "
                                    f"with subterm {sub} of positive body term "
                                    f"of {rule.name}",
                                )
                            )
            if not positive and "c" in conditions:
                for sub in subterms(body_term):
                    for other, other_head in heads:
                        if _unifies_renamed(other_head, sub):
                            edges.append(
                                PrecedenceEdge(
                                    other.name,
                                    rule.name,
                                    True,
                                    "c",
                                    f"head {other_head} of {other.name} unifies "
                                    f"with subterm {sub} of negated body term "
                                    f"of {rule.name}",
                                )
                            )
            if "d" in conditions:
                # (d): destructive updates happen strictly before reads of
                # the destructed version.  A version variable may denote a
                # del/mod version, so it conservatively triggers (d) against
                # every destructive head (Section 6 extension; see
                # repro.ext.vidvars).
                for sub in subterms(body_term):
                    if isinstance(sub, VersionVar):
                        for other, other_head in heads:
                            if isinstance(other_head, VersionId) and other_head.kind in (
                                UpdateKind.DELETE,
                                UpdateKind.MODIFY,
                            ):
                                edges.append(
                                    PrecedenceEdge(
                                        other.name,
                                        rule.name,
                                        True,
                                        "d",
                                        f"{other.name} performs a destructive "
                                        f"update that the version variable "
                                        f"{sub} in {rule.name} may read",
                                    )
                                )
                        continue
                    if not isinstance(sub, VersionId):
                        continue
                    if sub.kind not in (UpdateKind.DELETE, UpdateKind.MODIFY):
                        continue
                    for other, other_head in heads:
                        if (
                            isinstance(other_head, VersionId)
                            and other_head.kind is sub.kind
                            and _unifies_renamed(other_head.base, sub.base)
                        ):
                            edges.append(
                                PrecedenceEdge(
                                    other.name,
                                    rule.name,
                                    True,
                                    "d",
                                    f"{other.name} performs a "
                                    f"{sub.kind.value}-update on {other_head.base} "
                                    f"read as {sub} in the body of {rule.name}",
                                )
                            )
    return edges


def stratify(
    program: UpdateProgram, *, conditions: str = "abcd"
) -> Stratification:
    """Compute the minimal stratification, or raise
    :class:`StratificationError` when none exists.

    The rule-precedence graph is condensed into strongly connected
    components; a strict edge inside a component is a contradiction
    (``r < r`` transitively).  Otherwise the stratum of a component is the
    longest chain of strict edges leading to it, and rules within one
    stratum keep program order for stable display.
    """
    edges = precedence_edges(program, conditions=conditions)

    graph = nx.DiGraph()
    for rule in program:
        graph.add_node(rule.name)
    for edge in edges:
        if graph.has_edge(edge.lower, edge.upper):
            graph[edge.lower][edge.upper]["strict"] |= edge.strict
        else:
            graph.add_edge(edge.lower, edge.upper, strict=edge.strict)

    condensation = nx.condensation(graph)
    component_of = condensation.graph["mapping"]

    # A strict edge inside one component means r < r transitively.
    for lower, upper, data in graph.edges(data=True):
        if data["strict"] and component_of[lower] == component_of[upper]:
            cycle = _strict_cycle(graph, lower, upper)
            raise StratificationError(
                f"no stratification satisfying conditions "
                f"({', '.join(conditions)}) exists: rules "
                f"{' -> '.join(cycle)} form a cycle through the strict "
                f"constraint {lower} < {upper}",
                cycle=tuple(cycle),
            )

    strict_between: dict[tuple[int, int], bool] = {}
    for lower, upper, data in graph.edges(data=True):
        key = (component_of[lower], component_of[upper])
        strict_between[key] = strict_between.get(key, False) or data["strict"]

    level: dict[int, int] = {}
    for component in nx.topological_sort(condensation):
        best = 0
        for predecessor in condensation.predecessors(component):
            step = 1 if strict_between.get((predecessor, component), False) else 0
            best = max(best, level[predecessor] + step)
        level[component] = best

    max_level = max(level.values(), default=0)
    buckets: list[list[UpdateRule]] = [[] for _ in range(max_level + 1)]
    stratum_of: dict[str, int] = {}
    for rule in program:  # program order within a stratum
        stratum = level[component_of[rule.name]]
        stratum_of[rule.name] = stratum
        buckets[stratum].append(rule)

    # Drop empty strata (possible when levels skip numbers is impossible by
    # construction, but keep the guard cheap and explicit).
    strata = tuple(tuple(bucket) for bucket in buckets if bucket)
    stratum_of = _renumber(strata, stratum_of)
    return Stratification(strata, stratum_of, tuple(edges))


def _renumber(
    strata: tuple[tuple[UpdateRule, ...], ...], old: dict[str, int]
) -> dict[str, int]:
    fresh: dict[str, int] = {}
    for index, stratum in enumerate(strata):
        for rule in stratum:
            fresh[rule.name] = index
    return fresh


def _strict_cycle(graph: nx.DiGraph, lower: str, upper: str) -> list[str]:
    """A witness cycle for the error message: upper ⇝ lower plus the strict
    edge lower -> upper."""
    try:
        path = nx.shortest_path(graph, upper, lower)
    except nx.NetworkXNoPath:  # pragma: no cover - same SCC guarantees a path
        path = [upper, lower]
    return path + [upper]
