"""Precompiled join plans and the rule dependency index.

Two pieces of static analysis turn the naive ``T_P`` loop of
:mod:`repro.core.evaluation` into a semi-naive, delta-driven one:

**Join plans.**  The dynamic literal chooser of :mod:`repro.core.grounding`
re-ranks the remaining body literals at *every* search node.  Its decisions,
however, depend only on *which variables are bound* — never on what they are
bound to: a literal is a filter iff its variables are a subset of the bound
set, an equality is a binder iff its unbound side is a single fresh variable
whose other side is fully bound, and the generator score counts bound
variables and checks host groundness.  The bound set after any prefix of
choices is itself statically determined, so the entire choice sequence can
be replayed once per ``(body, seed)`` pair and cached as a :class:`JoinPlan`
— the runtime search just walks the steps.  When the simulation gets stuck
(an unsafe body that only the safety checker should ever produce) the plan
is ``None`` and callers fall back to the dynamic chooser, so plans can only
affect speed, never semantics.

**Rule dependency signatures.**  After the first ``T_P`` application of a
stratum, a rule can only derive a *new* head-true ground instance if some
truth it reads changed.  :class:`RuleSignature` enumerates, per rule, the
``(method, arity)`` keys and host *shapes* (:func:`repro.core.terms.kind_chain`)
through which added or removed facts can newly enable the rule:

* a positive version-term becomes true only through an **added** fact of its
  key and shape — these are the *seed* literals of delta-restricted
  grounding;
* a negated version-term becomes true only through a **removed** fact;
* body update-terms (either polarity) mix presence and absence conditions
  over the new version, ``v*`` and the ``exists`` map, so any matching
  added *or* removed fact forces a full re-match;
* a ``del``/``mod`` head becomes true through facts added to ``v*`` (head
  truth, Section 3 definition 2), and the ``del[v].*`` form reads every
  method of ``v*`` and is re-matched whenever anything in a matching shape
  was added.

:func:`classify` folds a signature against a :class:`~repro.core.objectbase.Delta`
into one of three modes — skip the rule, re-match it only from the delta
facts matching its seed literals, or re-match it in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.caches import register_lru_cache
from repro.core.exprs import expr_variables
from repro.core.facts import EXISTS, Fact
from repro.core.terms import (
    Oid,
    Term,
    UpdateKind,
    Var,
    VersionId,
    VersionVar,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.objectbase import Delta
    from repro.core.rules import UpdateRule

__all__ = [
    "FILTER",
    "BINDER",
    "GENERATE",
    "PlanStep",
    "JoinPlan",
    "compile_plan",
    "RuleSignature",
    "QuerySignature",
    "body_signature",
    "program_signature",
    "RulePlan",
    "rule_plan",
    "classify",
    "SKIP",
    "SEED",
    "FULL",
]

MethodKey = tuple[str, int]
Shape = tuple[str, ...]

#: Plan step actions.
FILTER, BINDER, GENERATE = 0, 1, 2

#: Classification of a rule against an iteration's delta.
SKIP, SEED, FULL = "skip", "seed", "full"


@dataclass(frozen=True)
class PlanStep:
    """One precompiled search step: evaluate ``literal`` as ``action``.

    ``verify`` marks generate steps whose candidates must be re-checked
    against the authoritative truth functions.  Version-term generators are
    *exact* — the candidate fact comes from the base's own index and the
    pattern matched every position of it, so the substituted atom is the
    fact itself and membership holds by construction; re-verification is
    skipped for them.  Update-term generators only approximate definition 3
    of Section 3 and keep the re-check.

    ``index_cols`` is the generator's *access-path metadata*, chosen at
    plan-compile time: the argument columns (``0 .. arity-1``; ``-1`` is
    the result position) that are statically known to be bound — a constant
    of the atom, or a variable bound by an earlier step or the seed — when
    this step runs.  The runtime generator prefers the host index (when the
    host is bound), then the smallest of these per-column hash buckets
    (:meth:`~repro.core.objectbase.ObjectBase.iter_facts_by_arg`), and only
    falls back to the full ``(method, arity)`` scan when nothing is bound.
    """

    literal: Literal
    variables: frozenset[Var]
    action: int
    verify: bool = True
    index_cols: tuple[int, ...] = ()


@dataclass(frozen=True)
class JoinPlan:
    """A static literal ordering for one body under a fixed seed binding.

    ``key_vars`` is the deterministic variable order used for duplicate
    elimination of complete bindings; ``generator_count`` lets the matcher
    skip deduplication entirely when at most one generator step exists (two
    distinct generated facts can never produce the same binding, so
    duplicates are impossible).
    """

    steps: tuple[PlanStep, ...]
    generator_count: int
    key_vars: tuple[Var, ...]


def _term_var(term: Term) -> Var | None:
    while isinstance(term, VersionId):
        term = term.base
    return term if isinstance(term, Var) else None


def var_sort_key(var: Var) -> tuple[str, str]:
    """Deterministic variable order for dedup keys.  The class name breaks
    ties between a ``Var`` and a ``VersionVar`` of the same name (distinct
    variables with equal names and hashes), so every plan of the same body
    — and the dynamic fallback — agrees on the key order."""
    return (var.name, var.__class__.__name__)


def _binder_target(atom: BuiltinAtom, bound: set[Var]) -> Var | None:
    """The variable an ``X = e`` built-in would bind under ``bound`` —
    mirrors ``grounding._equality_ready`` direction order exactly."""
    for target, source in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            isinstance(target, Var)
            and target not in bound
            and all(v in bound for v in expr_variables(source))
        ):
            return target
    return None


def _static_generator_score(atom, variables: frozenset[Var], bound: set[Var]) -> int:
    """``grounding._generator_score`` with the binding replaced by the
    statically known bound-variable set (they agree by construction)."""
    bound_count = sum(1 for v in variables if v in bound)
    host = atom.host if isinstance(atom, VersionAtom) else atom.target
    host_var = _term_var(host)
    host_ground = host_var is None or host_var in bound
    penalty = 1 if isinstance(atom, UpdateAtom) else 0
    return bound_count * 4 + (2 if host_ground else 0) - penalty


def compile_plan(
    body: tuple[Literal, ...], seed_vars: Iterable[Var] = ()
) -> JoinPlan | None:
    """Replay the dynamic chooser over ``body`` starting from ``seed_vars``
    bound; ``None`` when the simulation gets stuck (unsafe body — callers
    fall back to the dynamic search, which reports the error)."""
    remaining: list[tuple[Literal, frozenset[Var]]] = [
        (literal, literal.variables) for literal in body
    ]
    bound: set[Var] = set(seed_vars)
    key_vars: set[Var] = set(bound)
    for _, variables in remaining:
        key_vars |= variables
    steps: list[PlanStep] = []
    generators = 0
    while remaining:
        choice = _choose_static(remaining, bound)
        if choice is None:
            return None
        index, action, binds = choice
        literal, variables = remaining.pop(index)
        verify = action != GENERATE or not isinstance(literal.atom, VersionAtom)
        index_cols = (
            _bound_columns(literal.atom, bound) if action == GENERATE else ()
        )
        steps.append(PlanStep(literal, variables, action, verify, index_cols))
        bound |= binds
        if action == GENERATE:
            generators += 1
    # key_vars covers all literals, and every bound variable belongs to
    # some literal, so the sorted order is a stable dedup key shared by all
    # plans of the same body (seeded and full alike).
    order = tuple(sorted(key_vars, key=var_sort_key))
    return JoinPlan(tuple(steps), generators, order)


def _bound_columns(atom, bound: set[Var]) -> tuple[int, ...]:
    """The argument/result columns of a generator atom that are statically
    bound when the step runs (constants count) — the candidate secondary
    access paths.  Only atoms whose generator reads a straight fact index
    qualify: version-terms, and ``ins`` update-terms (whose truth is plain
    membership on the ``ins(v)`` host); ``del``/``mod`` generators walk the
    exists map instead and get no column metadata.
    """
    if isinstance(atom, VersionAtom):
        args, result = atom.args, atom.result
    elif (
        isinstance(atom, UpdateAtom)
        and atom.kind is UpdateKind.INSERT
        and not atom.delete_all
    ):
        args, result = atom.args, atom.result
    else:
        return ()
    columns = [
        position
        for position, arg in enumerate(args)
        if isinstance(arg, Oid) or (isinstance(arg, Var) and arg in bound)
    ]
    if isinstance(result, Oid) or (isinstance(result, Var) and result in bound):
        columns.append(-1)
    return tuple(columns)


def _choose_static(
    remaining: list[tuple[Literal, frozenset[Var]]], bound: set[Var]
) -> tuple[int, int, frozenset[Var]] | None:
    best: tuple[int, frozenset[Var]] | None = None
    best_score = float("-inf")
    for i, (literal, variables) in enumerate(remaining):
        if variables <= bound:
            return i, FILTER, frozenset()
        atom = literal.atom
        if isinstance(atom, BuiltinAtom):
            if literal.positive and atom.op == "=":
                target = _binder_target(atom, bound)
                if target is not None:
                    return i, BINDER, frozenset((target,))
            continue
        if not literal.positive:
            continue
        score = _static_generator_score(atom, variables, bound)
        if score > best_score:
            best_score = score
            best = (i, variables)
    if best is None:
        return None
    index, variables = best
    return index, GENERATE, frozenset(variables - bound)


# ----------------------------------------------------------------------
# rule dependency signatures
# ----------------------------------------------------------------------

#: A trigger ``(key, shape_prefix, exact)``: it matches a changed fact when
#: the fact's ``(method, arity)`` equals ``key`` (``None`` = any key) and
#: the fact's host shape equals the prefix (``exact``) or starts with it
#: (version-variable patterns, which reach hosts of any depth).
Trigger = tuple[MethodKey | None, Shape, bool]

#: A seed ``(body position, key, shape_prefix, exact)`` for a positive
#: version-term literal.
Seed = tuple[int, MethodKey, Shape, bool]


def _pattern_shape(term: Term) -> tuple[Shape, bool]:
    kinds: list[str] = []
    while isinstance(term, VersionId):
        kinds.append(term.kind.value)
        term = term.base
    return tuple(kinds), not isinstance(term, VersionVar)


def _v_star_triggers(keys: Iterable[MethodKey | None], target: Term) -> list[Trigger]:
    """Triggers for facts readable through ``v*(target)`` — every suffix
    shape of the target pattern (``v*`` is a subterm of the ground VID)."""
    prefix, exact = _pattern_shape(target)
    triggers: list[Trigger] = []
    if not exact:
        # A version variable reaches hosts of any shape: one wildcard.
        return [(key, (), False) for key in keys]
    for i in range(len(prefix) + 1):
        for key in keys:
            triggers.append((key, prefix[i:], True))
    return triggers


def _body_covers_head_truth(rule: "UpdateRule") -> bool:
    """True when a positive body version-term pins exactly the fact the
    ``del``/``mod`` head's truth condition reads (same target term, method,
    arguments and old result) — e.g. the paper's rule 1: body
    ``E.sal -> S`` covers head ``mod[E].sal -> (S, S2)``."""
    head = rule.head
    for literal in rule.body:
        atom = literal.atom
        if (
            literal.positive
            and isinstance(atom, VersionAtom)
            and atom.host == head.target
            and atom.method == head.method
            and atom.args == head.args
            and atom.result == head.result
        ):
            return True
    return False


@dataclass(frozen=True)
class RuleSignature:
    """What a rule reads, keyed for the dependency check (see module doc)."""

    seeds: tuple[Seed, ...]
    added_triggers: tuple[Trigger, ...]
    removed_triggers: tuple[Trigger, ...]


def rule_signature(rule: "UpdateRule") -> RuleSignature:
    seeds: list[Seed] = []
    added: list[Trigger] = []
    removed: list[Trigger] = []

    for position, literal in enumerate(rule.body):
        atom = literal.atom
        if isinstance(atom, VersionAtom):
            key = (atom.method, len(atom.args))
            prefix, exact = _pattern_shape(atom.host)
            if literal.positive:
                seeds.append((position, key, prefix, exact))
            else:
                removed.append((key, prefix, exact))
        elif isinstance(atom, UpdateAtom):
            key = (atom.method, len(atom.args))
            prefix, exact = _pattern_shape(atom.target)
            new_shape: Trigger = (key, (atom.kind.value, *prefix), exact)
            exists_new: Trigger = ((EXISTS, 0), (atom.kind.value, *prefix), exact)
            triggers = [new_shape, exists_new]
            triggers += _v_star_triggers([key, (EXISTS, 0)], atom.target)
            # Update-term truth mixes presence and absence conditions
            # (Section 3, definition 3), so either direction of change can
            # newly enable the literal, whichever its polarity.
            added.extend(triggers)
            removed.extend(triggers)

    head = rule.head
    if head.delete_all:
        # ``del[v].*`` reads every method-application of ``v*``: any added
        # fact in a matching shape changes head truth or the expansion.
        added.extend(_v_star_triggers([None], head.target))
    elif head.kind is not UpdateKind.INSERT:
        key = (head.method, len(head.args))
        triggers = _v_star_triggers([key, (EXISTS, 0)], head.target)
        prefix, exact = _pattern_shape(head.target)
        if exact and _body_covers_head_truth(rule):
            # Head truth (definition 2) asks for ``v*(t).m@a -> r``; when an
            # identical positive body literal pins the same fact on ``t``
            # itself, an added fact at ``t``'s own shape can only create a
            # *new body binding* (seeded/classified elsewhere), never flip
            # the head of an existing one — unless ``v*`` sits at a deeper
            # subterm, whose shapes stay triggered below.
            triggers = [
                t for t in triggers if t != (key, prefix, True)
            ]
        added.extend(triggers)

    return RuleSignature(tuple(seeds), tuple(dict.fromkeys(added)), tuple(dict.fromkeys(removed)))


@dataclass(frozen=True)
class QuerySignature:
    """What a conjunctive *query* body reads, keyed for memo invalidation.

    Unlike :class:`RuleSignature` there is no head and no seed/FULL split:
    a cached answer set can change whenever any fact a body literal reads —
    positively or under negation — is added *or* removed, so one trigger
    list is checked against both directions of a
    :class:`~repro.core.objectbase.Delta`.  A delta that fires no trigger
    provably leaves the answers untouched, which is what lets the prepared
    -query layer carry memoized results across store revisions.
    """

    triggers: tuple[Trigger, ...]

    def affected_by(self, delta: "Delta") -> bool:
        """True when ``delta`` may change the query's answers."""
        added_index = delta.added_index()
        added_shapes = delta.added_shapes()
        removed_index = delta.removed_index()
        removed_shapes = delta.removed_shapes()
        for trigger in self.triggers:
            if _trigger_fires(trigger, added_index, added_shapes):
                return True
            if _trigger_fires(trigger, removed_index, removed_shapes):
                return True
        return False


def program_signature(program) -> QuerySignature:
    """The read footprint of a whole :class:`~repro.core.rules.UpdateProgram`,
    as one symmetric :class:`QuerySignature`.

    This is the *transaction-validation* view of a program: the union, over
    its rules, of every trigger through which a changed fact could alter
    what the program derives — body reads (either polarity), seed literals,
    and the head-truth reads of ``del``/``mod`` heads (all already
    enumerated by :func:`rule_signature`).  Unlike :func:`classify`, which
    asks the semi-naive question ("can this iteration's delta produce *new*
    head instances?"), a validator must treat added and removed facts
    symmetrically: a removed fact that a positive body literal matched can
    change the outcome just as an added one can.  The optimistic-commit
    protocol of :mod:`repro.server.service` intersects this signature with
    the deltas committed since a transaction's pinned revision.
    """
    triggers: list[Trigger] = []
    for rule in program:
        signature = rule_signature(rule)
        triggers.extend(signature.added_triggers)
        triggers.extend(signature.removed_triggers)
        for _position, key, prefix, exact in signature.seeds:
            triggers.append((key, prefix, exact))
        # Seed literals are only "added" triggers in the semi-naive sense;
        # symmetric validation also needs them against removals, which the
        # single trigger list of QuerySignature.affected_by provides.
    return QuerySignature(tuple(dict.fromkeys(triggers)))


def body_signature(body: tuple[Literal, ...]) -> QuerySignature:
    """The :class:`QuerySignature` of a bare conjunctive body."""
    triggers: list[Trigger] = []
    for literal in body:
        atom = literal.atom
        if isinstance(atom, VersionAtom):
            key = (atom.method, len(atom.args))
            prefix, exact = _pattern_shape(atom.host)
            triggers.append((key, prefix, exact))
        elif isinstance(atom, UpdateAtom):
            key = (atom.method, len(atom.args)) if atom.method else None
            prefix, exact = _pattern_shape(atom.target)
            triggers.append((key, (atom.kind.value, *prefix), exact))
            triggers.append(((EXISTS, 0), (atom.kind.value, *prefix), exact))
            triggers.extend(_v_star_triggers([key, (EXISTS, 0)], atom.target))
        # Built-ins read no facts: no trigger.
    return QuerySignature(tuple(dict.fromkeys(triggers)))


class RulePlan:
    """Everything precompiled for one rule: its dependency signature, the
    full-body join plan, and (lazily) one plan per seed literal."""

    __slots__ = ("rule", "signature", "full_plan", "_seed_plans")

    def __init__(self, rule: "UpdateRule"):
        self.rule = rule
        self.signature = rule_signature(rule)
        self.full_plan = compile_plan(rule.body)
        self._seed_plans: dict[int, JoinPlan | None] = {}

    def seed_plan(self, position: int) -> JoinPlan | None:
        """The plan for the body minus the seed literal at ``position``,
        compiled with the seed literal's variables already bound."""
        try:
            return self._seed_plans[position]
        except KeyError:
            body = tuple(
                literal
                for index, literal in enumerate(self.rule.body)
                if index != position
            )
            plan = compile_plan(body, self.rule.body[position].variables)
            self._seed_plans[position] = plan
            return plan


@lru_cache(maxsize=4096)
def rule_plan(rule: "UpdateRule") -> RulePlan:
    """The cached :class:`RulePlan` for ``rule`` (rules are frozen values,
    so plans survive across iterations, strata and evaluations)."""
    return RulePlan(rule)


register_lru_cache("plans.rule_plan", rule_plan)


# ----------------------------------------------------------------------
# delta classification
# ----------------------------------------------------------------------


def _shapes_match(shapes, prefix: Shape, exact: bool) -> bool:
    if exact:
        return prefix in shapes
    n = len(prefix)
    if n == 0:
        return bool(shapes)
    return any(s[:n] == prefix for s in shapes)


def _trigger_fires(trigger: Trigger, index, all_shapes) -> bool:
    key, prefix, exact = trigger
    if key is None:
        return _shapes_match(all_shapes, prefix, exact)
    shapes = index.get(key)
    if not shapes:
        return False
    return _shapes_match(shapes, prefix, exact)


def classify(
    signature: RuleSignature, delta: "Delta"
) -> tuple[str, tuple[int, ...]]:
    """Fold ``signature`` against ``delta``: ``(FULL, ())``, ``(SKIP, ())``
    or ``(SEED, seed_positions)`` with the body positions whose seed
    literals match at least one added fact."""
    added_index = delta.added_index()
    removed_index = delta.removed_index()
    added_shapes = delta.added_shapes()
    for trigger in signature.added_triggers:
        if _trigger_fires(trigger, added_index, added_shapes):
            return FULL, ()
    removed_shapes = delta.removed_shapes()
    for trigger in signature.removed_triggers:
        if _trigger_fires(trigger, removed_index, removed_shapes):
            return FULL, ()
    positions = tuple(
        position
        for position, key, prefix, exact in signature.seeds
        if (buckets := added_index.get(key)) and _shapes_match(buckets, prefix, exact)
    )
    if positions:
        return SEED, positions
    return SKIP, ()


def seed_facts(
    delta: "Delta", signature: RuleSignature, position: int
) -> list[Fact]:
    """The added facts a seed literal at ``position`` can match, by key and
    host shape."""
    for pos, key, prefix, exact in signature.seeds:
        if pos != position:
            continue
        buckets = delta.added_index().get(key)
        if not buckets:
            return []
        if exact:
            return buckets.get(prefix, [])
        n = len(prefix)
        facts: list[Fact] = []
        for shape, bucket in buckets.items():
            if shape[:n] == prefix:
                facts.extend(bucket)
        return facts
    return []
