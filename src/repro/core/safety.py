"""Rule safety in the sense of [Ull88] (required by Section 2.1).

The paper requires safe rules: although rules are ∀-quantified over the set
``O`` of all OIDs, evaluation must only ever consider finitely many
instantiations.  A rule is *safe* when every variable is **limited**:

* variables occurring in a positive version-term or positive update-term of
  the body are limited (they are matched against the finite object base);
* a variable ``X`` is limited by a positive built-in ``X = e`` (or ``e = X``)
  once every variable of ``e`` is limited;

and every variable of the rule — head variables, variables of negated
literals and of comparisons — must be limited.  Safety also guarantees the
paper's finiteness claim: head version-id-terms have fixed functor depth, so
a safe program can only derive finitely many new versions.
"""

from __future__ import annotations

from repro.core.atoms import BuiltinAtom, UpdateAtom, VersionAtom
from repro.core.errors import SafetyError
from repro.core.exprs import expr_variables
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import Var

__all__ = ["limited_variables", "check_rule_safety", "check_program_safety", "is_safe"]


def limited_variables(rule: UpdateRule) -> frozenset[Var]:
    """The set of limited variables of ``rule`` (see module docstring)."""
    limited: set[Var] = set()
    equalities: list[BuiltinAtom] = []
    for literal in rule.body:
        atom = literal.atom
        if not literal.positive:
            continue
        if isinstance(atom, (VersionAtom, UpdateAtom)):
            limited |= atom.variables
        elif isinstance(atom, BuiltinAtom) and atom.op == "=":
            equalities.append(atom)

    # Propagate through '=' chains to a fixpoint, e.g. S' = S * 1.1 limits S'
    # once S is limited, and T = S' + 1 then limits T.
    changed = True
    while changed:
        changed = False
        for eq in equalities:
            for target, source in ((eq.left, eq.right), (eq.right, eq.left)):
                if (
                    isinstance(target, Var)
                    and target not in limited
                    and expr_variables(source) <= limited
                ):
                    limited.add(target)
                    changed = True
    return frozenset(limited)


def check_rule_safety(rule: UpdateRule) -> None:
    """Raise :class:`SafetyError` when ``rule`` is unsafe."""
    unlimited = rule.variables - limited_variables(rule)
    if unlimited:
        raise SafetyError(
            rule.name or str(rule), tuple(sorted(v.name for v in unlimited))
        )


def is_safe(rule: UpdateRule) -> bool:
    """Predicate form of :func:`check_rule_safety`."""
    return not (rule.variables - limited_variables(rule))


def check_program_safety(program: UpdateProgram) -> None:
    """Raise on the first unsafe rule of ``program``."""
    for rule in program:
        check_rule_safety(rule)
