"""Evaluation traces — the machinery behind the Figure 2 reproduction.

Figure 2 of the paper shows, per evaluation stage, the states of the
versions of ``phil`` and ``bob``.  :class:`EvaluationTrace` records exactly
that: per stratum and iteration, the rule instances that fired, the versions
created, and (optionally) full object-base snapshots, and renders them in a
paper-style textual form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.consequence import FiredInstance
from repro.core.facts import EXISTS
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, VersionId, depth, object_of

__all__ = [
    "IterationRecord",
    "StratumRecord",
    "EvaluationTrace",
    "render_version_chains",
]


@dataclass
class IterationRecord:
    """One application of ``T_P`` within a stratum."""

    index: int
    fired: tuple[FiredInstance, ...]
    new_versions: tuple[VersionId, ...]
    changed: bool
    copies: int
    snapshot: ObjectBase | None = None


@dataclass
class StratumRecord:
    """All iterations of one stratum, with the rule names it contains."""

    index: int
    rule_names: tuple[str, ...]
    iterations: list[IterationRecord] = field(default_factory=list)

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)


@dataclass
class EvaluationTrace:
    """The full history of one bottom-up evaluation."""

    strata: list[StratumRecord] = field(default_factory=list)
    snapshots: bool = False

    # -- recording ---------------------------------------------------------
    def open_stratum(self, index: int, rule_names: tuple[str, ...]) -> StratumRecord:
        record = StratumRecord(index, rule_names)
        self.strata.append(record)
        return record

    # -- statistics ----------------------------------------------------------
    @property
    def total_iterations(self) -> int:
        return sum(s.iteration_count for s in self.strata)

    @property
    def total_fired(self) -> int:
        return sum(len(i.fired) for s in self.strata for i in s.iterations)

    @property
    def total_copies(self) -> int:
        return sum(i.copies for s in self.strata for i in s.iterations)

    def versions_created(self) -> list[VersionId]:
        created: list[VersionId] = []
        for stratum in self.strata:
            for iteration in stratum.iterations:
                created.extend(iteration.new_versions)
        return created

    # -- rendering -----------------------------------------------------------
    def render(self, *, objects: tuple[Oid, ...] = ()) -> str:
        """A Figure-2-style textual trace.

        When ``objects`` is given and snapshots were recorded, the states of
        those objects' versions are printed after each iteration — this is
        what the E2 benchmark compares against the paper's Figure 2.
        """
        lines: list[str] = []
        for stratum in self.strata:
            lines.append(
                f"stratum {stratum.index}: {{{', '.join(stratum.rule_names)}}}"
            )
            for iteration in stratum.iterations:
                fired = ", ".join(str(f) for f in iteration.fired) or "(nothing fired)"
                lines.append(f"  iteration {iteration.index}: {fired}")
                if iteration.new_versions:
                    versions = ", ".join(str(v) for v in iteration.new_versions)
                    lines.append(f"    new versions: {versions}")
                if iteration.snapshot is not None and objects:
                    lines.extend(
                        _render_states(iteration.snapshot, objects, indent="    ")
                    )
        return "\n".join(lines)


def render_version_chains(base: ObjectBase, *, arrow: str = " => ") -> str:
    """A Figure-1-style rendering of each object's version chain.

    For every object of ``base``, prints the linear chain of its versions
    in creation order, e.g.::

        phil: phil => mod(phil) => ins(mod(phil))
        bob:  bob => mod(bob) => del(mod(bob))

    Raises :class:`~repro.core.errors.VersionLinearityError` on non-linear
    results (chains only exist for version-linear bases, Section 5).
    """
    from repro.core.linearity import check_version_linear

    check_version_linear(base)
    chains: dict[Oid, list] = {}
    for version in base.existing_versions():
        chains.setdefault(object_of(version), []).append(version)
    lines = []
    for owner in sorted(chains, key=str):
        chain = sorted(chains[owner], key=depth)
        lines.append(f"{owner}: " + arrow.join(str(v) for v in chain))
    return "\n".join(lines)


def _render_states(base: ObjectBase, objects: tuple[Oid, ...], indent: str) -> list[str]:
    lines: list[str] = []
    wanted = set(objects)
    versions = sorted(
        (v for v in base.existing_versions() if object_of(v) in wanted),
        key=lambda v: (str(object_of(v)), depth(v)),
    )
    for version in versions:
        applications = sorted(
            (f for f in base.state_of(version) if f.method != EXISTS),
            key=lambda f: (f.method, tuple(str(a) for a in f.args), str(f.result)),
        )
        body = "; ".join(
            f"{f.method}"
            + (f"@{','.join(str(a) for a in f.args)}" if f.args else "")
            + f" -> {f.result}"
            for f in applications
        )
        lines.append(f"{indent}{version}: {{{body}}}")
    return lines
