"""Atoms and literals of the update language (Section 2.1).

An atom is one of

* a **version-term** ``V.m@A1,...,Ak -> R`` — refers to a version and asks
  for a property of its state (:class:`VersionAtom`);
* an **update-term** ``ins[V].m->R`` / ``del[V].m->R`` / ``mod[V].m->(R,R')``
  — in a rule head it *initiates* the state transition ``V ⇒ α(V)``, in a
  rule body it *tests* whether that transition has occurred
  (:class:`UpdateAtom`);
* a **built-in** comparison between arithmetic expressions
  (:class:`BuiltinAtom`).

Bodies consist of positive or negated atoms (:class:`Literal`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.errors import ProgramError, TermError
from repro.core.exprs import Expr, expr_variables
from repro.core.facts import EXISTS, Fact
from repro.core.terms import (
    Oid,
    Term,
    UpdateKind,
    Var,
    VersionId,
    VersionVar,
    is_object_id_term,
    is_version_id_term,
    variables_of,
    wrap,
)
from repro.unify.substitution import apply_term, resolve

__all__ = [
    "VersionAtom",
    "UpdateAtom",
    "BuiltinAtom",
    "Atom",
    "Literal",
    "COMPARISON_OPS",
]

#: Comparison operators of built-in atoms.  ``=`` doubles as a binding
#: primitive when one side is a single unbound variable.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


def _check_object_id_terms(items, what: str) -> None:
    for item in items:
        if not is_object_id_term(item) or isinstance(item, VersionVar):
            raise TermError(
                f"{what} must be object-id-terms (footnote 1 of the paper: "
                f"versions are not allowed on argument/result positions), "
                f"got {item}"
            )


@dataclass(frozen=True, slots=True)
class VersionAtom:
    """A version-term ``host.method@args -> result``.

    ``host`` is a version-id-term (possibly with a variable innermost);
    ``args`` and ``result`` are object-id-terms.
    """

    host: Term
    method: str
    args: tuple[Term, ...]
    result: Term

    def __post_init__(self) -> None:
        if not is_version_id_term(self.host):
            raise TermError(f"atom host must be a version-id-term, got {self.host}")
        if not self.method:
            raise TermError("method name must be non-empty")
        _check_object_id_terms(self.args, "method arguments")
        _check_object_id_terms((self.result,), "method results")

    # -- structural helpers -------------------------------------------------
    @property
    def variables(self) -> frozenset[Var]:
        names = set(variables_of(self.host))
        for arg in self.args:
            names |= variables_of(arg)
        names |= variables_of(self.result)
        return frozenset(names)

    def is_ground(self) -> bool:
        return not self.variables

    def substitute(self, binding) -> "VersionAtom":
        return VersionAtom(
            apply_term(self.host, binding),
            self.method,
            tuple(apply_term(a, binding) for a in self.args),
            apply_term(self.result, binding),
        )

    def to_fact(self) -> Fact:
        """Convert a ground version-atom to an object-base fact."""
        if not self.is_ground():
            raise TermError(f"atom {self} is not ground")
        return Fact(self.host, self.method, self.args, self.result)  # type: ignore[arg-type]

    def __str__(self) -> str:
        arg_str = f"@{','.join(str(a) for a in self.args)}" if self.args else ""
        return f"{self.host}.{self.method}{arg_str} -> {self.result}"


@dataclass(frozen=True, slots=True)
class UpdateAtom:
    """An update-term ``kind[target].method@args -> result`` (Section 2.1).

    * ``kind`` is one of ins/del/mod.
    * ``target`` is the version-id-term the update is applied **to**; the
      resulting version is ``kind(target)`` (:meth:`new_version`).
    * For ``mod`` both ``result`` (the old value) and ``result2`` (the new
      value) are present.
    * ``delete_all`` models the paper's ``del[v].`` shorthand — "delete all
      method-applications of the respective version"; it is only legal in
      rule heads and carries no method.
    """

    kind: UpdateKind
    target: Term
    method: str | None
    args: tuple[Term, ...] = ()
    result: Term | None = None
    result2: Term | None = None
    delete_all: bool = False

    def __post_init__(self) -> None:
        if not is_version_id_term(self.target):
            raise TermError(
                f"update target must be a version-id-term, got {self.target}"
            )
        if self.delete_all:
            if self.kind is not UpdateKind.DELETE:
                raise ProgramError("the delete-all form exists only for del[..]")
            if self.method is not None or self.args or self.result is not None:
                raise ProgramError("del[v].* carries no method application")
            return
        if not self.method:
            raise TermError("update-term needs a method name")
        if self.method == EXISTS:
            raise ProgramError(
                "the system method 'exists' cannot be updated (Section 3)"
            )
        _check_object_id_terms(self.args, "method arguments")
        if self.result is None:
            raise TermError("update-term needs a result term")
        _check_object_id_terms((self.result,), "method results")
        if self.kind is UpdateKind.MODIFY:
            if self.result2 is None:
                raise TermError("mod[..].m -> (r, r') needs both results")
            _check_object_id_terms((self.result2,), "method results")
        elif self.result2 is not None:
            raise TermError("only mod[..] carries a second result")

    # -- structural helpers -------------------------------------------------
    def new_version(self) -> VersionId:
        """The version-id-term ``kind(target)`` created by this update."""
        return wrap(self.kind, self.target)

    @property
    def variables(self) -> frozenset[Var]:
        names = set(variables_of(self.target))
        for arg in self.args:
            names |= variables_of(arg)
        if self.result is not None:
            names |= variables_of(self.result)
        if self.result2 is not None:
            names |= variables_of(self.result2)
        return frozenset(names)

    def is_ground(self) -> bool:
        return not self.variables

    def substitute(self, binding) -> "UpdateAtom":
        return UpdateAtom(
            self.kind,
            apply_term(self.target, binding),
            self.method,
            tuple(apply_term(a, binding) for a in self.args),
            None if self.result is None else apply_term(self.result, binding),
            None if self.result2 is None else apply_term(self.result2, binding),
            self.delete_all,
        )

    def __str__(self) -> str:
        if self.delete_all:
            return f"{self.kind.value}[{self.target}].*"
        arg_str = f"@{','.join(str(a) for a in self.args)}" if self.args else ""
        if self.kind is UpdateKind.MODIFY:
            return (
                f"{self.kind.value}[{self.target}].{self.method}{arg_str} -> "
                f"({self.result}, {self.result2})"
            )
        return f"{self.kind.value}[{self.target}].{self.method}{arg_str} -> {self.result}"


@dataclass(frozen=True, slots=True)
class BuiltinAtom:
    """A comparison between arithmetic expressions, e.g. ``S' = S * 1.1``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise TermError(f"unknown comparison operator {self.op!r}")

    @property
    def variables(self) -> frozenset[Var]:
        return expr_variables(self.left) | expr_variables(self.right)

    def is_ground(self) -> bool:
        return not self.variables

    def substitute(self, binding) -> "BuiltinAtom":
        return BuiltinAtom(
            self.op,
            _substitute_expr(self.left, binding),
            _substitute_expr(self.right, binding),
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def _substitute_expr(expr: Expr, binding) -> Expr:
    from repro.core.exprs import BinOp, Neg  # local to avoid import cycle noise

    if isinstance(expr, Var):
        value = resolve(expr, binding)
        return value if isinstance(value, (Oid, Var)) else expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _substitute_expr(expr.left, binding),
            _substitute_expr(expr.right, binding),
        )
    if isinstance(expr, Neg):
        return Neg(_substitute_expr(expr.operand, binding))
    return expr


#: Any atom of the language.
Atom = Union[VersionAtom, UpdateAtom, BuiltinAtom]


@dataclass(frozen=True, slots=True)
class Literal:
    """A positive or negated atom occurring in a rule body."""

    atom: Atom
    positive: bool = True

    @property
    def variables(self) -> frozenset[Var]:
        return self.atom.variables

    def is_ground(self) -> bool:
        return self.atom.is_ground()

    def substitute(self, binding) -> "Literal":
        return Literal(self.atom.substitute(binding), self.positive)

    def negate(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"
