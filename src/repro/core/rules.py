"""Update-rules and update-programs (Section 2.1).

An update-rule is ``H <= B1 ^ ... ^ Bk`` where ``H`` is an update-term and
each ``Bi`` is a positive or negated atom.  A rule with an empty body is an
update-fact.  A set of update-rules forms an update-program; its evaluation
is the update-process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

from repro.core.atoms import Literal, UpdateAtom, VersionAtom
from repro.core.errors import ProgramError
from repro.core.terms import Term, UpdateKind, Var, VersionId

__all__ = ["UpdateRule", "UpdateProgram"]


@dataclass(frozen=True)
class UpdateRule:
    """A single update-rule with an optional human-readable name.

    The name is used in error messages, stratification reports and traces;
    unnamed rules get positional names (``rule3``) from the program.
    """

    head: UpdateAtom
    body: tuple[Literal, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.head, UpdateAtom):
            raise ProgramError(
                f"rule heads must be update-terms (Section 2.1), got "
                f"{type(self.head).__name__}"
            )

    # -- structural helpers --------------------------------------------------
    @cached_property
    def variables(self) -> frozenset[Var]:
        """All variables of the rule (cached — rules are immutable and the
        matcher, safety checker and planner all ask repeatedly)."""
        names = set(self.head.variables)
        for literal in self.body:
            names |= literal.variables
        return frozenset(names)

    @property
    def is_fact(self) -> bool:
        """True for update-facts (k = 0)."""
        return not self.body

    def substitute(self, binding) -> "UpdateRule":
        """A (possibly ground) instance of this rule."""
        return UpdateRule(
            self.head.substitute(binding),
            tuple(literal.substitute(binding) for literal in self.body),
            self.name,
        )

    def positive_literals(self) -> Iterator[Literal]:
        return (lit for lit in self.body if lit.positive)

    def negative_literals(self) -> Iterator[Literal]:
        return (lit for lit in self.body if not lit.positive)

    def body_version_id_terms(self) -> Iterator[tuple[Term, bool]]:
        """Yield ``(version-id-term, positive)`` for every body atom.

        Update-terms contribute their *created* version ``α(V)`` — Section 4
        prescribes replacing every ``[V]`` by ``(V)`` before deriving the
        stratification — and version-terms contribute their host.
        """
        for literal in self.body:
            atom = literal.atom
            if isinstance(atom, VersionAtom):
                yield atom.host, literal.positive
            elif isinstance(atom, UpdateAtom):
                yield atom.new_version(), literal.positive

    def head_version_id_term(self) -> VersionId:
        """The head's created version ``α(V)`` (after the ``[V] → (V)``
        replacement of Section 4)."""
        return self.head.new_version()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = " ^ ".join(str(lit) for lit in self.body)
        return f"{self.head} <= {body}."


class UpdateProgram:
    """An ordered collection of update-rules.

    Order is only used for naming and display; the semantics (Sections 3-5)
    depends on the rule *set* and the derived stratification.
    """

    def __init__(self, rules: Iterable[UpdateRule], name: str = "program"):
        self.name = name
        named: list[UpdateRule] = []
        seen: set[str] = set()
        for index, rule in enumerate(rules, start=1):
            rule_name = rule.name or f"rule{index}"
            if rule_name in seen:
                raise ProgramError(f"duplicate rule name {rule_name!r}")
            seen.add(rule_name)
            if rule.name != rule_name:
                rule = UpdateRule(rule.head, rule.body, rule_name)
            named.append(rule)
        self.rules: tuple[UpdateRule, ...] = tuple(named)

    def __iter__(self) -> Iterator[UpdateRule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __getitem__(self, index: int) -> UpdateRule:
        return self.rules[index]

    def rule_named(self, name: str) -> UpdateRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    @property
    def variables(self) -> frozenset[Var]:
        names: set[Var] = set()
        for rule in self.rules:
            names |= rule.variables
        return frozenset(names)

    def update_kinds_used(self) -> frozenset[UpdateKind]:
        return frozenset(rule.head.kind for rule in self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdateProgram({self.name!r}, {len(self.rules)} rules)"
