"""Exception hierarchy for the update-language engine.

Every error raised by :mod:`repro.core` derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while the
engine keeps the specific failure modes of the paper distinguishable:

* :class:`StratificationError` — the program violates conditions (a)-(d) of
  Section 4 (a cycle in the rule-precedence graph contains a strict edge).
* :class:`VersionLinearityError` — the run-time check of Section 5 found two
  incomparable versions of the same object.
* :class:`SafetyError` — a rule is unsafe in the sense of [Ull88] (a variable
  is not limited by the positive body).
* :class:`EvaluationLimitError` — the per-stratum iteration cap was exceeded
  (possible with arithmetic in recursive rules; see DESIGN.md, D7);
  :class:`VersionDepthError` is its depth-guard variant.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the reproduction library."""


class TermError(ReproError):
    """An ill-formed term was constructed or used (e.g. a non-ground VID
    where a ground one is required, or ``object_of`` on a variable)."""


class FrozenBaseError(ReproError):
    """A mutation was attempted on a frozen (shared, immutable) object base.

    Frozen bases are the structural-sharing currency of the versioned store:
    ``VersionedStore.current`` / ``as_of`` hand out the *same* object to every
    reader instead of copying, which is only sound because mutation is
    rejected.  Call ``base.copy()`` to obtain a private mutable base.
    """


class ProgramError(ReproError):
    """An ill-formed rule or program (e.g. ``exists`` in a rule head)."""


class SafetyError(ProgramError):
    """A rule is unsafe: some variable is not limited by the positive body.

    Attributes
    ----------
    rule_name:
        Human-readable identifier of the offending rule.
    unlimited:
        The names of the variables that could not be limited.
    """

    def __init__(self, rule_name: str, unlimited: tuple[str, ...]):
        self.rule_name = rule_name
        self.unlimited = unlimited
        names = ", ".join(sorted(unlimited))
        super().__init__(
            f"rule {rule_name!r} is unsafe: variable(s) {names} are not "
            f"limited by the positive body"
        )


class StratificationError(ProgramError):
    """The program has no stratification satisfying conditions (a)-(d).

    Attributes
    ----------
    cycle:
        Names of the rules on the offending cycle (in order), if known.
    """

    def __init__(self, message: str, cycle: tuple[str, ...] = ()):
        self.cycle = cycle
        super().__init__(message)


class EvaluationError(ReproError):
    """Base class for errors raised while evaluating a program."""


class EvaluationLimitError(EvaluationError):
    """The iteration cap for a stratum was exceeded (DESIGN.md D7)."""

    def __init__(self, stratum: int, limit: int):
        self.stratum = stratum
        self.limit = limit
        super().__init__(
            f"stratum {stratum} did not reach a fixpoint within {limit} "
            f"iterations; the program probably generates unboundedly many "
            f"values (e.g. arithmetic in a recursive rule)"
        )


class VersionDepthError(EvaluationLimitError):
    """A created version exceeded the configured functor-depth guard
    (``max_version_depth``, DESIGN.md D7 / Section 6 extension)."""

    def __init__(self, stratum: int, limit: int, version):
        self.version = version
        # bypass the parent message: the cap here is a depth, not a round count
        EvaluationError.__init__(
            self,
            f"stratum {stratum} created version {version} deeper than the "
            f"configured max_version_depth of {limit}",
        )
        self.stratum = stratum
        self.limit = limit


class VersionLinearityError(EvaluationError):
    """Two incomparable versions of one object were derived (Section 5).

    Attributes
    ----------
    object_id:
        The object whose versions ceased to be linear.
    previous, offending:
        The two incomparable version identities.
    """

    def __init__(self, object_id, previous, offending):
        self.object_id = object_id
        self.previous = previous
        self.offending = offending
        super().__init__(
            f"versions of object {object_id} are not linear: "
            f"{offending} does not contain the previous version {previous} "
            f"as a subterm"
        )


class BuiltinError(EvaluationError):
    """An arithmetic built-in was applied to non-numeric operands."""
