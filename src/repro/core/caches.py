"""A process-wide registry of the engine's caches and intern tables.

Long-lived serving processes (the prepared-query layer, the versioned
store, any daemon built on the engine) accumulate state in several places.
The *process-wide* ones register here: the ``lru_cache``-decorated plan
compilers and the OID intern table; :func:`cache_stats` snapshots their
counters.  Per-instance state is bounded and observable at its owner
instead: the engine's compiled-program LRU (``compile_cache_size``) and
each store's prepared-query registry
(``StoreOptions.prepared_cache_size`` / ``store.prepared_stats()``).

Each cache registers a zero-argument stats callable under a dotted name;
:func:`cache_stats` snapshots them all into one JSON-ready dict.  The
``lru_cache`` sites register through :func:`register_lru_cache`, which maps
``functools``' ``CacheInfo`` onto the common shape::

    {"hits": ..., "misses": ..., "size": ..., "maxsize": ...}

``maxsize`` is ``None`` for tables that are logically unbounded (the OID
intern table grows with the active symbol universe, which is bounded by
the data, not by a policy); everything keyed by query/program *structure*
carries an explicit limit.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["register_cache", "register_lru_cache", "cache_stats", "clear_caches"]

#: name -> (stats callable, clear callable or None)
_REGISTRY: dict[str, tuple[Callable[[], dict], Callable[[], None] | None]] = {}


def register_cache(
    name: str,
    stats: Callable[[], dict],
    clear: Callable[[], None] | None = None,
) -> None:
    """Register a cache under ``name`` (last registration wins, so module
    reloads don't accumulate dead entries)."""
    _REGISTRY[name] = (stats, clear)


def register_lru_cache(name: str, cached_function) -> None:
    """Register a ``functools.lru_cache``-decorated function."""

    def stats() -> dict:
        info = cached_function.cache_info()
        return {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
            "maxsize": info.maxsize,
        }

    register_cache(name, stats, cached_function.cache_clear)


def cache_stats() -> dict[str, dict]:
    """A snapshot of every registered cache's counters, by name."""
    return {name: stats() for name, (stats, _clear) in sorted(_REGISTRY.items())}


def clear_caches() -> None:
    """Clear every registered cache that supports clearing (tests and
    long-run maintenance; correctness never depends on cache contents)."""
    for _stats, clear in _REGISTRY.values():
        if clear is not None:
            clear()
