"""The object base: a set of ground version-terms with indexes.

An object base (Section 2.1) is a set of ground version-terms.  The *state*
of a version ``v`` w.r.t. the base is the set of all method-applications
derivable from its version-terms.  This module adds:

* hash indexes by method, by host, and by (host, method) — the access paths
  of the rule matcher;
* ``exists`` bookkeeping (Section 3): ``o.exists -> o`` is defined for every
  object of the initial base, copies propagate it to derived versions, and
  it can never be updated, so even a fully-deleted version survives as
  ``del(v).exists -> o``;
* the ``v*`` operator of Section 3: the largest subterm of a VID whose
  ``exists`` fact is present — the state a head update is checked against
  and copied from.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.errors import TermError
from repro.core.facts import EXISTS, Fact, exists_fact, make_fact
from repro.core.terms import Oid, Term, VersionId, is_ground, object_of, subterms

__all__ = ["ObjectBase"]


class ObjectBase:
    """A mutable set of facts with the indexes the engine needs.

    The public surface treats the base as a set of :class:`Fact`; mutation
    keeps all indexes synchronous.  ``copy()`` is cheap-ish (dict/set copies)
    and used by the evaluator to snapshot strata for traces.
    """

    __slots__ = ("_facts", "_by_method", "_by_host", "_by_host_method", "_exists")

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: set[Fact] = set()
        self._by_method: dict[tuple[str, int], set[Fact]] = {}
        self._by_host: dict[Term, set[Fact]] = {}
        self._by_host_method: dict[tuple[Term, str, int], set[Fact]] = {}
        self._exists: dict[Term, Oid] = {}
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls, triples: Iterable[tuple], *, ensure_exists: bool = True
    ) -> "ObjectBase":
        """Build a base from ``(host, method, result)`` or
        ``(host, method, args, result)`` tuples of plain Python values.

        Hosts must be OID payloads (the initial base contains no versions);
        ``ensure_exists`` adds the Section 3 bookkeeping for every host.
        """
        base = cls()
        for triple in triples:
            if len(triple) == 3:
                host, method, result = triple
                args: tuple = ()
            elif len(triple) == 4:
                host, method, args, result = triple
            else:
                raise TermError(f"expected 3- or 4-tuple, got {triple!r}")
            base.add(
                make_fact(
                    _as_term(host),
                    method,
                    tuple(_as_oid(a) for a in args),
                    _as_oid(result),
                )
            )
        if ensure_exists:
            base.ensure_exists()
        return base

    def copy(self) -> "ObjectBase":
        """An independent copy sharing no mutable state."""
        clone = ObjectBase.__new__(ObjectBase)
        clone._facts = set(self._facts)
        clone._by_method = {k: set(v) for k, v in self._by_method.items()}
        clone._by_host = {k: set(v) for k, v in self._by_host.items()}
        clone._by_host_method = {k: set(v) for k, v in self._by_host_method.items()}
        clone._exists = dict(self._exists)
        return clone

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectBase):
            return self._facts == other._facts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObjectBase({len(self._facts)} facts, {len(self._exists)} versions)"

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert ``fact``; returns True when the base changed."""
        if fact in self._facts:
            return False
        if not is_ground(fact.host):
            raise TermError(f"object bases hold ground facts only, got {fact}")
        self._facts.add(fact)
        mkey = (fact.method, len(fact.args))
        self._by_method.setdefault(mkey, set()).add(fact)
        self._by_host.setdefault(fact.host, set()).add(fact)
        self._by_host_method.setdefault((fact.host, *mkey), set()).add(fact)
        if fact.method == EXISTS and not fact.args:
            self._exists[fact.host] = fact.result
        return True

    def discard(self, fact: Fact) -> bool:
        """Remove ``fact`` if present; returns True when the base changed."""
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        mkey = (fact.method, len(fact.args))
        self._by_method[mkey].discard(fact)
        self._by_host[fact.host].discard(fact)
        self._by_host_method[(fact.host, *mkey)].discard(fact)
        if fact.method == EXISTS and not fact.args:
            self._exists.pop(fact.host, None)
        return True

    def add_object(self, oid: Oid | str | int | float) -> Oid:
        """Register a (possibly property-less) object: adds ``o.exists -> o``."""
        oid = _as_oid(oid)
        self.add(exists_fact(oid))
        return oid

    def ensure_exists(self) -> int:
        """Add ``o.exists -> o`` for every OID hosting a method-application.

        Returns the number of facts added.  Called on freshly loaded bases
        (DESIGN.md D3); derived versions get their ``exists`` fact by state
        copying, never through this method.
        """
        added = 0
        for host in list(self._by_host):
            if isinstance(host, Oid) and host not in self._exists:
                if self.add(exists_fact(host)):
                    added += 1
        return added

    def replace_state(self, version: Term, facts: Iterable[Fact]) -> bool:
        """Replace the whole state of ``version`` with ``facts``.

        This is the ``⊕`` of DESIGN.md D1: ``T_P`` recomputes complete new
        states for the relevant versions, and iteration substitutes them.
        Returns True when the stored state actually changed.
        """
        new_state = set(facts)
        for fact in new_state:
            if fact.host != version:
                raise TermError(
                    f"replace_state({version}): fact {fact} hosts a different version"
                )
        old_state = self._by_host.get(version)
        if old_state == new_state:
            return False
        if old_state:
            for fact in list(old_state):
                self.discard(fact)
        for fact in new_state:
            self.add(fact)
        return True

    # ------------------------------------------------------------------
    # lookups (the matcher's access paths)
    # ------------------------------------------------------------------
    def facts_by_method(self, method: str, arity: int) -> frozenset[Fact]:
        return frozenset(self._by_method.get((method, arity), ()))

    def facts_by_host(self, host: Term) -> frozenset[Fact]:
        return frozenset(self._by_host.get(host, ()))

    def facts_by_host_method(self, host: Term, method: str, arity: int) -> frozenset[Fact]:
        return frozenset(self._by_host_method.get((host, method, arity), ()))

    def state_of(self, version: Term) -> frozenset[Fact]:
        """All method-applications of ``version`` (including ``exists``)."""
        return self.facts_by_host(version)

    def method_applications(self, version: Term) -> frozenset[Fact]:
        """The state of ``version`` without the ``exists`` bookkeeping."""
        return frozenset(
            f for f in self._by_host.get(version, ()) if f.method != EXISTS
        )

    # ------------------------------------------------------------------
    # versions and objects
    # ------------------------------------------------------------------
    def version_exists(self, version: Term) -> bool:
        """True when ``version.exists -> o`` is in the base."""
        return version in self._exists

    def existing_versions(self) -> Mapping[Term, Oid]:
        """Read-only view of the ``exists`` map (version -> object)."""
        return dict(self._exists)

    def objects(self) -> frozenset[Oid]:
        """The OIDs registered as objects (those with ``o.exists -> o``)."""
        return frozenset(v for v in self._exists if isinstance(v, Oid))

    def versions_of(self, oid: Oid) -> frozenset[Term]:
        """All existing versions of object ``oid`` (including ``oid``)."""
        return frozenset(
            version
            for version, owner in self._exists.items()
            if owner == oid and object_of(version) == oid
        )

    def v_star(self, version: Term) -> Term | None:
        """Section 3's ``v*``: the largest subterm of ``version`` whose
        ``exists`` fact is present; ``None`` when no subterm exists.

        For a version that exists itself this is the version; for a VID that
        "skips" levels (e.g. ``del(mod(e))`` when no modify ever ran on
        ``e``) it is the deepest existing predecessor, whose state the update
        is checked against and copied from.
        """
        for candidate in subterms(version):
            if candidate in self._exists:
                return candidate
        return None

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def oid_universe(self) -> frozenset[Oid]:
        """Every OID occurring anywhere in the base (hosts' innermost
        objects, arguments and results).  This is the active domain used by
        the brute-force reference matcher in tests."""
        oids: set[Oid] = set()
        for fact in self._facts:
            oids.add(object_of(fact.host))
            oids.update(fact.args)
            oids.add(fact.result)
        return frozenset(oids)

    def sorted_facts(self) -> list[Fact]:
        """Facts in a stable display order (for traces, dumps and tests)."""
        return sorted(self._facts, key=_fact_sort_key)


def _as_oid(value) -> Oid:
    if isinstance(value, Oid):
        return value
    return Oid(value)


def _as_term(value) -> Term:
    if isinstance(value, (Oid, VersionId)):
        return value
    return Oid(value)


def _fact_sort_key(fact: Fact):
    return (
        str(object_of(fact.host)),
        str(fact.host),
        fact.method,
        tuple(str(a) for a in fact.args),
        str(fact.result),
    )
