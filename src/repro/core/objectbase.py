"""The object base: a set of ground version-terms with indexes.

An object base (Section 2.1) is a set of ground version-terms.  The *state*
of a version ``v`` w.r.t. the base is the set of all method-applications
derivable from its version-terms.  This module adds:

* hash indexes by method, by host, and by (host, method) — the access paths
  of the rule matcher;
* ``exists`` bookkeeping (Section 3): ``o.exists -> o`` is defined for every
  object of the initial base, copies propagate it to derived versions, and
  it can never be updated, so even a fully-deleted version survives as
  ``del(v).exists -> o``;
* the ``v*`` operator of Section 3: the largest subterm of a VID whose
  ``exists`` fact is present — the state a head update is checked against
  and copied from.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.errors import FrozenBaseError, TermError
from repro.core.facts import EXISTS, Fact, exists_fact, make_fact
from repro.core.terms import (
    Oid,
    Term,
    VersionId,
    is_ground,
    kind_chain,
    object_of,
    subterms,
)

__all__ = ["ObjectBase", "Delta"]

#: The access-path vocabulary of the engine: a ``(method, arity)`` pair.
MethodKey = tuple[str, int]

#: The update-functor chain of a host, outermost first (``terms.kind_chain``).
Shape = tuple[str, ...]


class Delta:
    """The structured outcome of one ``apply_tp``: which facts entered and
    left the base.

    This is what makes semi-naive evaluation possible: instead of a bare
    ``changed`` bool, the fixpoint loop learns *what* changed, and the rule
    dependency index (:mod:`repro.core.plans`) uses the ``(method, arity)``
    keys and host shapes of the delta to decide which rules can possibly
    derive anything new.

    Truthiness is "did the base change", so legacy ``if not apply_tp(...)``
    call sites keep working unchanged.
    """

    __slots__ = (
        "added",
        "removed",
        "_added_index",
        "_removed_index",
        "_added_shapes",
        "_removed_shapes",
    )

    def __init__(self) -> None:
        self.added: list[Fact] = []
        self.removed: list[Fact] = []
        self._added_index: dict[MethodKey, dict[Shape, list[Fact]]] | None = None
        self._removed_index: dict[MethodKey, set[Shape]] | None = None
        self._added_shapes: set[Shape] | None = None
        self._removed_shapes: set[Shape] | None = None

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delta(+{len(self.added)}, -{len(self.removed)})"

    def record(self, added: Iterable[Fact], removed: Iterable[Fact]) -> None:
        """Accumulate one version's state diff (invalidates the indexes)."""
        self.added.extend(added)
        self.removed.extend(removed)
        self._added_index = None
        self._removed_index = None
        self._added_shapes = None
        self._removed_shapes = None

    # -- indexes for the dependency check --------------------------------
    def added_index(self) -> dict[MethodKey, dict[Shape, list[Fact]]]:
        """Added facts grouped by ``(method, arity)`` then host shape."""
        if self._added_index is None:
            index: dict[MethodKey, dict[Shape, list[Fact]]] = {}
            for fact in self.added:
                key = (fact.method, len(fact.args))
                index.setdefault(key, {}).setdefault(
                    kind_chain(fact.host), []
                ).append(fact)
            self._added_index = index
        return self._added_index

    def removed_index(self) -> dict[MethodKey, set[Shape]]:
        """Host shapes of removed facts per ``(method, arity)`` key."""
        if self._removed_index is None:
            index: dict[MethodKey, set[Shape]] = {}
            for fact in self.removed:
                key = (fact.method, len(fact.args))
                index.setdefault(key, set()).add(kind_chain(fact.host))
            self._removed_index = index
        return self._removed_index

    def added_shapes(self) -> set[Shape]:
        """All host shapes with at least one added fact (any method key)."""
        if self._added_shapes is None:
            self._added_shapes = {kind_chain(fact.host) for fact in self.added}
        return self._added_shapes

    def removed_shapes(self) -> set[Shape]:
        """All host shapes with at least one removed fact (any method key)."""
        if self._removed_shapes is None:
            self._removed_shapes = {kind_chain(fact.host) for fact in self.removed}
        return self._removed_shapes


class ObjectBase:
    """A mutable set of facts with the indexes the engine needs.

    The public surface treats the base as a set of :class:`Fact`; mutation
    keeps all indexes synchronous.  ``copy()`` is cheap-ish (dict/set
    copies); ``copy(lazy_indexes=True)`` copies only the fact set and
    rebuilds the four indexes on first use — the evaluator's per-iteration
    snapshot path uses it so that tracing with ``collect_snapshots`` costs
    one set copy per iteration instead of five.
    """

    __slots__ = (
        "_facts",
        "_by_method",
        "_by_host",
        "_by_host_method",
        "_by_arg",
        "_exists",
        "_frozen",
        "_cow",
    )

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: set[Fact] = set()
        self._by_method: dict[tuple[str, int], set[Fact]] | None = {}
        self._by_host: dict[Term, set[Fact]] | None = {}
        self._by_host_method: dict[tuple[Term, str, int], set[Fact]] | None = {}
        self._by_arg: dict[MethodKey, dict[int, dict[Oid, set[Fact]]]] = {}
        self._exists: dict[Term, Oid] | None = {}
        self._frozen = False
        self._cow = False
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # index lifecycle
    # ------------------------------------------------------------------
    def _ensure_indexes(self) -> None:
        if self._by_method is None:
            self._build_indexes()

    def _build_indexes(self) -> None:
        by_method: dict[tuple[str, int], set[Fact]] = {}
        by_host: dict[Term, set[Fact]] = {}
        by_host_method: dict[tuple[Term, str, int], set[Fact]] = {}
        exists: dict[Term, Oid] = {}
        for fact in self._facts:
            mkey = (fact.method, len(fact.args))
            by_method.setdefault(mkey, set()).add(fact)
            by_host.setdefault(fact.host, set()).add(fact)
            by_host_method.setdefault((fact.host, *mkey), set()).add(fact)
            if fact.method == EXISTS and not fact.args:
                exists[fact.host] = fact.result
        self._by_method = by_method
        self._by_host = by_host
        self._by_host_method = by_host_method
        self._by_arg = {}
        self._exists = exists
        self._cow = False

    def _demote_shared_indexes(self) -> None:
        """Give up indexes whose buckets are shared with another base.

        A base produced by :meth:`apply_delta` adopts its parent's indexes
        with shared buckets (see there); the store freezes such bases
        immediately, so direct mutation of one is the rare path — it simply
        falls back to a lazy full rebuild instead of tracking per-bucket
        ownership forever.
        """
        self._by_method = None
        self._by_host = None
        self._by_host_method = None
        self._by_arg = {}
        self._exists = None
        self._cow = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls, triples: Iterable[tuple], *, ensure_exists: bool = True
    ) -> "ObjectBase":
        """Build a base from ``(host, method, result)`` or
        ``(host, method, args, result)`` tuples of plain Python values.

        Hosts must be OID payloads (the initial base contains no versions);
        ``ensure_exists`` adds the Section 3 bookkeeping for every host.
        """
        base = cls()
        for triple in triples:
            if len(triple) == 3:
                host, method, result = triple
                args: tuple = ()
            elif len(triple) == 4:
                host, method, args, result = triple
            else:
                raise TermError(f"expected 3- or 4-tuple, got {triple!r}")
            base.add(
                make_fact(
                    _as_term(host),
                    method,
                    tuple(_as_oid(a) for a in args),
                    _as_oid(result),
                )
            )
        if ensure_exists:
            base.ensure_exists()
        return base

    @classmethod
    def from_fact_set(cls, facts: set[Fact]) -> "ObjectBase":
        """Adopt an already-validated set of ground facts without building
        indexes (they are rebuilt on first indexed access).  Internal fast
        path for bulk construction — the caller must not reuse ``facts``.
        """
        base = cls.__new__(cls)
        base._facts = facts
        base._by_method = None
        base._by_host = None
        base._by_host_method = None
        base._by_arg = {}
        base._exists = None
        base._frozen = False
        base._cow = False
        return base

    def copy(self, *, lazy_indexes: bool = False) -> "ObjectBase":
        """An independent copy sharing no mutable state.

        With ``lazy_indexes=True`` (or when this base itself is still
        lazy) only the fact set is copied; the indexes are rebuilt from it
        the first time an indexed access path is used.
        """
        clone = ObjectBase.__new__(ObjectBase)
        clone._facts = set(self._facts)
        clone._frozen = False
        clone._cow = False
        clone._by_arg = {}
        if lazy_indexes or self._by_method is None:
            clone._by_method = None
            clone._by_host = None
            clone._by_host_method = None
            clone._exists = None
        else:
            clone._by_method = {k: set(v) for k, v in self._by_method.items()}
            clone._by_host = {k: set(v) for k, v in self._by_host.items()}
            clone._by_host_method = {
                k: set(v) for k, v in self._by_host_method.items()
            }
            clone._exists = dict(self._exists)
        return clone

    # ------------------------------------------------------------------
    # structural sharing (the versioned store's currency)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """True when this base is an immutable shared view."""
        return self._frozen

    def freeze(self) -> "ObjectBase":
        """Make this base immutable and return it.

        A frozen base rejects :meth:`add` / :meth:`discard` (and everything
        built on them) with :class:`~repro.core.errors.FrozenBaseError`, so
        it can be handed to any number of readers without defensive copying.
        Index (re)building stays allowed — it only caches derived state.
        Freezing is irreversible; use :meth:`copy` for a mutable private
        base.
        """
        self._frozen = True
        return self

    def apply_delta(
        self, added: Iterable[Fact], removed: Iterable[Fact]
    ) -> "ObjectBase":
        """A new base equal to this one with ``removed`` taken out and
        ``added`` put in.

        This is the structural-sharing step of the delta-chain store: the
        :class:`Fact` objects themselves are shared between the two bases
        (facts are immutable), and so are the index buckets.  When this
        base is frozen with built indexes, the derived base *adopts* them
        incrementally — dict spines are copied, the buckets touched by the
        delta are copied and updated, every untouched bucket is shared —
        so advancing a revision costs the delta, never an index rebuild.
        Sharing is safe because the parent is frozen (its buckets can never
        change again); the child carries ``_cow`` and falls back to a lazy
        rebuild if it is mutated directly instead of being frozen.
        """
        added = added if isinstance(added, (set, frozenset, list, tuple)) else list(added)
        removed = (
            removed if isinstance(removed, (set, frozenset, list, tuple)) else list(removed)
        )
        facts = set(self._facts)
        facts.difference_update(removed)
        facts.update(added)
        child = ObjectBase.from_fact_set(facts)
        if self._frozen and self._by_method is not None:
            self._share_indexes_into(child, added, removed)
        return child

    def _share_indexes_into(
        self, child: "ObjectBase", added: Iterable[Fact], removed: Iterable[Fact]
    ) -> None:
        """Copy-on-write index adoption for :meth:`apply_delta` (see there).

        Ownership is tracked bucket-by-bucket only for the duration of the
        delta application; afterwards the child's dict spines are its own
        and every bucket is either its own (touched) or shared with the
        immutable parent (untouched).
        """
        by_method = {k: v for k, v in self._by_method.items()}
        by_host = {k: v for k, v in self._by_host.items()}
        by_host_method = {k: v for k, v in self._by_host_method.items()}
        # Per-method column spines must be copied up front: the (frozen)
        # parent may still *build* new column indexes lazily, and those must
        # not leak into the child's differently-populated view.
        by_arg = {mkey: dict(per) for mkey, per in self._by_arg.items()}
        exists = dict(self._exists)

        owned: set[tuple] = set()

        def bucket(index: dict, key, tag: str) -> set[Fact]:
            mark = (tag, key)
            current = index.get(key)
            if current is None:
                current = index[key] = set()
                owned.add(mark)
            elif mark not in owned:
                current = index[key] = set(current)
                owned.add(mark)
            return current

        def arg_bucket(per: dict, column: int, key, mkey) -> set[Fact]:
            spine_mark = ("arg-spine", mkey, column)
            index = per[column]
            if spine_mark not in owned:
                index = per[column] = dict(index)
                owned.add(spine_mark)
            return bucket(index, key, ("arg", mkey, column))

        for fact in removed:
            mkey = (fact.method, len(fact.args))
            bucket(by_method, mkey, "m").discard(fact)
            bucket(by_host, fact.host, "h").discard(fact)
            bucket(by_host_method, (fact.host, *mkey), "hm").discard(fact)
            per = by_arg.get(mkey)
            if per:
                for column in per:
                    key = fact.result if column < 0 else fact.args[column]
                    arg_bucket(per, column, key, mkey).discard(fact)
            if fact.method == EXISTS and not fact.args:
                exists.pop(fact.host, None)
        for fact in added:
            mkey = (fact.method, len(fact.args))
            bucket(by_method, mkey, "m").add(fact)
            bucket(by_host, fact.host, "h").add(fact)
            bucket(by_host_method, (fact.host, *mkey), "hm").add(fact)
            per = by_arg.get(mkey)
            if per:
                for column in per:
                    key = fact.result if column < 0 else fact.args[column]
                    arg_bucket(per, column, key, mkey).add(fact)
            if fact.method == EXISTS and not fact.args:
                exists[fact.host] = fact.result

        child._by_method = by_method
        child._by_host = by_host
        child._by_host_method = by_host_method
        child._by_arg = by_arg
        child._exists = exists
        child._cow = True

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectBase):
            return self._facts == other._facts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        versions = "?" if self._exists is None else len(self._exists)
        return f"ObjectBase({len(self._facts)} facts, {versions} versions)"

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert ``fact``; returns True when the base changed."""
        if fact in self._facts:
            return False
        if self._frozen:
            raise FrozenBaseError(
                f"cannot add {fact} to a frozen base; copy() it first"
            )
        host = fact.host
        if not is_ground(host):
            raise TermError(f"object bases hold ground facts only, got {fact}")
        if self._cow:
            self._demote_shared_indexes()
        self._ensure_indexes()
        self._facts.add(fact)
        method = fact.method
        arity = len(fact.args)
        try:
            self._by_method[(method, arity)].add(fact)
        except KeyError:
            self._by_method[(method, arity)] = {fact}
        try:
            self._by_host[host].add(fact)
        except KeyError:
            self._by_host[host] = {fact}
        hkey = (host, method, arity)
        try:
            self._by_host_method[hkey].add(fact)
        except KeyError:
            self._by_host_method[hkey] = {fact}
        per_column = self._by_arg.get((method, arity))
        if per_column:
            for column, index in per_column.items():
                key = fact.result if column < 0 else fact.args[column]
                try:
                    index[key].add(fact)
                except KeyError:
                    index[key] = {fact}
        if method == EXISTS and not fact.args:
            self._exists[host] = fact.result
        return True

    def discard(self, fact: Fact) -> bool:
        """Remove ``fact`` if present; returns True when the base changed."""
        if fact not in self._facts:
            return False
        if self._frozen:
            raise FrozenBaseError(
                f"cannot discard {fact} from a frozen base; copy() it first"
            )
        if self._cow:
            self._demote_shared_indexes()
        self._ensure_indexes()
        self._facts.discard(fact)
        mkey = (fact.method, len(fact.args))
        self._by_method[mkey].discard(fact)
        self._by_host[fact.host].discard(fact)
        self._by_host_method[(fact.host, *mkey)].discard(fact)
        per_column = self._by_arg.get(mkey)
        if per_column:
            for column, index in per_column.items():
                key = fact.result if column < 0 else fact.args[column]
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(fact)
        if fact.method == EXISTS and not fact.args:
            self._exists.pop(fact.host, None)
        return True

    def add_object(self, oid: Oid | str | int | float) -> Oid:
        """Register a (possibly property-less) object: adds ``o.exists -> o``."""
        oid = _as_oid(oid)
        self.add(exists_fact(oid))
        return oid

    def ensure_exists(self) -> int:
        """Add ``o.exists -> o`` for every OID hosting a method-application.

        Returns the number of facts added.  Called on freshly loaded bases
        (DESIGN.md D3); derived versions get their ``exists`` fact by state
        copying, never through this method.
        """
        self._ensure_indexes()
        added = 0
        for host in list(self._by_host):
            if isinstance(host, Oid) and host not in self._exists:
                if self.add(exists_fact(host)):
                    added += 1
        return added

    def replace_state(self, version: Term, facts: Iterable[Fact]) -> bool:
        """Replace the whole state of ``version`` with ``facts``.

        This is the ``⊕`` of DESIGN.md D1: ``T_P`` recomputes complete new
        states for the relevant versions, and iteration substitutes them.
        Returns True when the stored state actually changed.
        """
        added, removed = self.replace_state_diff(version, facts)
        return bool(added or removed)

    def replace_state_diff(
        self, version: Term, facts: Iterable[Fact]
    ) -> tuple[frozenset[Fact], frozenset[Fact]]:
        """Like :meth:`replace_state`, but returns the ``(added, removed)``
        fact sets — the per-version contribution to the iteration's
        :class:`Delta`.  Only the facts that actually differ are touched,
        so an idempotent re-substitution costs two set differences and no
        index updates.
        """
        new_state = set(facts)
        for fact in new_state:
            if fact.host != version:
                raise TermError(
                    f"replace_state({version}): fact {fact} hosts a different version"
                )
        self._ensure_indexes()
        old_state = self._by_host.get(version)
        if not old_state:
            added = frozenset(new_state)
            removed: frozenset[Fact] = frozenset()
        elif old_state == new_state:
            return frozenset(), frozenset()
        else:
            old = frozenset(old_state)
            added = frozenset(new_state - old)
            removed = frozenset(old - new_state)
        for fact in removed:
            self.discard(fact)
        for fact in added:
            self.add(fact)
        return added, removed

    # ------------------------------------------------------------------
    # lookups (the matcher's access paths)
    # ------------------------------------------------------------------
    def facts_by_method(self, method: str, arity: int) -> frozenset[Fact]:
        self._ensure_indexes()
        return frozenset(self._by_method.get((method, arity), ()))

    def facts_by_host(self, host: Term) -> frozenset[Fact]:
        self._ensure_indexes()
        return frozenset(self._by_host.get(host, ()))

    def facts_by_host_method(self, host: Term, method: str, arity: int) -> frozenset[Fact]:
        self._ensure_indexes()
        return frozenset(self._by_host_method.get((host, method, arity), ()))

    def facts_by_arg(
        self, method: str, arity: int, column: int, value: Oid
    ) -> frozenset[Fact]:
        """Facts of ``method/arity`` whose ``column`` holds ``value``.

        ``column`` addresses an argument position (``0 .. arity-1``) or the
        result position (``-1``) — the secondary access paths the compiled
        join plans select when the host is unbound but an argument or the
        result already is.
        """
        return frozenset(self.iter_facts_by_arg(method, arity, column, value))

    def iter_facts_by_arg(
        self, method: str, arity: int, column: int, value: Oid
    ) -> Iterable[Fact]:
        """Zero-copy variant of :meth:`facts_by_arg` (live bucket; callers
        must not mutate the base while iterating).  The per-column index is
        built on first use and maintained incrementally afterwards — through
        :meth:`add` / :meth:`discard` and across :meth:`apply_delta`."""
        self._ensure_indexes()
        mkey = (method, arity)
        per_column = self._by_arg.get(mkey)
        if per_column is None:
            per_column = self._by_arg[mkey] = {}
        index = per_column.get(column)
        if index is None:
            index = {}
            for fact in self._by_method.get(mkey, ()):
                key = fact.result if column < 0 else fact.args[column]
                try:
                    index[key].add(fact)
                except KeyError:
                    index[key] = {fact}
            per_column[column] = index
        return index.get(value) or ()

    def arg_index_columns(self) -> dict[MethodKey, tuple[int, ...]]:
        """The secondary index columns currently materialized per method
        key (introspection for tests and the cache-stats hook)."""
        return {
            mkey: tuple(sorted(per)) for mkey, per in self._by_arg.items() if per
        }

    def state_of(self, version: Term) -> frozenset[Fact]:
        """All method-applications of ``version`` (including ``exists``)."""
        return self.facts_by_host(version)

    def method_applications(self, version: Term) -> frozenset[Fact]:
        """The state of ``version`` without the ``exists`` bookkeeping."""
        self._ensure_indexes()
        return frozenset(
            f for f in self._by_host.get(version, ()) if f.method != EXISTS
        )

    # -- zero-copy variants for the matcher's inner loop -----------------
    #
    # The ``facts_by_*`` accessors return defensive frozenset copies; the
    # join engine calls them once per search node, which made the copies
    # dominate its profile.  These return the live index sets — callers
    # must not mutate the base while iterating.
    def iter_facts_by_method(self, method: str, arity: int) -> Iterable[Fact]:
        self._ensure_indexes()
        return self._by_method.get((method, arity)) or ()

    def iter_facts_by_host_method(
        self, host: Term, method: str, arity: int
    ) -> Iterable[Fact]:
        self._ensure_indexes()
        return self._by_host_method.get((host, method, arity)) or ()

    def iter_state_of(self, version: Term) -> Iterable[Fact]:
        self._ensure_indexes()
        return self._by_host.get(version) or ()

    def iter_existing_versions(self) -> Iterable[Term]:
        """The keys of the ``exists`` map, without the defensive dict copy
        of :meth:`existing_versions` (same no-mutation caveat as the other
        ``iter_*`` accessors)."""
        self._ensure_indexes()
        return self._exists.keys()

    # ------------------------------------------------------------------
    # versions and objects
    # ------------------------------------------------------------------
    def version_exists(self, version: Term) -> bool:
        """True when ``version.exists -> o`` is in the base."""
        self._ensure_indexes()
        return version in self._exists

    def existing_versions(self) -> Mapping[Term, Oid]:
        """Read-only view of the ``exists`` map (version -> object)."""
        self._ensure_indexes()
        return dict(self._exists)

    def objects(self) -> frozenset[Oid]:
        """The OIDs registered as objects (those with ``o.exists -> o``)."""
        self._ensure_indexes()
        return frozenset(v for v in self._exists if isinstance(v, Oid))

    def versions_of(self, oid: Oid) -> frozenset[Term]:
        """All existing versions of object ``oid`` (including ``oid``)."""
        self._ensure_indexes()
        return frozenset(
            version
            for version, owner in self._exists.items()
            if owner == oid and object_of(version) == oid
        )

    def v_star(self, version: Term) -> Term | None:
        """Section 3's ``v*``: the largest subterm of ``version`` whose
        ``exists`` fact is present; ``None`` when no subterm exists.

        For a version that exists itself this is the version; for a VID that
        "skips" levels (e.g. ``del(mod(e))`` when no modify ever ran on
        ``e``) it is the deepest existing predecessor, whose state the update
        is checked against and copied from.
        """
        self._ensure_indexes()
        for candidate in subterms(version):
            if candidate in self._exists:
                return candidate
        return None

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def oid_universe(self) -> frozenset[Oid]:
        """Every OID occurring anywhere in the base (hosts' innermost
        objects, arguments and results).  This is the active domain used by
        the brute-force reference matcher in tests."""
        oids: set[Oid] = set()
        for fact in self._facts:
            oids.add(object_of(fact.host))
            oids.update(fact.args)
            oids.add(fact.result)
        return frozenset(oids)

    def sorted_facts(self) -> list[Fact]:
        """Facts in a stable display order (for traces, dumps and tests)."""
        return sorted(self._facts, key=_fact_sort_key)


def _as_oid(value) -> Oid:
    if isinstance(value, Oid):
        return value
    return Oid(value)


def _as_term(value) -> Term:
    if isinstance(value, (Oid, VersionId)):
        return value
    return Oid(value)


def _fact_sort_key(fact: Fact):
    return (
        str(object_of(fact.host)),
        str(fact.host),
        fact.method,
        tuple(str(a) for a in fact.args),
        str(fact.result),
    )
