"""The object base: a set of ground version-terms with indexes.

An object base (Section 2.1) is a set of ground version-terms.  The *state*
of a version ``v`` w.r.t. the base is the set of all method-applications
derivable from its version-terms.  This module adds:

* hash indexes by method, by host, and by (host, method) — the access paths
  of the rule matcher;
* ``exists`` bookkeeping (Section 3): ``o.exists -> o`` is defined for every
  object of the initial base, copies propagate it to derived versions, and
  it can never be updated, so even a fully-deleted version survives as
  ``del(v).exists -> o``;
* the ``v*`` operator of Section 3: the largest subterm of a VID whose
  ``exists`` fact is present — the state a head update is checked against
  and copied from.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.errors import FrozenBaseError, TermError
from repro.core.facts import EXISTS, Fact, exists_fact, make_fact
from repro.core.terms import (
    Oid,
    Term,
    VersionId,
    is_ground,
    kind_chain,
    object_of,
    subterms,
)

__all__ = ["ObjectBase", "Delta"]

#: The access-path vocabulary of the engine: a ``(method, arity)`` pair.
MethodKey = tuple[str, int]

#: The update-functor chain of a host, outermost first (``terms.kind_chain``).
Shape = tuple[str, ...]


class Delta:
    """The structured outcome of one ``apply_tp``: which facts entered and
    left the base.

    This is what makes semi-naive evaluation possible: instead of a bare
    ``changed`` bool, the fixpoint loop learns *what* changed, and the rule
    dependency index (:mod:`repro.core.plans`) uses the ``(method, arity)``
    keys and host shapes of the delta to decide which rules can possibly
    derive anything new.

    Truthiness is "did the base change", so legacy ``if not apply_tp(...)``
    call sites keep working unchanged.
    """

    __slots__ = (
        "added",
        "removed",
        "_added_index",
        "_removed_index",
        "_added_shapes",
        "_removed_shapes",
    )

    def __init__(self) -> None:
        self.added: list[Fact] = []
        self.removed: list[Fact] = []
        self._added_index: dict[MethodKey, dict[Shape, list[Fact]]] | None = None
        self._removed_index: dict[MethodKey, set[Shape]] | None = None
        self._added_shapes: set[Shape] | None = None
        self._removed_shapes: set[Shape] | None = None

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delta(+{len(self.added)}, -{len(self.removed)})"

    def record(self, added: Iterable[Fact], removed: Iterable[Fact]) -> None:
        """Accumulate one version's state diff (invalidates the indexes)."""
        self.added.extend(added)
        self.removed.extend(removed)
        self._added_index = None
        self._removed_index = None
        self._added_shapes = None
        self._removed_shapes = None

    # -- indexes for the dependency check --------------------------------
    def added_index(self) -> dict[MethodKey, dict[Shape, list[Fact]]]:
        """Added facts grouped by ``(method, arity)`` then host shape."""
        if self._added_index is None:
            index: dict[MethodKey, dict[Shape, list[Fact]]] = {}
            for fact in self.added:
                key = (fact.method, len(fact.args))
                index.setdefault(key, {}).setdefault(
                    kind_chain(fact.host), []
                ).append(fact)
            self._added_index = index
        return self._added_index

    def removed_index(self) -> dict[MethodKey, set[Shape]]:
        """Host shapes of removed facts per ``(method, arity)`` key."""
        if self._removed_index is None:
            index: dict[MethodKey, set[Shape]] = {}
            for fact in self.removed:
                key = (fact.method, len(fact.args))
                index.setdefault(key, set()).add(kind_chain(fact.host))
            self._removed_index = index
        return self._removed_index

    def added_shapes(self) -> set[Shape]:
        """All host shapes with at least one added fact (any method key)."""
        if self._added_shapes is None:
            self._added_shapes = {kind_chain(fact.host) for fact in self.added}
        return self._added_shapes

    def removed_shapes(self) -> set[Shape]:
        """All host shapes with at least one removed fact (any method key)."""
        if self._removed_shapes is None:
            self._removed_shapes = {kind_chain(fact.host) for fact in self.removed}
        return self._removed_shapes


class ObjectBase:
    """A mutable set of facts with the indexes the engine needs.

    The public surface treats the base as a set of :class:`Fact`; mutation
    keeps all indexes synchronous.  ``copy()`` is cheap-ish (dict/set
    copies); ``copy(lazy_indexes=True)`` copies only the fact set and
    rebuilds the four indexes on first use — the evaluator's per-iteration
    snapshot path uses it so that tracing with ``collect_snapshots`` costs
    one set copy per iteration instead of five.
    """

    __slots__ = (
        "_facts",
        "_by_method",
        "_by_host",
        "_by_host_method",
        "_exists",
        "_frozen",
    )

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: set[Fact] = set()
        self._by_method: dict[tuple[str, int], set[Fact]] | None = {}
        self._by_host: dict[Term, set[Fact]] | None = {}
        self._by_host_method: dict[tuple[Term, str, int], set[Fact]] | None = {}
        self._exists: dict[Term, Oid] | None = {}
        self._frozen = False
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # index lifecycle
    # ------------------------------------------------------------------
    def _ensure_indexes(self) -> None:
        if self._by_method is None:
            self._build_indexes()

    def _build_indexes(self) -> None:
        by_method: dict[tuple[str, int], set[Fact]] = {}
        by_host: dict[Term, set[Fact]] = {}
        by_host_method: dict[tuple[Term, str, int], set[Fact]] = {}
        exists: dict[Term, Oid] = {}
        for fact in self._facts:
            mkey = (fact.method, len(fact.args))
            by_method.setdefault(mkey, set()).add(fact)
            by_host.setdefault(fact.host, set()).add(fact)
            by_host_method.setdefault((fact.host, *mkey), set()).add(fact)
            if fact.method == EXISTS and not fact.args:
                exists[fact.host] = fact.result
        self._by_method = by_method
        self._by_host = by_host
        self._by_host_method = by_host_method
        self._exists = exists

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls, triples: Iterable[tuple], *, ensure_exists: bool = True
    ) -> "ObjectBase":
        """Build a base from ``(host, method, result)`` or
        ``(host, method, args, result)`` tuples of plain Python values.

        Hosts must be OID payloads (the initial base contains no versions);
        ``ensure_exists`` adds the Section 3 bookkeeping for every host.
        """
        base = cls()
        for triple in triples:
            if len(triple) == 3:
                host, method, result = triple
                args: tuple = ()
            elif len(triple) == 4:
                host, method, args, result = triple
            else:
                raise TermError(f"expected 3- or 4-tuple, got {triple!r}")
            base.add(
                make_fact(
                    _as_term(host),
                    method,
                    tuple(_as_oid(a) for a in args),
                    _as_oid(result),
                )
            )
        if ensure_exists:
            base.ensure_exists()
        return base

    @classmethod
    def from_fact_set(cls, facts: set[Fact]) -> "ObjectBase":
        """Adopt an already-validated set of ground facts without building
        indexes (they are rebuilt on first indexed access).  Internal fast
        path for bulk construction — the caller must not reuse ``facts``.
        """
        base = cls.__new__(cls)
        base._facts = facts
        base._by_method = None
        base._by_host = None
        base._by_host_method = None
        base._exists = None
        base._frozen = False
        return base

    def copy(self, *, lazy_indexes: bool = False) -> "ObjectBase":
        """An independent copy sharing no mutable state.

        With ``lazy_indexes=True`` (or when this base itself is still
        lazy) only the fact set is copied; the indexes are rebuilt from it
        the first time an indexed access path is used.
        """
        clone = ObjectBase.__new__(ObjectBase)
        clone._facts = set(self._facts)
        clone._frozen = False
        if lazy_indexes or self._by_method is None:
            clone._by_method = None
            clone._by_host = None
            clone._by_host_method = None
            clone._exists = None
        else:
            clone._by_method = {k: set(v) for k, v in self._by_method.items()}
            clone._by_host = {k: set(v) for k, v in self._by_host.items()}
            clone._by_host_method = {
                k: set(v) for k, v in self._by_host_method.items()
            }
            clone._exists = dict(self._exists)
        return clone

    # ------------------------------------------------------------------
    # structural sharing (the versioned store's currency)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """True when this base is an immutable shared view."""
        return self._frozen

    def freeze(self) -> "ObjectBase":
        """Make this base immutable and return it.

        A frozen base rejects :meth:`add` / :meth:`discard` (and everything
        built on them) with :class:`~repro.core.errors.FrozenBaseError`, so
        it can be handed to any number of readers without defensive copying.
        Index (re)building stays allowed — it only caches derived state.
        Freezing is irreversible; use :meth:`copy` for a mutable private
        base.
        """
        self._frozen = True
        return self

    def apply_delta(
        self, added: Iterable[Fact], removed: Iterable[Fact]
    ) -> "ObjectBase":
        """A new (mutable, lazily indexed) base equal to this one with
        ``removed`` taken out and ``added`` put in.

        This is the structural-sharing step of the delta-chain store: the
        :class:`Fact` objects themselves are shared between the two bases
        (facts are immutable), only the set spine is new, so advancing a
        revision costs one set copy plus the delta — never an index copy.
        """
        facts = set(self._facts)
        facts.difference_update(removed)
        facts.update(added)
        return ObjectBase.from_fact_set(facts)

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectBase):
            return self._facts == other._facts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        versions = "?" if self._exists is None else len(self._exists)
        return f"ObjectBase({len(self._facts)} facts, {versions} versions)"

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert ``fact``; returns True when the base changed."""
        if fact in self._facts:
            return False
        if self._frozen:
            raise FrozenBaseError(
                f"cannot add {fact} to a frozen base; copy() it first"
            )
        host = fact.host
        if not is_ground(host):
            raise TermError(f"object bases hold ground facts only, got {fact}")
        self._ensure_indexes()
        self._facts.add(fact)
        method = fact.method
        arity = len(fact.args)
        try:
            self._by_method[(method, arity)].add(fact)
        except KeyError:
            self._by_method[(method, arity)] = {fact}
        try:
            self._by_host[host].add(fact)
        except KeyError:
            self._by_host[host] = {fact}
        hkey = (host, method, arity)
        try:
            self._by_host_method[hkey].add(fact)
        except KeyError:
            self._by_host_method[hkey] = {fact}
        if method == EXISTS and not fact.args:
            self._exists[host] = fact.result
        return True

    def discard(self, fact: Fact) -> bool:
        """Remove ``fact`` if present; returns True when the base changed."""
        if fact not in self._facts:
            return False
        if self._frozen:
            raise FrozenBaseError(
                f"cannot discard {fact} from a frozen base; copy() it first"
            )
        self._ensure_indexes()
        self._facts.discard(fact)
        mkey = (fact.method, len(fact.args))
        self._by_method[mkey].discard(fact)
        self._by_host[fact.host].discard(fact)
        self._by_host_method[(fact.host, *mkey)].discard(fact)
        if fact.method == EXISTS and not fact.args:
            self._exists.pop(fact.host, None)
        return True

    def add_object(self, oid: Oid | str | int | float) -> Oid:
        """Register a (possibly property-less) object: adds ``o.exists -> o``."""
        oid = _as_oid(oid)
        self.add(exists_fact(oid))
        return oid

    def ensure_exists(self) -> int:
        """Add ``o.exists -> o`` for every OID hosting a method-application.

        Returns the number of facts added.  Called on freshly loaded bases
        (DESIGN.md D3); derived versions get their ``exists`` fact by state
        copying, never through this method.
        """
        self._ensure_indexes()
        added = 0
        for host in list(self._by_host):
            if isinstance(host, Oid) and host not in self._exists:
                if self.add(exists_fact(host)):
                    added += 1
        return added

    def replace_state(self, version: Term, facts: Iterable[Fact]) -> bool:
        """Replace the whole state of ``version`` with ``facts``.

        This is the ``⊕`` of DESIGN.md D1: ``T_P`` recomputes complete new
        states for the relevant versions, and iteration substitutes them.
        Returns True when the stored state actually changed.
        """
        added, removed = self.replace_state_diff(version, facts)
        return bool(added or removed)

    def replace_state_diff(
        self, version: Term, facts: Iterable[Fact]
    ) -> tuple[frozenset[Fact], frozenset[Fact]]:
        """Like :meth:`replace_state`, but returns the ``(added, removed)``
        fact sets — the per-version contribution to the iteration's
        :class:`Delta`.  Only the facts that actually differ are touched,
        so an idempotent re-substitution costs two set differences and no
        index updates.
        """
        new_state = set(facts)
        for fact in new_state:
            if fact.host != version:
                raise TermError(
                    f"replace_state({version}): fact {fact} hosts a different version"
                )
        self._ensure_indexes()
        old_state = self._by_host.get(version)
        if not old_state:
            added = frozenset(new_state)
            removed: frozenset[Fact] = frozenset()
        elif old_state == new_state:
            return frozenset(), frozenset()
        else:
            old = frozenset(old_state)
            added = frozenset(new_state - old)
            removed = frozenset(old - new_state)
        for fact in removed:
            self.discard(fact)
        for fact in added:
            self.add(fact)
        return added, removed

    # ------------------------------------------------------------------
    # lookups (the matcher's access paths)
    # ------------------------------------------------------------------
    def facts_by_method(self, method: str, arity: int) -> frozenset[Fact]:
        self._ensure_indexes()
        return frozenset(self._by_method.get((method, arity), ()))

    def facts_by_host(self, host: Term) -> frozenset[Fact]:
        self._ensure_indexes()
        return frozenset(self._by_host.get(host, ()))

    def facts_by_host_method(self, host: Term, method: str, arity: int) -> frozenset[Fact]:
        self._ensure_indexes()
        return frozenset(self._by_host_method.get((host, method, arity), ()))

    def state_of(self, version: Term) -> frozenset[Fact]:
        """All method-applications of ``version`` (including ``exists``)."""
        return self.facts_by_host(version)

    def method_applications(self, version: Term) -> frozenset[Fact]:
        """The state of ``version`` without the ``exists`` bookkeeping."""
        self._ensure_indexes()
        return frozenset(
            f for f in self._by_host.get(version, ()) if f.method != EXISTS
        )

    # -- zero-copy variants for the matcher's inner loop -----------------
    #
    # The ``facts_by_*`` accessors return defensive frozenset copies; the
    # join engine calls them once per search node, which made the copies
    # dominate its profile.  These return the live index sets — callers
    # must not mutate the base while iterating.
    def iter_facts_by_method(self, method: str, arity: int) -> Iterable[Fact]:
        self._ensure_indexes()
        return self._by_method.get((method, arity)) or ()

    def iter_facts_by_host_method(
        self, host: Term, method: str, arity: int
    ) -> Iterable[Fact]:
        self._ensure_indexes()
        return self._by_host_method.get((host, method, arity)) or ()

    def iter_state_of(self, version: Term) -> Iterable[Fact]:
        self._ensure_indexes()
        return self._by_host.get(version) or ()

    def iter_existing_versions(self) -> Iterable[Term]:
        """The keys of the ``exists`` map, without the defensive dict copy
        of :meth:`existing_versions` (same no-mutation caveat as the other
        ``iter_*`` accessors)."""
        self._ensure_indexes()
        return self._exists.keys()

    # ------------------------------------------------------------------
    # versions and objects
    # ------------------------------------------------------------------
    def version_exists(self, version: Term) -> bool:
        """True when ``version.exists -> o`` is in the base."""
        self._ensure_indexes()
        return version in self._exists

    def existing_versions(self) -> Mapping[Term, Oid]:
        """Read-only view of the ``exists`` map (version -> object)."""
        self._ensure_indexes()
        return dict(self._exists)

    def objects(self) -> frozenset[Oid]:
        """The OIDs registered as objects (those with ``o.exists -> o``)."""
        self._ensure_indexes()
        return frozenset(v for v in self._exists if isinstance(v, Oid))

    def versions_of(self, oid: Oid) -> frozenset[Term]:
        """All existing versions of object ``oid`` (including ``oid``)."""
        self._ensure_indexes()
        return frozenset(
            version
            for version, owner in self._exists.items()
            if owner == oid and object_of(version) == oid
        )

    def v_star(self, version: Term) -> Term | None:
        """Section 3's ``v*``: the largest subterm of ``version`` whose
        ``exists`` fact is present; ``None`` when no subterm exists.

        For a version that exists itself this is the version; for a VID that
        "skips" levels (e.g. ``del(mod(e))`` when no modify ever ran on
        ``e``) it is the deepest existing predecessor, whose state the update
        is checked against and copied from.
        """
        self._ensure_indexes()
        for candidate in subterms(version):
            if candidate in self._exists:
                return candidate
        return None

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def oid_universe(self) -> frozenset[Oid]:
        """Every OID occurring anywhere in the base (hosts' innermost
        objects, arguments and results).  This is the active domain used by
        the brute-force reference matcher in tests."""
        oids: set[Oid] = set()
        for fact in self._facts:
            oids.add(object_of(fact.host))
            oids.update(fact.args)
            oids.add(fact.result)
        return frozenset(oids)

    def sorted_facts(self) -> list[Fact]:
        """Facts in a stable display order (for traces, dumps and tests)."""
        return sorted(self._facts, key=_fact_sort_key)


def _as_oid(value) -> Oid:
    if isinstance(value, Oid):
        return value
    return Oid(value)


def _as_term(value) -> Term:
    if isinstance(value, (Oid, VersionId)):
        return value
    return Oid(value)


def _fact_sort_key(fact: Fact):
    return (
        str(object_of(fact.host)),
        str(fact.host),
        fact.method,
        tuple(str(a) for a in fact.args),
        str(fact.result),
    )
