"""The high-level facade: run an update-program against an object base.

The paper conceives an update-program as a mapping from an (old) object base
into a (new) object base (Section 2.2).  :class:`UpdateEngine` packages that
pipeline — safety check, stratification, stratum-wise fixpoint, linearity
check, new-base construction — behind one call::

    engine = UpdateEngine()
    outcome = engine.apply(program, base)
    outcome.new_base          # ob'
    outcome.result_base       # result(P), all versions
    outcome.final_versions    # object -> final VID
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.core.evaluation import (
    CompiledProgram,
    EvaluationOptions,
    EvaluationOutcome,
    compile_program,
    evaluate,
)
from repro.core.newbase import build_new_base
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram
from repro.core.stratification import Stratification
from repro.core.trace import EvaluationTrace

__all__ = ["UpdateEngine", "UpdateResult", "CompiledProgram"]


@dataclass
class UpdateResult:
    """Everything produced by one update-process.

    Attributes
    ----------
    new_base:
        The updated object base ``ob'`` (Section 5).
    result_base:
        ``result(P)`` — the fixpoint containing *all* versions created
        during the process; useful for audits and hypothetical reasoning.
    final_versions:
        The final VID per object, e.g. ``phil -> ins(mod(phil))``.
    stratification:
        The rule strata the evaluation followed.
    trace:
        The recorded evaluation history (empty unless tracing was enabled).
    iterations:
        Total number of ``T_P`` applications.
    """

    new_base: ObjectBase
    result_base: ObjectBase
    final_versions: dict
    stratification: Stratification
    trace: EvaluationTrace
    iterations: int


class UpdateEngine:
    """Configurable runner for update-programs.

    Keyword arguments mirror :class:`~repro.core.evaluation.EvaluationOptions`
    (trace collection, linearity checking, iteration caps, object creation).
    The program-independent behaviour is stateless; the engine additionally
    keeps an LRU cache of :class:`CompiledProgram` artifacts keyed by program
    identity (its rule tuple — structurally equal programs share an entry,
    so re-parsing the same text still hits), bounded by
    ``compile_cache_size``.  Repeated ``apply``/``evaluate`` of the same
    program therefore pays the safety check, the stratification and the join
    plans exactly once.
    """

    def __init__(self, *, compile_cache_size: int = 64, **option_overrides) -> None:
        self.options = EvaluationOptions(**option_overrides)
        self.compile_cache_size = compile_cache_size
        self._compiled: OrderedDict[tuple, CompiledProgram] = OrderedDict()

    def with_options(self, **option_overrides) -> "UpdateEngine":
        """A copy of this engine with some options changed (fresh cache)."""
        engine = UpdateEngine.__new__(UpdateEngine)
        engine.options = replace(self.options, **option_overrides)
        engine.compile_cache_size = self.compile_cache_size
        engine._compiled = OrderedDict()
        return engine

    def compile(self, program: UpdateProgram) -> CompiledProgram:
        """The cached static artifact for ``program`` under this engine's
        options (compiling on a miss)."""
        if self.compile_cache_size <= 0:
            return compile_program(program, self.options)
        key = program.rules
        compiled = self._compiled.get(key)
        if compiled is not None:
            self._compiled.move_to_end(key)
            return compiled
        compiled = compile_program(program, self.options)
        self._compiled[key] = compiled
        while len(self._compiled) > self.compile_cache_size:
            self._compiled.popitem(last=False)
        return compiled

    def evaluate(
        self, program: UpdateProgram, base: ObjectBase
    ) -> EvaluationOutcome:
        """Compute ``result(P)`` only (no new-base construction)."""
        return evaluate(program, base, self.options, compiled=self.compile(program))

    def apply(self, program: UpdateProgram, base: ObjectBase) -> UpdateResult:
        """Run the full update-process: ``ob`` → ``result(P)`` → ``ob'``."""
        outcome = self.evaluate(program, base)
        finals = outcome.final_versions or None
        new_base = build_new_base(outcome.result_base, finals)
        return UpdateResult(
            new_base=new_base,
            result_base=outcome.result_base,
            final_versions=outcome.final_versions,
            stratification=outcome.stratification,
            trace=outcome.trace,
            iterations=outcome.iterations,
        )
