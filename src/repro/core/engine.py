"""The high-level facade: run an update-program against an object base.

The paper conceives an update-program as a mapping from an (old) object base
into a (new) object base (Section 2.2).  :class:`UpdateEngine` packages that
pipeline — safety check, stratification, stratum-wise fixpoint, linearity
check, new-base construction — behind one call::

    engine = UpdateEngine()
    outcome = engine.apply(program, base)
    outcome.new_base          # ob'
    outcome.result_base       # result(P), all versions
    outcome.final_versions    # object -> final VID
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.evaluation import EvaluationOptions, EvaluationOutcome, evaluate
from repro.core.newbase import build_new_base
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram
from repro.core.stratification import Stratification
from repro.core.trace import EvaluationTrace

__all__ = ["UpdateEngine", "UpdateResult"]


@dataclass
class UpdateResult:
    """Everything produced by one update-process.

    Attributes
    ----------
    new_base:
        The updated object base ``ob'`` (Section 5).
    result_base:
        ``result(P)`` — the fixpoint containing *all* versions created
        during the process; useful for audits and hypothetical reasoning.
    final_versions:
        The final VID per object, e.g. ``phil -> ins(mod(phil))``.
    stratification:
        The rule strata the evaluation followed.
    trace:
        The recorded evaluation history (empty unless tracing was enabled).
    iterations:
        Total number of ``T_P`` applications.
    """

    new_base: ObjectBase
    result_base: ObjectBase
    final_versions: dict
    stratification: Stratification
    trace: EvaluationTrace
    iterations: int


class UpdateEngine:
    """Configurable runner for update-programs.

    Keyword arguments mirror :class:`~repro.core.evaluation.EvaluationOptions`
    (trace collection, linearity checking, iteration caps, object creation).
    An engine is stateless between calls and safe to reuse.
    """

    def __init__(self, **option_overrides) -> None:
        self.options = EvaluationOptions(**option_overrides)

    def with_options(self, **option_overrides) -> "UpdateEngine":
        """A copy of this engine with some options changed."""
        engine = UpdateEngine.__new__(UpdateEngine)
        engine.options = replace(self.options, **option_overrides)
        return engine

    def evaluate(
        self, program: UpdateProgram, base: ObjectBase
    ) -> EvaluationOutcome:
        """Compute ``result(P)`` only (no new-base construction)."""
        return evaluate(program, base, self.options)

    def apply(self, program: UpdateProgram, base: ObjectBase) -> UpdateResult:
        """Run the full update-process: ``ob`` → ``result(P)`` → ``ob'``."""
        outcome = self.evaluate(program, base)
        finals = outcome.final_versions or None
        new_base = build_new_base(outcome.result_base, finals)
        return UpdateResult(
            new_base=new_base,
            result_base=outcome.result_base,
            final_versions=outcome.final_versions,
            stratification=outcome.stratification,
            trace=outcome.trace,
            iterations=outcome.iterations,
        )
