"""Building the new object base ``ob'`` from ``result(P)`` — Section 5.

Once ``result(P)`` is version-linear, the updated base is derived by copying,
for each object ``o`` of the original base, the method-applications of its
*final version* (the VID containing all the object's other VIDs as
subterms), re-hosted onto the bare OID ``o``.  An object whose final version
keeps only the ``exists`` bookkeeping has been deleted entirely and does not
appear in ``ob'``; the surviving objects get fresh ``exists`` facts so that
``ob'`` is again a valid to-be-updated object base.
"""

from __future__ import annotations

from repro.core.facts import EXISTS, Fact, exists_fact
from repro.core.linearity import final_versions
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Term

__all__ = ["build_new_base"]


def build_new_base(
    result_base: ObjectBase,
    finals: dict[Oid, Term] | None = None,
) -> ObjectBase:
    """Derive ``ob'`` from a finished, version-linear ``result(P)``.

    ``finals`` may be supplied by the evaluator's incremental linearity
    tracker; otherwise the a-posteriori check of
    :func:`repro.core.linearity.final_versions` runs here (and raises on a
    non-linear result).
    """
    if finals is None:
        finals = final_versions(result_base)

    facts: set[Fact] = set()
    for owner, final in finals.items():
        survived = False
        for fact in result_base.iter_state_of(final):
            if fact.method == EXISTS:
                continue
            facts.add(Fact(owner, fact.method, fact.args, fact.result))
            survived = True
        if survived:
            facts.add(exists_fact(owner))
        # An object whose final version holds only `exists` vanished
        # entirely (Section 5's closing remark): no trace of it in ob'.
    return ObjectBase.from_fact_set(facts)
