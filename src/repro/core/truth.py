"""Truth of ground atoms w.r.t. an object base — Section 3 of the paper.

These functions are the *authoritative* semantics.  The rule matcher
(:mod:`repro.core.grounding`) uses indexes to generate candidate bindings
quickly, but every fully-ground literal is re-verified here, so optimizer
bugs can cost speed, never correctness.

The paper's definitions, implemented one-to-one:

1. A ground **version-term** ``v.m -> r`` is true w.r.t. ``I`` iff
   ``v.m -> r ∈ I``.
2. A ground **update-term in a rule head**:
   * ``ins[v].m -> r`` is always true;
   * ``del[v].m -> r`` is true iff ``v*.m -> r ∈ I``;
   * ``mod[v].m -> (r, r')`` is true iff ``v*.m -> r ∈ I``.
   (A delete is only allowed when the to-be-deleted information exists;
   likewise the old value of a modify must exist.)
3. A ground **update-term in a rule body** tests that the transition really
   occurred:
   * ``ins[v].m -> r`` iff ``ins(v).m -> r ∈ I``;
   * ``del[v].m -> r`` iff ``v*.m -> r ∈ I`` and ``del(v).exists -> o ∈ I``
     and ``del(v).m -> r ∉ I``;
   * ``mod[v].m -> (r, r')`` with ``r ≠ r'`` iff ``v*.m -> r ∈ I`` and
     ``mod(v).m -> r ∉ I`` and ``mod(v).m -> r' ∈ I``;
   * ``mod[v].m -> (r, r)`` iff ``v*.m -> r ∈ I`` and ``mod(v).m -> r ∈ I``.

Negation is truth-functional: ``¬A`` is true iff ``A`` is not true.
"""

from __future__ import annotations

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.errors import BuiltinError, TermError
from repro.core.exprs import evaluate_expr
from repro.core.facts import Fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import UpdateKind

__all__ = [
    "version_atom_true",
    "update_atom_true_in_head",
    "update_atom_true_in_body",
    "builtin_atom_true",
    "literal_true",
]

_EMPTY_BINDING: dict = {}


def _require_ground(atom) -> None:
    if not atom.is_ground():
        raise TermError(f"truth is defined for ground atoms only, got {atom}")


def version_atom_true(base: ObjectBase, atom: VersionAtom) -> bool:
    """Definition 1: a ground version-term is true iff it is in the base."""
    _require_ground(atom)
    return atom.to_fact() in base


def update_atom_true_in_head(base: ObjectBase, atom: UpdateAtom) -> bool:
    """Definition 2: truth of a ground update-term occurring in a rule head.

    For the delete-all form ``del[v].*`` the natural lifting applies: it is
    true iff ``v*`` exists and has at least one method-application to delete
    (the expansion into individual deletes happens in
    :mod:`repro.core.consequence`).
    """
    _require_ground(atom)
    if atom.kind is UpdateKind.INSERT:
        return True
    v_star = base.v_star(atom.target)
    if v_star is None:
        return False
    if atom.delete_all:
        return bool(base.method_applications(v_star))
    old_fact = Fact(v_star, atom.method, atom.args, atom.result)  # type: ignore[arg-type]
    return old_fact in base


def update_atom_true_in_body(base: ObjectBase, atom: UpdateAtom) -> bool:
    """Definition 3: truth of a ground update-term occurring in a rule body.

    The body reading asks whether the stated version transition *really
    happened*; see the module docstring for the per-kind conditions.  The
    delete-all form is head-only and rejected here.
    """
    _require_ground(atom)
    if atom.delete_all:
        raise TermError("del[v].* may only occur in rule heads")
    new_version = atom.new_version()

    if atom.kind is UpdateKind.INSERT:
        return Fact(new_version, atom.method, atom.args, atom.result) in base  # type: ignore[arg-type]

    v_star = base.v_star(atom.target)
    if v_star is None:
        return False
    old_fact = Fact(v_star, atom.method, atom.args, atom.result)  # type: ignore[arg-type]
    if old_fact not in base:
        return False

    if atom.kind is UpdateKind.DELETE:
        # del(v) must exist (its exists-fact survives every delete) and must
        # no longer contain the deleted application.
        if not base.version_exists(new_version):
            return False
        new_fact = Fact(new_version, atom.method, atom.args, atom.result)  # type: ignore[arg-type]
        return new_fact not in base

    # MODIFY
    assert atom.result2 is not None
    old_in_new = Fact(new_version, atom.method, atom.args, atom.result)  # type: ignore[arg-type]
    if atom.result == atom.result2:
        # mod[v].m -> (r, r): the "modification" kept the value.
        return old_in_new in base
    new_in_new = Fact(new_version, atom.method, atom.args, atom.result2)  # type: ignore[arg-type]
    return old_in_new not in base and new_in_new in base


def builtin_atom_true(atom: BuiltinAtom) -> bool:
    """Truth of a ground built-in comparison.

    ``=``/``!=`` compare OIDs structurally (symbolic OIDs included, with
    ``2`` equal to ``2.0`` by Python numeric equality); the order comparisons
    require numeric operands and raise :class:`BuiltinError` otherwise.
    """
    _require_ground(atom)
    left = evaluate_expr(atom.left, _EMPTY_BINDING)
    right = evaluate_expr(atom.right, _EMPTY_BINDING)
    if atom.op == "=":
        return left.value == right.value
    if atom.op == "!=":
        return left.value != right.value
    if not (left.is_numeric and right.is_numeric):
        raise BuiltinError(
            f"comparison {atom} needs numeric operands, got {left} and {right}"
        )
    if atom.op == "<":
        return left.value < right.value
    if atom.op == "<=":
        return left.value <= right.value
    if atom.op == ">":
        return left.value > right.value
    if atom.op == ">=":
        return left.value >= right.value
    raise TermError(f"unknown comparison {atom.op!r}")  # pragma: no cover


def literal_true(base: ObjectBase, literal: Literal) -> bool:
    """Truth of a ground body literal (handles negation).

    Head truth is *not* dispatched here — use
    :func:`update_atom_true_in_head`; heads are never negated.
    """
    atom = literal.atom
    if isinstance(atom, VersionAtom):
        value = version_atom_true(base, atom)
    elif isinstance(atom, UpdateAtom):
        value = update_atom_true_in_body(base, atom)
    elif isinstance(atom, BuiltinAtom):
        value = builtin_atom_true(atom)
    else:  # pragma: no cover - exhaustive over Atom
        raise TermError(f"unknown atom type {type(atom).__name__}")
    return value if literal.positive else not value
