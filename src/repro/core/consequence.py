"""The immediate consequence operator ``T_P`` — Section 3, 3-step procedure.

Step 1 derives the set ``T¹_P(I)`` of ground update-terms whose rule bodies
*and heads* are true w.r.t. ``I`` (head truth matters: a delete is only
allowed when the to-be-deleted information exists).

Step 2 prepares, by copying from ``I``, a state for every *relevant* new
version ``α(v)``: an **active** version (one that already exists) is copied
from its own current state; a relevant-but-not-active version is created by
taking the method-applications of ``v*`` as defaults.  This lazy copy is the
paper's answer to the frame problem (footnote 4): only the objects being
updated are copied, never the whole base.

Step 3 performs the updates on the copies:

* ``ins(v)`` gets the copied state plus the inserted applications;
* ``del(v)`` gets the copied state minus the deleted applications;
* ``mod(v)`` gets the copied state with modified applications replaced by
  their new values.

``T_P(I)`` is the family of recomputed states; iteration substitutes them
into ``I`` (state replacement, DESIGN.md D1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.atoms import UpdateAtom
from repro.core.codegen import (
    codegen_enabled,
    match_rule_compiled,
    match_rule_seeded_compiled,
)
from repro.core.errors import EvaluationError
from repro.core.facts import EXISTS, Fact, exists_fact
from repro.core.grounding import match_rule, match_rule_dynamic, match_rule_seeded
from repro.core.objectbase import Delta, ObjectBase
from repro.obs import metrics as _obs
from repro.core.plans import SEED, SKIP, classify, rule_plan
from repro.core.rules import UpdateRule
from repro.core.terms import Oid, UpdateKind, VersionId
from repro.core.truth import update_atom_true_in_head

__all__ = ["FiredInstance", "PendingUpdates", "TPResult", "tp_step", "apply_tp"]

#: A method application ``(method, args, result)`` — the host-independent
#: payload that step 2 copies and step 3 edits.
Application = tuple[str, tuple[Oid, ...], Oid]


@dataclass(frozen=True)
class FiredInstance:
    """One ground rule instance that contributed to ``T¹_P(I)`` (for traces)."""

    rule_name: str
    head: UpdateAtom
    binding: tuple[tuple[str, Oid], ...]

    def __str__(self) -> str:
        bound = ", ".join(f"{name}={value}" for name, value in self.binding)
        return f"{self.rule_name}[{bound}] fired: {self.head}"


@dataclass
class PendingUpdates:
    """``T¹_P(I)`` grouped by the new version it creates.

    ``inserts``/``deletes`` map ``α(v)`` to the applications inserted into /
    deleted from the copy; ``modifies`` maps ``mod(v)`` to
    ``(method, args, old_result) -> {new results}`` (set-valued: several
    modify-updates of the same old value all contribute, matching the last
    clause of step 3).
    """

    inserts: dict[VersionId, set[Application]] = field(default_factory=dict)
    deletes: dict[VersionId, set[Application]] = field(default_factory=dict)
    modifies: dict[VersionId, dict[Application, set[Oid]]] = field(default_factory=dict)

    def relevant_versions(self) -> set[VersionId]:
        """Every ``α(v)`` some update in ``T¹`` targets (paper: *relevant*)."""
        return set(self.inserts) | set(self.deletes) | set(self.modifies)

    def add(self, head: UpdateAtom) -> None:
        """Record one ground, head-true, non-delete-all update-term."""
        new_version = head.new_version()
        application: Application = (head.method, head.args, head.result)  # type: ignore[assignment]
        if head.kind is UpdateKind.INSERT:
            self.inserts.setdefault(new_version, set()).add(application)
        elif head.kind is UpdateKind.DELETE:
            self.deletes.setdefault(new_version, set()).add(application)
        else:
            assert head.result2 is not None
            slot = self.modifies.setdefault(new_version, {})
            slot.setdefault(application, set()).add(head.result2)  # type: ignore[arg-type]

    def is_empty(self) -> bool:
        return not (self.inserts or self.deletes or self.modifies)

    def total_updates(self) -> int:
        return (
            sum(len(v) for v in self.inserts.values())
            + sum(len(v) for v in self.deletes.values())
            + sum(len(rs) for slot in self.modifies.values() for rs in slot.values())
        )


@dataclass
class TPResult:
    """The outcome of one ``T_P`` application.

    ``new_states`` maps every relevant version to its complete recomputed
    state (a set of facts hosted on that version); ``fired`` records the rule
    instances for tracing; ``copies`` counts the relevant-but-not-active
    versions created in step 2 (the frame-problem copy cost of footnote 4).
    """

    pending: PendingUpdates
    new_states: dict[VersionId, set[Fact]]
    fired: list[FiredInstance]
    copies: int

    @property
    def new_versions(self) -> set[VersionId]:
        return set(self.new_states)

    def is_empty(self) -> bool:
        return not self.new_states


def tp_step(
    rules: Iterable[UpdateRule],
    base: ObjectBase,
    *,
    match_base: ObjectBase | None = None,
    create_missing_objects: bool = False,
    collect_fired: bool = False,
    delta: Delta | None = None,
    use_plans: bool = True,
    compiled: bool | None = None,
) -> TPResult:
    """One application of ``T_P`` for the given rules against ``base``.

    ``create_missing_objects`` controls the edge the paper leaves open: an
    insert whose target has no existing subterm (``v* = None``) creates a
    brand-new object when True, and contributes an ``exists``-less orphan
    state when False (strict reading).  See DESIGN.md D3.

    ``match_base`` — when given, step 1 (body matching and head truth) runs
    against it instead of ``base``, while steps 2/3 still copy from
    ``base``.  The derived-methods extension (:mod:`repro.ext.derived`)
    passes a superset of ``base`` enriched with view facts here, so rules
    can *read* derived methods without the copies ever *storing* them.

    ``delta`` — the structured change of the previous ``apply_tp`` on the
    same stratum.  When given (and ``match_base`` is not in play — view
    overlays are recomputed wholesale, so their deltas are not tracked),
    step 1 runs semi-naively: each rule is classified against the delta by
    its dependency signature and is skipped, re-matched only from the new
    facts its seed literals can read, or re-matched in full.  Skipped and
    seeded rules rely on the self-copy of step 2: a state transition already
    applied to an active version persists under re-substitution, so
    re-deriving an old instance is idempotent and only *new* instances
    matter.

    ``use_plans=False`` selects the original dynamic-ordering matcher for
    every rule — the naive reference path.

    ``compiled`` — run plan-compiled (set-at-a-time) rule bodies where
    available (:mod:`repro.core.codegen`); ``None`` defers to the
    ``REPRO_NO_CODEGEN`` escape hatch.  Rules whose bodies have no compiled
    form fall back to the interpreted planned matcher per rule, so this
    only ever affects speed.
    """
    pending = PendingUpdates()
    fired: list[FiredInstance] = []
    reading = base if match_base is None else match_base
    restricted = delta is not None and match_base is None and use_plans
    if compiled is None:
        compiled = codegen_enabled()
    compiled = compiled and use_plans
    # Per-rule profiling (matched/fired counts, cumulative seconds,
    # compiled-fallback hits) — resolved once per step so the disabled
    # path pays one env lookup for the whole rule loop.
    record = _obs.metrics_enabled()
    registry = _obs.registry() if record else None

    # ---- step 1: T¹ — the set of true ground heads -----------------------
    for rule in rules:
        rule_start = time.perf_counter() if record else 0.0
        matched = 0
        rule_fired = 0
        if restricted:
            mode, positions = classify(rule_plan(rule).signature, delta)
            if mode == SKIP:
                if record:
                    registry.inc("engine_rule_skipped", 1, rule=rule.name)
                continue
            if mode == SEED:
                bindings = (
                    match_rule_seeded_compiled(rule, reading, delta, positions)
                    if compiled
                    else None
                )
                if bindings is None:
                    if record and compiled:
                        registry.inc("engine_fallback_hits", 1, path="seed")
                    bindings = match_rule_seeded(
                        rule, reading, delta, positions
                    )
            else:
                bindings = match_rule_compiled(rule, reading) if compiled else None
                if bindings is None:
                    if record and compiled:
                        registry.inc("engine_fallback_hits", 1, path="full")
                    bindings = match_rule(rule, reading)
        elif use_plans:
            bindings = match_rule_compiled(rule, reading) if compiled else None
            if bindings is None:
                if record and compiled:
                    registry.inc("engine_fallback_hits", 1, path="full")
                bindings = match_rule(rule, reading)
        else:
            bindings = match_rule_dynamic(rule, reading)
        for binding in bindings:
            matched += 1
            head = rule.head.substitute(binding)
            if not head.is_ground():
                raise EvaluationError(
                    f"rule {rule.name!r} produced a non-ground head {head}; "
                    f"the rule is unsafe"
                )
            if not update_atom_true_in_head(reading, head):
                continue
            rule_fired += 1
            if collect_fired:
                fired.append(
                    FiredInstance(
                        rule.name,
                        head,
                        tuple(
                            (var.name, value)
                            for var, value in sorted(
                                binding.items(), key=lambda kv: kv[0].name
                            )
                        ),
                    )
                )
            if head.delete_all:
                for entry in _expand_delete_all(base, head):
                    pending.add(entry)
            else:
                pending.add(head)
        if record:
            if matched:
                registry.inc("engine_rule_matched", matched, rule=rule.name)
            if rule_fired:
                registry.inc("engine_rule_fired", rule_fired, rule=rule.name)
            registry.inc(
                "engine_rule_seconds",
                time.perf_counter() - rule_start,
                rule=rule.name,
            )

    # ---- steps 2 + 3: copy states, apply updates --------------------------
    new_states: dict[VersionId, set[Fact]] = {}
    copies = 0
    for version in pending.relevant_versions():
        copied, was_copy = _copy_state(base, version, create_missing_objects)
        copies += int(was_copy)
        new_states[version] = _apply_updates(version, copied, pending)

    return TPResult(pending, new_states, fired, copies)


def apply_tp(base: ObjectBase, result: TPResult) -> Delta:
    """Substitute the recomputed states into ``base`` (DESIGN.md D1).

    Returns the :class:`~repro.core.objectbase.Delta` of facts that entered
    and left the base — truthy exactly when the base changed, so it still
    works as the stratum's fixpoint test, and it feeds the semi-naive rule
    classification of the next ``tp_step``.
    """
    delta = Delta()
    for version, state in result.new_states.items():
        added, removed = base.replace_state_diff(version, state)
        if added or removed:
            delta.record(added, removed)
    return delta


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------


def _expand_delete_all(base: ObjectBase, head: UpdateAtom) -> list[UpdateAtom]:
    """Expand ``del[v].*`` into one delete per method-application of ``v*``
    (the ``exists`` bookkeeping is never deleted)."""
    v_star = base.v_star(head.target)
    if v_star is None:  # head truth already required applications to exist
        return []
    return [
        UpdateAtom(
            UpdateKind.DELETE,
            head.target,
            fact.method,
            fact.args,
            fact.result,
        )
        for fact in base.iter_state_of(v_star)
        if fact.method != EXISTS
    ]


def _copy_state(
    base: ObjectBase, version: VersionId, create_missing_objects: bool
) -> tuple[set[Fact], bool]:
    """Step 2: the prepared (copied) state for a relevant version.

    Active versions (already materialised — they have state in ``I``) are
    copied from themselves; fresh versions take the applications of ``v*``
    as defaults, re-hosted onto the new VID.  Returns ``(state, was_fresh_copy)``.
    """
    existing = base.iter_state_of(version)
    if existing:
        return set(existing), False
    v_star = base.v_star(version.base)
    if v_star is None:
        state: set[Fact] = set()
        if create_missing_objects:
            state.add(exists_fact(version))
        return state, True
    return (
        {
            Fact(version, fact.method, fact.args, fact.result)
            for fact in base.iter_state_of(v_star)
        },
        True,
    )


def _apply_updates(
    version: VersionId, state: set[Fact], pending: PendingUpdates
) -> set[Fact]:
    """Step 3: edit the copied state according to ``T¹``."""
    kind = version.kind
    if kind is UpdateKind.INSERT:
        additions = pending.inserts.get(version, ())
        for method, args, result in additions:
            state.add(Fact(version, method, args, result))
        return state
    if kind is UpdateKind.DELETE:
        removals = pending.deletes.get(version, ())
        for method, args, result in removals:
            state.discard(Fact(version, method, args, result))
        return state
    # MODIFY
    slots = pending.modifies.get(version, {})
    for (method, args, old_result) in slots:
        state.discard(Fact(version, method, args, old_result))
    for (method, args, _old), new_results in slots.items():
        for new_result in new_results:
            state.add(Fact(version, method, args, new_result))
    return state
