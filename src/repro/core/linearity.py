"""Version-linearity — the run-time check of Section 5.

``result(P)`` is *version-linear* when for any two VIDs ``v``, ``v'`` of the
same object one is a subterm of the other.  Whether a program stays linear
is undecidable in general, so the paper prescribes a cheap run-time check:
keep the most recent VID per object and require every newly created version
to contain it as a subterm.

:class:`LinearityTracker` implements exactly that; the new-object-base
construction uses the tracked maxima as the *final versions*.
"""

from __future__ import annotations

from repro.core.errors import VersionLinearityError
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid, Term, depth, is_subterm, object_of

__all__ = ["LinearityTracker", "check_version_linear", "final_versions"]


class LinearityTracker:
    """Incremental version-linearity check (Section 5).

    Feed every newly materialised version through :meth:`observe`; the
    tracker raises :class:`VersionLinearityError` the moment two
    incomparable versions of one object appear.
    """

    def __init__(self) -> None:
        self._latest: dict[Oid, Term] = {}

    @property
    def latest(self) -> dict[Oid, Term]:
        """The most recent version per object, so far."""
        return dict(self._latest)

    def observe(self, version: Term) -> None:
        """Record a newly created version and enforce linearity."""
        owner = object_of(version)
        previous = self._latest.get(owner)
        if previous is None:
            self._latest[owner] = version
            return
        if is_subterm(previous, version):
            self._latest[owner] = version
            return
        if is_subterm(version, previous):
            return  # an older stage resurfacing is fine (it is comparable)
        raise VersionLinearityError(owner, previous, version)

    def seed_from(self, base: ObjectBase) -> None:
        """Prime the tracker with the versions already present in ``base``
        (the OIDs of the to-be-updated base)."""
        for version in base.existing_versions():
            self.observe_initial(version)

    def observe_initial(self, version: Term) -> None:
        """Like :meth:`observe` but keeps the deeper of two comparable
        versions without insisting on creation order (used for seeding)."""
        owner = object_of(version)
        previous = self._latest.get(owner)
        if previous is None or (
            is_subterm(previous, version) and depth(version) > depth(previous)
        ):
            self._latest[owner] = version
        elif not (is_subterm(previous, version) or is_subterm(version, previous)):
            raise VersionLinearityError(owner, previous, version)


def check_version_linear(base: ObjectBase) -> dict[Oid, Term]:
    """Check a finished ``result(P)`` for version-linearity in one pass.

    Returns the final version per object on success; raises
    :class:`VersionLinearityError` otherwise.  This is the *a posteriori*
    formulation of Section 5, useful when evaluation ran with the
    incremental check disabled.
    """
    finals: dict[Oid, Term] = {}
    for version in sorted(base.existing_versions(), key=depth):
        owner = object_of(version)
        current = finals.get(owner)
        if current is None:
            finals[owner] = version
        elif is_subterm(current, version):
            finals[owner] = version
        elif not is_subterm(version, current):
            raise VersionLinearityError(owner, current, version)
    return finals


def final_versions(base: ObjectBase) -> dict[Oid, Term]:
    """The final version of every object of ``base`` (Section 5): the VID
    containing all the object's other VIDs as subterms."""
    return check_version_linear(base)
